"""Integration tests across the whole stack.

These exercise scenarios the paper calls out explicitly:

* the insert/invalidate race (section 4.2), using deferred invalidation
  delivery;
* transactional consistency under concurrent-style update streams — no
  read-only transaction ever observes a state that violates a cross-row
  invariant maintained by every write;
* multiple application servers (clients) sharing one cache;
* a MediaWiki-flavoured usage pattern (immutable revisions + mutable user
  state), mirroring section 7.2.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import ConsistencyMode
from repro.db.query import Eq, Select
from repro.db.schema import TableSchema
from repro.deployment import TxCacheDeployment
from tests.helpers import simple_schema


def build_bank_deployment(accounts: int = 8, **kwargs) -> TxCacheDeployment:
    """A deployment with a toy bank schema maintaining a global invariant.

    Every transfer moves money between two accounts, so the total balance is
    constant; any transaction observing a different total has seen an
    inconsistent mix of old and new state.
    """
    deployment = TxCacheDeployment(**kwargs)
    deployment.database.create_table(
        TableSchema.build("accounts", ["id", "balance"], primary_key="id")
    )
    deployment.database.bulk_load(
        "accounts", [{"id": i, "balance": 100} for i in range(accounts)]
    )
    return deployment


def transfer(deployment: TxCacheDeployment, source: int, target: int, amount: int) -> None:
    transaction = deployment.database.begin_rw()
    rows = transaction.query(Select("accounts", Eq("id", source))).rows
    transaction.update("accounts", Eq("id", source), {"balance": rows[0]["balance"] - amount})
    rows = transaction.query(Select("accounts", Eq("id", target))).rows
    transaction.update("accounts", Eq("id", target), {"balance": rows[0]["balance"] + amount})
    transaction.commit()
    deployment.advance(0.05)


class TestConsistencyInvariant:
    @pytest.mark.parametrize("mode", [ConsistencyMode.CONSISTENT])
    def test_total_balance_invariant_preserved(self, mode):
        """Interleave transfers with read-only transactions that read some
        accounts through cacheable functions and the rest directly from the
        database: the observed total must always be exactly the initial total."""
        accounts = 8
        deployment = build_bank_deployment(accounts=accounts, mode=mode)
        client = deployment.client(mode=mode)

        @client.cacheable(name="get_balance")
        def get_balance(account_id):
            return client.query(Select("accounts", Eq("id", account_id))).rows[0]["balance"]

        rng = random.Random(5)
        expected_total = accounts * 100
        for round_number in range(60):
            transfer(
                deployment,
                rng.randrange(accounts),
                rng.randrange(accounts),
                rng.randint(1, 25),
            )
            with client.read_only(staleness=rng.choice([0, 5, 30])):
                cached_part = rng.randrange(accounts)
                total = 0
                for account in range(accounts):
                    if account <= cached_part:
                        total += get_balance(account)
                    else:
                        total += client.query(
                            Select("accounts", Eq("id", account))
                        ).rows[0]["balance"]
            assert total == expected_total, f"inconsistent snapshot on round {round_number}"

    def test_no_consistency_mode_can_violate_the_invariant(self):
        """The same scenario without TxCache's guarantee eventually observes
        a broken invariant, demonstrating why the guarantee matters."""
        accounts = 4
        deployment = build_bank_deployment(accounts=accounts, mode=ConsistencyMode.NO_CONSISTENCY)
        client = deployment.client(mode=ConsistencyMode.NO_CONSISTENCY)

        @client.cacheable(name="get_balance")
        def get_balance(account_id):
            return client.query(Select("accounts", Eq("id", account_id))).rows[0]["balance"]

        # Cache every balance at the initial state.
        with client.read_only():
            for account in range(accounts):
                get_balance(account)

        violations = 0
        rng = random.Random(11)
        for _ in range(40):
            transfer(deployment, rng.randrange(accounts), rng.randrange(accounts), 10)
            with client.read_only(staleness=30):
                total = 0
                for account in range(accounts):
                    if account % 2 == 0:
                        total += get_balance(account)  # possibly stale cache
                    else:
                        total += client.query(
                            Select("accounts", Eq("id", account))
                        ).rows[0]["balance"]  # latest state
            if total != accounts * 100:
                violations += 1
        assert violations > 0


class TestInvalidationRace:
    def test_insert_after_delayed_invalidation_does_not_go_stale_forever(self):
        """Reproduce the race of section 4.2: a read computes a value, an
        update invalidates it, and the value is inserted into the cache only
        after the invalidation has been processed.  Ordering by commit
        timestamps means the entry is truncated on insert and later
        transactions are not stuck with it."""
        deployment, client = _simple_deployment()

        @client.cacheable(name="get_user")
        def get_user(user_id):
            return client.query(Select("users", Eq("id", user_id))).rows[0]

        # Read the value inside a transaction, but "delay" its insertion by
        # doing the update + invalidation in between: simulate by directly
        # computing the value first, then committing an update, then letting
        # the original transaction finish (which performs the PUT).
        client.begin_ro()
        value = get_user_compute_only(client, 1)

        transaction = deployment.database.begin_rw()
        transaction.update("users", Eq("id", 1), {"name": "newer"})
        transaction.commit()
        deployment.advance(0.1)

        # Now the slow reader finally stores its (stale) value.
        stale_interval = deployment.database.begin_ro(snapshot_id=0).query(
            Select("users", Eq("id", 1))
        )
        deployment.cache.put("get_user:manual", value, stale_interval.validity, stale_interval.tags)
        client.abort()

        # The stored entry must not claim to be still valid.
        server = deployment.cache.server_for("get_user:manual")
        entry = server.versions_of("get_user:manual")[0]
        assert not entry.still_valid

    def test_deferred_invalidation_stream_keeps_lookups_safe(self):
        """With delivery deferred, still-valid entries are only trusted up to
        the last processed invalidation, so a transaction that needs newer
        data goes to the database instead of reading a possibly-stale entry."""
        deployment, client = _simple_deployment()
        bus = deployment.invalidation_bus
        bus.set_synchronous(False)

        @client.cacheable(name="get_user")
        def get_user(user_id):
            return client.query(Select("users", Eq("id", user_id))).rows[0]

        with client.read_only():
            assert get_user(1)["name"] == "user1"

        transaction = deployment.database.begin_rw()
        transaction.update("users", Eq("id", 1), {"name": "updated"})
        transaction.commit()
        deployment.advance(0.2)

        # Invalidation not yet delivered: a freshness-demanding transaction
        # must still see the new value (it cannot trust the cached entry
        # beyond the last invalidation it has processed).
        with client.read_only(staleness=0):
            assert get_user(1)["name"] == "updated"

        bus.deliver_pending()
        with client.read_only(staleness=0):
            assert get_user(1)["name"] == "updated"


class TestMultipleApplicationServers:
    def test_invalidation_visible_to_all_clients(self):
        deployment, first = _simple_deployment()
        second = deployment.client()

        @first.cacheable(name="get_user")
        def get_user_first(user_id):
            return first.query(Select("users", Eq("id", user_id))).rows[0]

        @second.cacheable(name="get_user")
        def get_user_second(user_id):
            return second.query(Select("users", Eq("id", user_id))).rows[0]

        with first.read_only():
            assert get_user_first(2)["name"] == "user2"

        with second.read_write():
            second.update("users", Eq("id", 2), {"name": "from-second"})
        deployment.advance(0.1)

        with first.read_only(staleness=0):
            assert get_user_first(2)["name"] == "from-second"
        # And the other client shares the (re)cached value.
        with second.read_only(staleness=0):
            assert get_user_second(2)["name"] == "from-second"


class TestWikiStyleWorkload:
    def test_immutable_revisions_and_mutable_user_state(self):
        """MediaWiki-style usage (section 7.2): article revisions are
        immutable (cache entries stay valid forever) while user objects
        change (entries get invalidated); the user's edit count must be
        consistent with the revisions visible in the same transaction."""
        deployment = TxCacheDeployment()
        database = deployment.database
        database.create_table(
            TableSchema.build(
                "revisions", ["id", "page", "text", "author"], primary_key="id", indexes=["page"]
            )
        )
        database.create_table(
            TableSchema.build("wiki_users", ["id", "name", "edit_count"], primary_key="id")
        )
        database.bulk_load("wiki_users", [{"id": 1, "name": "alice", "edit_count": 0}])
        client = deployment.client()

        @client.cacheable(name="get_revision")
        def get_revision(revision_id):
            rows = client.query(Select("revisions", Eq("id", revision_id))).rows
            return rows[0] if rows else None

        @client.cacheable(name="page_revision_count")
        def page_revision_count(page):
            return len(client.query(Select("revisions", Eq("page", page))).rows)

        @client.cacheable(name="get_wiki_user")
        def get_wiki_user(user_id):
            return client.query(Select("wiki_users", Eq("id", user_id))).rows[0]

        def edit_page(revision_id, page, text):
            with client.read_write():
                client.insert(
                    "revisions", {"id": revision_id, "page": page, "text": text, "author": 1}
                )
                user = client.query(Select("wiki_users", Eq("id", 1))).rows[0]
                client.update("wiki_users", Eq("id", 1), {"edit_count": user["edit_count"] + 1})
            deployment.advance(0.1)

        for revision in range(1, 6):
            edit_page(revision, "Main_Page", f"revision {revision}")
            with client.read_only(staleness=0):
                count = page_revision_count("Main_Page")
                user = get_wiki_user(1)
                revision_text = get_revision(revision)["text"]
            # The edit count the user object reports always matches the number
            # of revisions visible at the same snapshot.
            assert count == user["edit_count"] == revision
            assert revision_text == f"revision {revision}"

        # Old revisions are immutable: their cached entries are still valid
        # and keep hitting without invalidation traffic.
        with client.read_only():
            assert get_revision(1)["text"] == "revision 1"
        hits_before = client.stats.hits
        with client.read_only():
            get_revision(1)
        assert client.stats.hits == hits_before + 1


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _simple_deployment():
    deployment = TxCacheDeployment()
    deployment.database.create_table(simple_schema())
    deployment.database.bulk_load(
        "users",
        [{"id": i, "name": f"user{i}", "region": 0, "score": float(i)} for i in range(1, 6)],
    )
    return deployment, deployment.client()


def get_user_compute_only(client, user_id):
    """Run the query for a user without storing anything in the cache."""
    return client.query(Select("users", Eq("id", user_id))).rows[0]
