"""Tests for hash and ordered indexes."""

from __future__ import annotations

import pytest

from repro.db.errors import ConstraintError
from repro.db.index import HashIndex, OrderedIndex, build_index
from repro.db.schema import IndexSpec
from repro.db.tuples import TupleVersion


def make_version(row_id, **values):
    return TupleVersion(row_id=row_id, values=values, xmin=0)


class TestHashIndex:
    def test_lookup_finds_inserted_version(self):
        index = HashIndex(IndexSpec("name"))
        v = make_version(1, name="alice")
        index.insert(v)
        assert index.lookup("alice") == [v]

    def test_lookup_missing_key_is_empty(self):
        index = HashIndex(IndexSpec("name"))
        assert index.lookup("nobody") == []

    def test_multiple_versions_same_key(self):
        index = HashIndex(IndexSpec("region"))
        versions = [make_version(i, region=1) for i in range(3)]
        for v in versions:
            index.insert(v)
        assert set(id(v) for v in index.lookup(1)) == set(id(v) for v in versions)

    def test_remove(self):
        index = HashIndex(IndexSpec("name"))
        v = make_version(1, name="alice")
        index.insert(v)
        index.remove(v)
        assert index.lookup("alice") == []

    def test_remove_missing_is_noop(self):
        index = HashIndex(IndexSpec("name"))
        index.remove(make_version(1, name="ghost"))

    def test_unique_index_rejects_second_current_row(self):
        index = HashIndex(IndexSpec("id", unique=True))
        index.insert(make_version(1, id=7))
        with pytest.raises(ConstraintError):
            index.insert(make_version(2, id=7))

    def test_unique_index_allows_new_version_of_same_row(self):
        index = HashIndex(IndexSpec("id", unique=True))
        old = make_version(1, id=7)
        index.insert(old)
        old.xmax = 5  # superseded
        index.insert(make_version(1, id=7))

    def test_len_counts_versions(self):
        index = HashIndex(IndexSpec("name"))
        index.insert(make_version(1, name="a"))
        index.insert(make_version(2, name="b"))
        assert len(index) == 2

    def test_none_key_supported(self):
        index = HashIndex(IndexSpec("name"))
        v = make_version(1, name=None)
        index.insert(v)
        assert index.lookup(None) == [v]


class TestOrderedIndex:
    def build(self, keys):
        index = OrderedIndex(IndexSpec("k", ordered=True))
        versions = [make_version(i, k=key) for i, key in enumerate(keys)]
        for v in versions:
            index.insert(v)
        return index, versions

    def test_range_scan_inclusive(self):
        index, _ = self.build([5, 1, 9, 3, 7])
        keys = [v.values["k"] for v in index.range_scan(3, 7)]
        assert keys == [3, 5, 7]

    def test_range_scan_exclusive_bounds(self):
        index, _ = self.build([1, 2, 3, 4, 5])
        keys = [v.values["k"] for v in index.range_scan(2, 4, lo_inclusive=False, hi_inclusive=False)]
        assert keys == [3]

    def test_range_scan_open_bounds(self):
        index, _ = self.build([4, 2, 8])
        assert [v.values["k"] for v in index.range_scan()] == [2, 4, 8]
        assert [v.values["k"] for v in index.range_scan(lo=4)] == [4, 8]
        assert [v.values["k"] for v in index.range_scan(hi=4)] == [2, 4]

    def test_equality_lookup_still_works(self):
        index, _ = self.build([4, 2, 8])
        assert len(index.lookup(4)) == 1

    def test_remove_updates_sorted_keys(self):
        index, versions = self.build([4, 2, 8])
        target = next(v for v in versions if v.values["k"] == 4)
        index.remove(target)
        assert [v.values["k"] for v in index.range_scan()] == [2, 8]

    def test_duplicate_keys_in_range(self):
        index = OrderedIndex(IndexSpec("k", ordered=True))
        for i in range(4):
            index.insert(make_version(i, k=5))
        assert len(list(index.range_scan(5, 5))) == 4

    def test_none_keys_sort_first(self):
        index = OrderedIndex(IndexSpec("k", ordered=True))
        index.insert(make_version(1, k=None))
        index.insert(make_version(2, k=3))
        all_keys = [v.values["k"] for v in index.range_scan()]
        assert all_keys[0] is None


class TestBuildIndex:
    def test_builds_hash_for_unordered(self):
        assert type(build_index(IndexSpec("x"))) is HashIndex

    def test_builds_ordered_for_ordered(self):
        assert type(build_index(IndexSpec("x", ordered=True))) is OrderedIndex
