"""Merge-and-append benchmark persistence (the BENCH_*.json trajectory).

The v1 format overwrote a section on every rerun, so the committed files
only ever held the latest measurement.  v2 keeps a timestamped entry list
per section; these tests pin the append semantics, the v1 migration, the
corrupt-file recovery, the history bound, and the figures-document schema
validator CI runs against the open-loop smoke output.
"""

from __future__ import annotations

import json
import os

from repro.bench import perflog
from repro.bench.perflog import (
    BENCH_FIGURES_FILENAME,
    SCHEMA_VERSION,
    latest,
    load_benchmark,
    record_benchmark,
    record_figures_benchmark,
    record_wire_benchmark,
    validate_figures_document,
    wire_benchmark_path,
)


def read_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestRecordBenchmark:
    def test_first_write_creates_v2_document(self, tmp_path):
        target = str(tmp_path / "BENCH_test.json")
        record_benchmark("codec", {"speedup": 2.5}, filename="BENCH_test.json", path=target)
        document = read_json(target)
        assert document["schema_version"] == SCHEMA_VERSION
        entries = document["sections"]["codec"]["entries"]
        assert len(entries) == 1
        assert entries[0]["data"] == {"speedup": 2.5}
        assert entries[0]["recorded_at"].endswith("Z")

    def test_rerun_appends_instead_of_overwriting(self, tmp_path):
        target = str(tmp_path / "BENCH_test.json")
        record_benchmark("codec", {"speedup": 2.5}, filename="BENCH_test.json", path=target)
        record_benchmark("codec", {"speedup": 2.7}, filename="BENCH_test.json", path=target)
        entries = read_json(target)["sections"]["codec"]["entries"]
        assert [entry["data"]["speedup"] for entry in entries] == [2.5, 2.7]

    def test_sections_are_independent(self, tmp_path):
        target = str(tmp_path / "BENCH_test.json")
        record_benchmark("codec", {"a": 1}, filename="BENCH_test.json", path=target)
        record_benchmark("rpc", {"b": 2}, filename="BENCH_test.json", path=target)
        document = read_json(target)
        assert latest(document, "codec") == {"a": 1}
        assert latest(document, "rpc") == {"b": 2}

    def test_history_limit_drops_oldest(self, tmp_path):
        target = str(tmp_path / "BENCH_test.json")
        for run in range(5):
            record_benchmark(
                "codec",
                {"run": run},
                filename="BENCH_test.json",
                path=target,
                history_limit=3,
            )
        entries = read_json(target)["sections"]["codec"]["entries"]
        assert [entry["data"]["run"] for entry in entries] == [2, 3, 4]

    def test_v1_file_migrates_with_history_preserved(self, tmp_path):
        target = str(tmp_path / "BENCH_wire.json")
        with open(target, "w", encoding="utf-8") as handle:
            json.dump({"codec": {"speedup": 2.0}, "rpc": {"us": 150}}, handle)
        record_wire_benchmark("codec", {"speedup": 2.6}, path=target)
        document = read_json(target)
        assert document["schema_version"] == SCHEMA_VERSION
        codec_entries = document["sections"]["codec"]["entries"]
        # The v1 measurement became the first entry — backfilled with the
        # file's mtime (a v1 file cannot say when it was measured, the
        # filesystem can) and flagged migrated; the rerun appended rather
        # than erased it.
        assert codec_entries[0]["data"] == {"speedup": 2.0}
        assert codec_entries[0]["migrated"] is True
        assert codec_entries[0]["recorded_at"] is not None
        assert codec_entries[1]["data"] == {"speedup": 2.6}
        assert "migrated" not in codec_entries[1]
        assert latest(document, "rpc") == {"us": 150}

    def test_corrupt_file_starts_over(self, tmp_path):
        target = str(tmp_path / "BENCH_wire.json")
        with open(target, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        record_wire_benchmark("codec", {"speedup": 2.0}, path=target)
        assert latest(read_json(target), "codec") == {"speedup": 2.0}

    def test_load_missing_file_yields_empty_document(self, tmp_path):
        document = load_benchmark("BENCH_nope.json", path=str(tmp_path / "BENCH_nope.json"))
        assert document == {"schema_version": SCHEMA_VERSION, "sections": {}}
        assert latest(document, "anything") is None

    def test_env_var_redirects_output(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert wire_benchmark_path() == str(tmp_path / "BENCH_wire.json")
        path = record_figures_benchmark("figure5", {"points": []})
        assert path == str(tmp_path / BENCH_FIGURES_FILENAME)

    def test_default_path_is_repo_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        path = wire_benchmark_path()
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(perflog.__file__)))
        repo_root = os.path.dirname(os.path.dirname(repo_root))
        assert path == os.path.join(repo_root, "BENCH_wire.json")


class TestValidateFiguresDocument:
    def _point(self, **overrides):
        point = {
            "configuration": "in-mem 512MB",
            "offered_rate": 1000.0,
            "achieved_goodput": 980.0,
            "p50_ms": 1.1,
            "p95_ms": 2.2,
            "p99_ms": 4.4,
        }
        point.update(overrides)
        return point

    def _valid_document(self, tmp_path):
        target = str(tmp_path / BENCH_FIGURES_FILENAME)
        for section in ("figure5", "figure6", "figure7", "figure8"):
            record_figures_benchmark(section, {"points": [self._point()]}, path=target)
        return load_benchmark(BENCH_FIGURES_FILENAME, path=target)

    def test_valid_document_passes(self, tmp_path):
        assert validate_figures_document(self._valid_document(tmp_path)) == []

    def test_missing_section_reported(self, tmp_path):
        document = self._valid_document(tmp_path)
        del document["sections"]["figure7"]
        problems = validate_figures_document(document)
        assert any("figure7" in problem for problem in problems)

    def test_missing_point_key_reported(self, tmp_path):
        target = str(tmp_path / BENCH_FIGURES_FILENAME)
        bad = self._point()
        del bad["p99_ms"]
        for section in ("figure5", "figure6", "figure7", "figure8"):
            record_figures_benchmark(section, {"points": [bad]}, path=target)
        problems = validate_figures_document(load_benchmark(BENCH_FIGURES_FILENAME, path=target))
        assert len(problems) == 4
        assert all("p99_ms" in problem for problem in problems)

    def test_empty_points_reported(self, tmp_path):
        target = str(tmp_path / BENCH_FIGURES_FILENAME)
        for section in ("figure5", "figure6", "figure7", "figure8"):
            record_figures_benchmark(section, {"points": []}, path=target)
        problems = validate_figures_document(load_benchmark(BENCH_FIGURES_FILENAME, path=target))
        assert all("no measured points" in problem for problem in problems)

    def test_wrong_schema_version_reported(self):
        problems = validate_figures_document({"schema_version": 1, "sections": {}})
        assert any("schema_version" in problem for problem in problems)

    def test_sectionless_document_reported(self):
        problems = validate_figures_document({"schema_version": SCHEMA_VERSION})
        assert problems == ["document has no sections mapping"]
