"""Tests for cache-key derivation."""

from __future__ import annotations

from repro.core.keys import cache_key, function_fingerprint, stable_repr


def sample_function(a, b=2):
    return a + b


class TestStableRepr:
    def test_dict_key_order_does_not_matter(self):
        assert stable_repr({"a": 1, "b": 2}) == stable_repr({"b": 2, "a": 1})

    def test_set_order_does_not_matter(self):
        assert stable_repr({3, 1, 2}) == stable_repr({2, 3, 1})

    def test_lists_and_tuples_distinguished(self):
        assert stable_repr([1, 2]) != stable_repr((1, 2))

    def test_nested_structures(self):
        a = {"x": [1, {"y": 2}]}
        b = {"x": [1, {"y": 2}]}
        assert stable_repr(a) == stable_repr(b)

    def test_integral_floats_normalized(self):
        assert stable_repr(1.0) == stable_repr(1)
        assert stable_repr(1.5) != stable_repr(1)


class TestCacheKey:
    def test_same_call_same_key(self):
        assert cache_key(sample_function, (1,), {"b": 3}) == cache_key(
            sample_function, (1,), {"b": 3}
        )

    def test_different_args_different_keys(self):
        assert cache_key(sample_function, (1,)) != cache_key(sample_function, (2,))

    def test_different_kwargs_different_keys(self):
        assert cache_key(sample_function, (1,), {"b": 3}) != cache_key(
            sample_function, (1,), {"b": 4}
        )

    def test_different_functions_different_keys(self):
        def other(a, b=2):
            return a - b

        assert cache_key(sample_function, (1,)) != cache_key(other, (1,))

    def test_explicit_name_identity(self):
        assert cache_key("app.get_user", (5,)) == cache_key("app.get_user", (5,))
        assert cache_key("app.get_user", (5,)) != cache_key("app.get_item", (5,))

    def test_key_contains_readable_prefix(self):
        key = cache_key("module.get_user", (5,))
        assert key.startswith("get_user:")

    def test_code_change_changes_key(self):
        """Keys incorporate the implementation fingerprint, so a changed
        function body no longer matches old entries (software-update safety)."""

        def version_one(a):
            return a + 1

        def version_two(a):
            return a + 2

        assert cache_key(version_one, (1,)) != cache_key(version_two, (1,))


class TestFunctionFingerprint:
    def test_fingerprint_stable_for_same_function(self):
        assert function_fingerprint(sample_function) == function_fingerprint(sample_function)

    def test_fingerprint_for_builtin(self):
        assert "builtin" in function_fingerprint(len)
