"""Tests for tuple versions and snapshot visibility."""

from __future__ import annotations

from repro.db.tuples import TupleVersion, UncommittedMark, validity_of, visible_at
from repro.interval import Interval


def version(xmin, xmax=None, row_id=1):
    return TupleVersion(row_id=row_id, values={"id": row_id}, xmin=xmin, xmax=xmax)


class TestVisibility:
    def test_visible_when_created_before_snapshot(self):
        assert visible_at(version(3), 5)
        assert visible_at(version(5), 5)

    def test_invisible_when_created_after_snapshot(self):
        assert not visible_at(version(7), 5)

    def test_invisible_when_deleted_before_snapshot(self):
        assert not visible_at(version(1, xmax=4), 5)
        assert not visible_at(version(1, xmax=5), 5)

    def test_visible_when_deleted_after_snapshot(self):
        assert visible_at(version(1, xmax=9), 5)

    def test_uncommitted_insert_invisible_to_others(self):
        v = version(UncommittedMark(7))
        assert not visible_at(v, 100)
        assert not visible_at(v, 100, tx_id=8)

    def test_uncommitted_insert_visible_to_owner(self):
        v = version(UncommittedMark(7))
        assert visible_at(v, 0, tx_id=7)

    def test_uncommitted_delete_invisible_to_owner_only(self):
        v = version(1, xmax=UncommittedMark(7))
        assert visible_at(v, 5)
        assert visible_at(v, 5, tx_id=8)
        assert not visible_at(v, 5, tx_id=7)


class TestValidityOf:
    def test_committed_current_version_is_unbounded(self):
        assert validity_of(version(4)) == Interval(4, None)

    def test_superseded_version_is_bounded(self):
        assert validity_of(version(4, xmax=9)) == Interval(4, 9)

    def test_uncommitted_creation_has_no_validity(self):
        assert validity_of(version(UncommittedMark(3))) is None

    def test_uncommitted_deletion_treated_as_still_valid(self):
        assert validity_of(version(4, xmax=UncommittedMark(3))) == Interval(4, None)


class TestHelpers:
    def test_is_current(self):
        assert version(1).is_current()
        assert not version(1, xmax=3).is_current()

    def test_created_by_and_deleted_by(self):
        v = version(UncommittedMark(9), xmax=None)
        assert v.created_by(9)
        assert not v.created_by(8)
        v2 = version(1, xmax=UncommittedMark(9))
        assert v2.deleted_by(9)
        assert not v2.deleted_by(8)
