"""Gossip membership: semilattice merge properties, wire exchange, epochs.

Three layers, matching the module's correctness story:

* property tests (Hypothesis) that the digest merge is a join-semilattice —
  commutative, associative, idempotent, and order-insensitive when folding a
  whole set of digests, which is what makes convergence independent of
  message delivery order;
* SWIM state-machine unit tests on a manual clock (suspect on silence,
  confirm after the timeout, refute by incarnation bump, tombstones beat
  stale alive records);
* deployment-level tests that a :class:`GossipRunner` converges every node
  and the observer on one epoch token over the real wire (all transports),
  drives ring eviction from confirmed deaths, and — the regression test —
  that a healed partition delivering *stale* pre-partition digests can never
  resurrect an evicted node at its old incarnation.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.gossip import (
    ALIVE,
    DEAD,
    LEFT,
    STATUSES,
    SUSPECT,
    GossipAgent,
    GossipRunner,
    merge_digests,
    record_precedence,
)
from repro.clock import ManualClock
from repro.deployment import TxCacheDeployment
from tests.helpers import FaultInjector, transports_under_test

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
names = st.sampled_from([f"node{i}" for i in range(6)])
records = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=50),
    st.sampled_from(STATUSES),
)
digests = st.dictionaries(names, records, max_size=6)


# ----------------------------------------------------------------------
# Merge semilattice properties
# ----------------------------------------------------------------------
@given(digests, digests)
@settings(max_examples=200)
def test_merge_commutative(a, b):
    assert merge_digests(a, b) == merge_digests(b, a)


@given(digests, digests, digests)
@settings(max_examples=200)
def test_merge_associative(a, b, c):
    assert merge_digests(merge_digests(a, b), c) == merge_digests(a, merge_digests(b, c))


@given(digests)
def test_merge_idempotent(a):
    assert merge_digests(a, a) == a


@given(st.lists(digests, min_size=1, max_size=5), st.randoms(use_true_random=False))
@settings(max_examples=200)
def test_merge_convergent_under_any_fold_order(parts, rng):
    """Folding the same digest set in any order yields the same table."""
    reference = functools.reduce(merge_digests, parts, {})
    shuffled = list(parts)
    rng.shuffle(shuffled)
    assert functools.reduce(merge_digests, shuffled, {}) == reference


@given(digests, digests)
@settings(max_examples=200)
def test_merge_picks_the_higher_precedence_record(a, b):
    merged = merge_digests(a, b)
    for name in set(a) | set(b):
        candidates = [d[name] for d in (a, b) if name in d]
        assert merged[name] == max(candidates, key=record_precedence)


def test_merge_rejects_unknown_status_and_malformed_records():
    with pytest.raises(KeyError):
        merge_digests({}, {"x": (0, 0, "zombie")})
    with pytest.raises(ValueError):
        merge_digests({}, {"x": (0, 0)})


# ----------------------------------------------------------------------
# SWIM state machine on a manual clock
# ----------------------------------------------------------------------
def _pair(suspect=2.0, confirm=4.0):
    clock = ManualClock()
    a = GossipAgent("a", clock, peers=["b"], suspect_timeout=suspect, confirm_timeout=confirm)
    b = GossipAgent("b", clock, peers=["a"], suspect_timeout=suspect, confirm_timeout=confirm)
    return clock, a, b


def test_silent_peer_is_suspected_then_confirmed_dead():
    clock, a, b = _pair()
    a.tick()
    a.receive(b.digest())  # proof of life at t=0
    clock.advance(2.5)  # past suspect_timeout, no progress from b
    a.tick()
    assert a.status_of("b") == SUSPECT
    clock.advance(4.5)  # past confirm_timeout
    a.tick()
    assert a.status_of("b") == DEAD


def test_heartbeat_progress_resets_the_suspect_clock():
    clock, a, b = _pair()
    for _ in range(4):
        clock.advance(1.0)  # under suspect_timeout each step
        b.tick()
        a.receive(b.digest())
        a.tick()
    assert a.status_of("b") == ALIVE


def test_suspected_node_refutes_with_an_incarnation_bump():
    clock, a, b = _pair()
    clock.advance(2.5)
    a.tick()
    assert a.status_of("b") == SUSPECT
    b.receive(a.digest())  # b hears itself suspected
    assert b.incarnation == 1
    assert b.refutations == 1
    a.receive(b.digest())
    assert a.status_of("b") == ALIVE  # refutation out-ranks the suspicion


def test_stale_alive_record_cannot_override_a_death_tombstone():
    agent = GossipAgent("a", ManualClock(), peers=["b"])
    agent.receive({"b": (3, 10, DEAD)})
    agent.receive({"b": (3, 999, ALIVE)})  # same incarnation, late heartbeat
    assert agent.status_of("b") == DEAD
    agent.receive({"b": (4, 0, ALIVE)})  # only a fresh incarnation rejoins
    assert agent.status_of("b") == ALIVE


def test_epoch_token_ignores_heartbeats_but_not_membership():
    clock, a, b = _pair()
    a.receive(b.digest())
    b.receive(a.digest())
    token = a.epoch_token()
    assert token == b.epoch_token()
    for _ in range(3):
        clock.advance(0.5)
        a.tick()
        b.tick()
        a.receive(b.digest())
        b.receive(a.digest())
    assert a.epoch_token() == token  # heartbeats alone don't move the epoch
    a.receive({"c": (0, 0, ALIVE)})
    assert a.epoch_token() != token  # a new member does


# ----------------------------------------------------------------------
# Deployment-level: the runner over the real wire
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", transports_under_test())
def test_runner_converges_every_agent_on_one_epoch_token(transport):
    clock = ManualClock()
    with TxCacheDeployment(
        clock=clock, cache_nodes=3, transport=transport, gossip=True
    ) as deployment:
        runner = deployment.gossip_runner
        runner.run_rounds(4, advance=0.5)
        assert runner.converged()
        tokens = {agent.epoch_token() for agent in runner.agents.values()}
        tokens.add(runner.observer.epoch_token())
        assert len(tokens) == 1
        assert runner.observer.members() == ["cache0", "cache1", "cache2"]


@pytest.mark.parametrize("transport", transports_under_test())
def test_gossip_confirms_a_partitioned_node_and_evicts_it(transport):
    clock = ManualClock()
    with TxCacheDeployment(
        clock=clock, cache_nodes=3, transport=transport, gossip=True,
        replication_factor=2,
    ) as deployment:
        runner = deployment.gossip_runner
        runner.run_rounds(3, advance=0.5)
        faults = FaultInjector(deployment.cache)
        faults.partition("cache1")
        # Silence for longer than suspect+confirm: the observer must confirm
        # the death and the membership coordinator must evict the node.
        runner.run_rounds(16, advance=0.5)
        assert runner.observer.status_of("cache1") == DEAD
        assert "cache1" not in deployment.cache.ring
        assert deployment.membership.history[-1].change == "evict"
        # The survivors agree on the post-eviction epoch.
        assert runner.converged()


@pytest.mark.parametrize("transport", transports_under_test())
def test_healed_partition_never_resurrects_a_stale_incarnation(transport):
    """The anti-entropy regression the tombstone precedence exists for.

    cache1 is partitioned away with a *delaying* gossip link, so digests
    recorded before the partition (cache1 alive at incarnation 0) are still
    in flight when the partition heals — after the cluster confirmed its
    death and evicted it.  Those stale alive records must lose the merge
    against the death tombstone: the node stays dead and out of the ring
    until it re-announces itself at a fresh incarnation (a real rejoin).
    """
    clock = ManualClock()
    with TxCacheDeployment(
        clock=clock, cache_nodes=3, transport=transport, gossip=True,
    ) as deployment:
        runner = deployment.gossip_runner
        faults = FaultInjector(deployment.cache)
        # Old replies linger on the link: each reply arrives 3 exchanges late.
        faults.gossip_faults("cache1", delay_replies=3, seed=11)
        runner.run_rounds(4, advance=0.4)  # queue up pre-partition digests
        # A pre-partition record of cache1: alive at incarnation 0.
        stale = {"cache1": runner.observer.record("cache1")}
        assert stale["cache1"][2] == ALIVE and stale["cache1"][0] == 0
        faults.partition("cache1")
        runner.run_rounds(16, advance=0.5)
        assert runner.observer.status_of("cache1") == DEAD
        assert "cache1" not in deployment.cache.ring
        dead_token = runner.observer.epoch_token()
        # Deliver the stale pre-partition record to every party directly —
        # the lingering datagram of a healed partition.  The tombstone at
        # the same incarnation must win the merge everywhere.
        runner.observer.receive(stale)
        for survivor in ("cache0", "cache2"):
            deployment.cache.transports[survivor].gossip(dict(stale))
        runner.run_rounds(2, advance=0.0)  # let anything wrong propagate
        assert runner.observer.status_of("cache1") == DEAD, (
            "a stale pre-partition alive record resurrected an evicted node"
        )
        assert "cache1" not in deployment.cache.ring
        assert runner.observer.epoch_token() == dead_token
        # The only way back is a membership rejoin, which re-registers the
        # agent *above* the tombstone (see
        # test_rejoin_after_eviction_comes_back_at_a_fresh_incarnation).


def test_gossip_converges_despite_seeded_drop_and_delay():
    """A lossy, laggy link slows convergence but never kills a live node.

    cache1's gossip link drops 40% of exchanges and delivers every reply one
    exchange late (seeded, so the run is reproducible); the data path is
    untouched.  The heartbeats that do get through keep resetting the
    suspect clock, so the cluster still converges on one epoch with no
    death verdicts.
    """
    clock = ManualClock()
    deployment = TxCacheDeployment(clock=clock, cache_nodes=3, gossip=True)
    runner = deployment.gossip_runner
    faults = FaultInjector(deployment.cache)
    faults.gossip_faults("cache1", drop_rate=0.4, delay_replies=1, seed=5)
    runner.run_rounds(20, advance=0.4)
    assert runner.observer.status_of("cache1") in (ALIVE, SUSPECT)
    assert "cache1" in deployment.cache.ring
    faults.gossip_faults("cache1")  # clear the faults
    runner.run_rounds(4, advance=0.4)
    assert runner.converged()
    assert runner.observer.status_of("cache1") == ALIVE


def test_planned_leave_spreads_without_a_death_verdict():
    clock = ManualClock()
    deployment = TxCacheDeployment(clock=clock, cache_nodes=3, gossip=True)
    runner = deployment.gossip_runner
    runner.run_rounds(3, advance=0.5)
    deployment.remove_cache_node("cache2")
    runner.run_rounds(3, advance=0.5)
    assert runner.observer.status_of("cache2") == LEFT
    assert "cache2" not in deployment.cache.ring
    assert deployment.membership.history[-1].change == "leave"
    assert runner.converged()


def test_rejoin_after_eviction_comes_back_at_a_fresh_incarnation():
    clock = ManualClock()
    deployment = TxCacheDeployment(
        clock=clock, cache_nodes=3, gossip=True, replication_factor=2
    )
    runner = deployment.gossip_runner
    runner.run_rounds(3, advance=0.5)
    faults = FaultInjector(deployment.cache)
    faults.partition("cache1")
    runner.run_rounds(16, advance=0.5)
    assert "cache1" not in deployment.cache.ring
    dead_incarnation = runner.observer.record("cache1")[0]
    # The coordinator re-admits the node; the runner re-registers its agent
    # above the tombstone so the cluster accepts the rejoin immediately.
    deployment.add_cache_node("cache1")
    runner.run_rounds(3, advance=0.5)
    assert runner.observer.status_of("cache1") == ALIVE
    assert runner.agents["cache1"].incarnation > dead_incarnation
    assert "cache1" in deployment.cache.ring
    assert deployment.membership.history[-1].change == "rejoin"
    assert runner.converged()
