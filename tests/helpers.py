"""Shared builders and the fault-injection harness used across the test suite.

Beyond the plain deployment builders, this module provides the pieces the
consistency/fault-injection suites (``test_replication.py``,
``test_consistency_properties.py``-style invariants under failure) are built
from:

* :func:`transports_under_test` — the transport parametrization, overridable
  with ``REPRO_TRANSPORT=inprocess|socket`` (the CI matrix uses this to run
  the parity suites against one transport at a time);
* :class:`FaultInjector` — kill or partition cache nodes mid-workload,
  transport-agnostically (partitions wrap the node's transport so *every*
  path to it, invalidation stream included, fails like a dead network);
* :class:`ConsistencyHarness` — a randomized writes/reads workload over a
  single-version table that asserts the paper's core invariant (every
  read-only transaction observes exactly one database state) after every
  transaction, usable while faults are being injected.
"""

from __future__ import annotations

import os
import random
from typing import Iterable, List, Optional, Tuple

from repro.cache.cluster import CacheCluster
from repro.cache.netserver import CacheNodeUnreachableError
from repro.core.api import ConsistencyMode
from repro.db.database import Database
from repro.db.query import Eq, Select
from repro.db.schema import IndexSpec, TableSchema
from repro.deployment import TxCacheDeployment

#: Every cache transport kind; the parity suites parametrize over this.
#: "socket" is the pooled client + thread-per-connection server (PR 4);
#: "socket-pipelined" is the multiplexed client + event-loop server;
#: "socket-process" hosts each node in its own OS process (PR 9) — same
#: pipelined wire, but no in-process server object to reach into, so the
#: suites introspect node state through :func:`node_views` instead.
TRANSPORTS = ["inprocess", "socket", "socket-pipelined", "socket-process"]


def transports_under_test() -> List[str]:
    """Transports the parametrized suites should run against.

    Defaults to all; set ``REPRO_TRANSPORT=inprocess``, ``socket``,
    ``socket-pipelined`` or ``socket-process`` to restrict the run (used
    by the CI matrix to exercise one wire path at a time without
    multiplying every job's runtime).
    """
    forced = os.environ.get("REPRO_TRANSPORT")
    if not forced:
        return list(TRANSPORTS)
    if forced not in TRANSPORTS:
        raise ValueError(
            f"REPRO_TRANSPORT={forced!r}; expected one of {TRANSPORTS}"
        )
    return [forced]


#: Wire body codecs of the pipelined transport (see repro.comm.wire).
WIRE_CODECS = ["binary", "pickle"]


def wire_codecs_under_test() -> List[str]:
    """Wire codecs the parametrized suites should run against.

    Defaults to both; set ``REPRO_WIRE_CODEC=binary`` or ``pickle`` to
    restrict the run (the CI matrix pins one codec per job the same way
    ``REPRO_TRANSPORT`` pins one transport).
    """
    forced = os.environ.get("REPRO_WIRE_CODEC")
    if not forced:
        return list(WIRE_CODECS)
    if forced not in WIRE_CODECS:
        raise ValueError(
            f"REPRO_WIRE_CODEC={forced!r}; expected one of {WIRE_CODECS}"
        )
    return [forced]


def simple_schema(name: str = "users") -> TableSchema:
    """A small table used by many database tests."""
    return TableSchema.build(
        name,
        ["id", "name", "region", "score"],
        primary_key="id",
        indexes=["name", IndexSpec("region", ordered=True)],
    )


def build_database(rows: int = 10) -> Database:
    """A database with one populated ``users`` table."""
    from repro.clock import ManualClock

    database = Database(clock=ManualClock())
    database.create_table(simple_schema())
    database.bulk_load(
        "users",
        [
            {"id": i, "name": f"user{i}", "region": i % 3, "score": float(i)}
            for i in range(1, rows + 1)
        ],
    )
    return database


def build_deployment(
    rows: int = 20,
    mode: ConsistencyMode = ConsistencyMode.CONSISTENT,
    staleness: float = 30.0,
    cache_nodes: int = 2,
    capacity_bytes: int = 4 * 1024 * 1024,
) -> Tuple[TxCacheDeployment, "object"]:
    """A full deployment with the simple ``users`` table and one client."""
    deployment = TxCacheDeployment(
        cache_nodes=cache_nodes,
        cache_capacity_bytes_per_node=capacity_bytes,
        mode=mode,
        default_staleness=staleness,
    )
    deployment.database.create_table(simple_schema())
    deployment.database.bulk_load(
        "users",
        [
            {"id": i, "name": f"user{i}", "region": i % 3, "score": float(i)}
            for i in range(1, rows + 1)
        ],
    )
    client = deployment.client()
    return deployment, client


def update_user(deployment: TxCacheDeployment, user_id: int, **changes) -> int:
    """Commit one read/write transaction updating a user row.

    The deployment clock advances slightly afterwards so that wall-clock
    staleness bounds can distinguish "before the write" from "after it".
    """
    from repro.db.query import Eq

    transaction = deployment.database.begin_rw()
    transaction.update("users", Eq("id", user_id), changes)
    timestamp = transaction.commit()
    deployment.advance(0.1)
    return timestamp


def insert_users(deployment: TxCacheDeployment, rows: Iterable[dict]) -> int:
    """Commit one read/write transaction inserting several user rows."""
    transaction = deployment.database.begin_rw()
    for row in rows:
        transaction.insert("users", row)
    timestamp = transaction.commit()
    deployment.advance(0.1)
    return timestamp


# ----------------------------------------------------------------------
# Transport-agnostic node introspection
# ----------------------------------------------------------------------
class NodeView:
    """Read one cache node's state regardless of where the node lives.

    Thread-hosted transports keep the :class:`CacheServer` object in this
    process, so tests historically reached into ``cluster.servers[name]``
    to assert replica placement or invalidation delivery.  Process-hosted
    nodes (``socket-process``) have no such object — their state is only
    reachable over the wire.  This view serves both: direct server access
    when the server is local, the equivalent wire ops (``versions_of``,
    ``watermark``, ``stats``) when it is not, so one assertion reads the
    same way under every transport kind.
    """

    def __init__(self, cluster: CacheCluster, name: str) -> None:
        self.cluster = cluster
        self.name = name

    @property
    def _server(self):
        return self.cluster.servers.get(self.name)

    def versions_of(self, key: str):
        server = self._server
        if server is not None:
            return server.versions_of(key)
        return self.cluster._transports[self.name].versions_of(key)

    def keys(self):
        server = self._server
        if server is not None:
            return server.keys()
        return self.cluster._transports[self.name].keys()

    @property
    def last_invalidation_timestamp(self) -> int:
        server = self._server
        if server is not None:
            return server.last_invalidation_timestamp
        return self.cluster._transports[self.name].watermark()

    @property
    def stats(self):
        server = self._server
        if server is not None:
            return server.stats
        return self.cluster._transports[self.name].stats()


def node_view(cluster: CacheCluster, name: str) -> NodeView:
    """A :class:`NodeView` of one node."""
    return NodeView(cluster, name)


def node_views(cluster: CacheCluster) -> "dict[str, NodeView]":
    """A :class:`NodeView` per live node, keyed by name."""
    return {name: NodeView(cluster, name) for name in cluster.transports}


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class PartitionableTransport:
    """A transport wrapper that can simulate a network partition.

    While :attr:`partitioned` is set, every operation raises
    :class:`CacheNodeUnreachableError` — the exact failure class a dead TCP
    connection produces — so failure-aware routing, replica failover, and
    the guarded invalidation path all exercise their real code paths under
    *both* transports.  The wrapped node keeps its state, so healing the
    partition restores it as-is (watermark frozen at the last message it
    received, exactly like a rejoining network peer).
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.name = inner.name
        self.partitioned = False
        # Seeded gossip-link faults (see set_gossip_faults): probability of
        # dropping a gossip exchange, and a reply-delay queue modelling a
        # slow link that delivers old digests late.
        self._gossip_drop = 0.0
        self._gossip_delay = 0
        self._gossip_rng = random.Random(0)
        self._gossip_queue: list = []

    def set_gossip_faults(
        self, drop_rate: float = 0.0, delay_replies: int = 0, seed: int = 0
    ) -> None:
        """Degrade only this link's gossip traffic, deterministically.

        ``drop_rate`` drops each exchange (raising the same unreachable
        error a lost datagram round produces) with seeded probability;
        ``delay_replies`` holds every reply back ``delay_replies`` exchanges
        — the caller receives a digest that old instead, which is how stale
        records from before a partition arrive *after* it healed.
        """
        self._gossip_drop = drop_rate
        self._gossip_delay = delay_replies
        self._gossip_rng = random.Random(seed)
        self._gossip_queue = []

    def close(self) -> None:
        # Teardown must always work, partitioned or not.
        self.inner.close()

    def _gossip(self, digest):
        if self.partitioned:
            raise CacheNodeUnreachableError(
                f"cache node {self.name!r} is partitioned (fault injection)"
            )
        if self._gossip_drop and self._gossip_rng.random() < self._gossip_drop:
            raise CacheNodeUnreachableError(
                f"gossip to {self.name!r} dropped (fault injection)"
            )
        reply = self.inner.gossip(digest)
        if not self._gossip_delay:
            return reply
        self._gossip_queue.append(reply)
        if len(self._gossip_queue) > self._gossip_delay:
            return self._gossip_queue.pop(0)
        return {}  # reply still in flight; an empty digest merges as a no-op

    def __getattr__(self, attr):
        if attr == "gossip":
            return self._gossip
        target = getattr(self.inner, attr)
        if not callable(target):
            return target

        def guarded(*args, **kwargs):
            if self.partitioned:
                raise CacheNodeUnreachableError(
                    f"cache node {self.name!r} is partitioned (fault injection)"
                )
            return target(*args, **kwargs)

        return guarded


class FaultInjector:
    """Kill or partition cache nodes of a live cluster, mid-workload."""

    def __init__(self, cluster: CacheCluster) -> None:
        self.cluster = cluster
        self._wrappers: dict = {}

    def _wrapper_for(self, name: str) -> PartitionableTransport:
        wrapper = self._wrappers.get(name)
        current = self.cluster._transports.get(name)
        if wrapper is None or current is not wrapper:
            if current is None:
                if wrapper is not None:
                    # Node evicted since: keep driving the detached link so a
                    # test can still heal it / drain its delayed replies.
                    return wrapper
                raise KeyError(name)
            wrapper = PartitionableTransport(current)
            # Swap the wrapper into the routed path *and* the invalidation
            # guard, so a partition severs the stream like a real one would.
            self.cluster._transports[name] = wrapper
            guard = self.cluster._stream_guards.get(name)
            if guard is not None:
                guard.transport = wrapper
            self._wrappers[name] = wrapper
        return wrapper

    def partition(self, name: str) -> None:
        """Cut the node off: all traffic to it fails, state is preserved."""
        self._wrapper_for(name).partitioned = True

    def heal(self, name: str) -> None:
        """Restore connectivity to a partitioned node."""
        self._wrapper_for(name).partitioned = False

    def gossip_faults(
        self, name: str, drop_rate: float = 0.0, delay_replies: int = 0, seed: int = 0
    ) -> None:
        """Degrade only the gossip traffic on the link to ``name``.

        Seeded and per-link: data-path RPCs are untouched, gossip exchanges
        are dropped with ``drop_rate`` probability and replies are delivered
        ``delay_replies`` exchanges late (stale digests after a heal).
        Call with defaults to clear the faults.
        """
        self._wrapper_for(name).set_gossip_faults(
            drop_rate=drop_rate, delay_replies=delay_replies, seed=seed
        )

    def crash(self, name: str) -> None:
        """Kill the node outright (see :meth:`CacheCluster.fail_node`)."""
        self.cluster.fail_node(name)

    def kill(self, name: str) -> None:
        """SIGKILL a process-hosted node's child — no cleanup, no eviction.

        Unlike :meth:`crash` (which shuts the node down *and* evicts it),
        this only murders the OS process, exactly like the kernel OOM killer
        would: routing still points at the corpse until failure-aware
        routing or the supervisor notices.  Requires a ``socket-process``
        cluster (other transports have no child to kill).
        """
        host = self.cluster.processes.get(name)
        if host is None or not hasattr(host, "kill"):
            raise ValueError(
                f"node {name!r} has no OS process to kill "
                "(FaultInjector.kill needs transport='socket-process')"
            )
        host.kill()

    # ------------------------------------------------------------------
    # Kill schedules (for open-loop chaos runs)
    # ------------------------------------------------------------------
    def schedule_kill(self, name: str, at_seconds: float) -> None:
        """Arrange for :meth:`kill` of ``name`` once ``pump(elapsed)`` passes
        ``at_seconds``.  Schedules fire at most once."""
        if not hasattr(self, "_kill_schedule"):
            self._kill_schedule: list = []
        self._kill_schedule.append([at_seconds, name, False])

    def pump(self, elapsed_seconds: float) -> List[str]:
        """Fire any due scheduled kills; returns the nodes killed now."""
        killed: List[str] = []
        for entry in getattr(self, "_kill_schedule", []):
            at, name, fired = entry
            if not fired and elapsed_seconds >= at:
                entry[2] = True
                self.kill(name)
                killed.append(name)
        return killed


# ----------------------------------------------------------------------
# Consistency invariant workload
# ----------------------------------------------------------------------
class ConsistencyViolation(AssertionError):
    """A read-only transaction observed a mix of database states."""


class ConsistencyHarness:
    """Drives a deployment while checking the paper's core invariant.

    Every write transaction bumps one global version and rewrites every row
    of a small table, so all rows always carry the same version number; any
    read-only transaction that observes two different versions — whether the
    values came from the cache, a replica after failover, or the database —
    has seen an inconsistent mix of states and raises
    :class:`ConsistencyViolation`.  Faults may be injected between (or
    during) steps; the invariant must hold regardless.

    Several harnesses may share one deployment to model concurrent
    application servers: pass ``create_table=False`` for every harness after
    the first and give each its own seed (and its own thread).  Each write
    still rewrites the whole table atomically, so whatever interleaving the
    threads produce, every committed state is uniform and the one-snapshot
    invariant stays checkable from any thread.  A write that loses the
    first-committer-wins race to a concurrent harness is aborted and counted
    in :attr:`write_conflicts` — exactly what a real application server
    would see and retry.
    """

    ROWS = 6

    def __init__(
        self,
        deployment: TxCacheDeployment,
        seed: int = 1,
        create_table: bool = True,
    ) -> None:
        self.deployment = deployment
        self.client = deployment.client()
        self.rng = random.Random(seed)
        self.version = 0
        self.reads = 0
        self.writes = 0
        self.write_conflicts = 0
        if create_table:
            deployment.database.create_table(
                TableSchema.build("state", ["id", "version", "payload"], primary_key="id")
            )
            deployment.database.bulk_load(
                "state",
                [{"id": i, "version": 0, "payload": "x" * 64} for i in range(self.ROWS)],
            )

        client = self.client

        @client.cacheable(name="get_row")
        def get_row(row_id):
            return client.query(Select("state", Eq("id", row_id))).rows[0]

        self._get_row = get_row

    def write(self) -> None:
        """One update transaction: move every row to the next version."""
        from repro.db.errors import SerializationError

        self.version += 1
        transaction = self.deployment.database.begin_rw()
        try:
            for row_id in range(self.ROWS):
                transaction.update("state", Eq("id", row_id), {"version": self.version})
            transaction.commit()
        except SerializationError:
            # A concurrent harness won the first-committer-wins race for a
            # row; abort cleanly (single-threaded runs never hit this).
            transaction.abort()
            self.write_conflicts += 1
            return
        self.deployment.advance(self.rng.uniform(0.01, 0.5))
        self.writes += 1

    def read(self, staleness: Optional[float] = None) -> int:
        """One read-only transaction over a random row subset; checks the
        invariant and returns the (single) version it observed."""
        if staleness is None:
            staleness = self.rng.choice([0, 1, 5, 30, 60])
        observed = set()
        with self.client.read_only(staleness=staleness):
            for _ in range(self.rng.randint(2, self.ROWS)):
                row_id = self.rng.randrange(self.ROWS)
                if self.rng.random() < 0.6:
                    observed.add(self._get_row(row_id)["version"])
                else:
                    observed.add(
                        self.client.query(
                            Select("state", Eq("id", row_id))
                        ).rows[0]["version"]
                    )
        self.reads += 1
        if len(observed) != 1:
            raise ConsistencyViolation(
                f"read {self.reads} observed mixed versions {sorted(observed)}"
            )
        return observed.pop()

    def step(self) -> None:
        """One random workload step (write, clock advance, housekeeping, read)."""
        action = self.rng.random()
        if action < 0.30:
            self.write()
        elif action < 0.40:
            self.deployment.advance(self.rng.uniform(0.1, 20.0))
        elif action < 0.45:
            self.deployment.housekeeping(max_staleness=60.0)
        else:
            self.read()

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()
