"""Shared builders used across the test suite."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.core.api import ConsistencyMode
from repro.db.database import Database
from repro.db.schema import IndexSpec, TableSchema
from repro.deployment import TxCacheDeployment


def simple_schema(name: str = "users") -> TableSchema:
    """A small table used by many database tests."""
    return TableSchema.build(
        name,
        ["id", "name", "region", "score"],
        primary_key="id",
        indexes=["name", IndexSpec("region", ordered=True)],
    )


def build_database(rows: int = 10) -> Database:
    """A database with one populated ``users`` table."""
    from repro.clock import ManualClock

    database = Database(clock=ManualClock())
    database.create_table(simple_schema())
    database.bulk_load(
        "users",
        [
            {"id": i, "name": f"user{i}", "region": i % 3, "score": float(i)}
            for i in range(1, rows + 1)
        ],
    )
    return database


def build_deployment(
    rows: int = 20,
    mode: ConsistencyMode = ConsistencyMode.CONSISTENT,
    staleness: float = 30.0,
    cache_nodes: int = 2,
    capacity_bytes: int = 4 * 1024 * 1024,
) -> Tuple[TxCacheDeployment, "object"]:
    """A full deployment with the simple ``users`` table and one client."""
    deployment = TxCacheDeployment(
        cache_nodes=cache_nodes,
        cache_capacity_bytes_per_node=capacity_bytes,
        mode=mode,
        default_staleness=staleness,
    )
    deployment.database.create_table(simple_schema())
    deployment.database.bulk_load(
        "users",
        [
            {"id": i, "name": f"user{i}", "region": i % 3, "score": float(i)}
            for i in range(1, rows + 1)
        ],
    )
    client = deployment.client()
    return deployment, client


def update_user(deployment: TxCacheDeployment, user_id: int, **changes) -> int:
    """Commit one read/write transaction updating a user row.

    The deployment clock advances slightly afterwards so that wall-clock
    staleness bounds can distinguish "before the write" from "after it".
    """
    from repro.db.query import Eq

    transaction = deployment.database.begin_rw()
    transaction.update("users", Eq("id", user_id), changes)
    timestamp = transaction.commit()
    deployment.advance(0.1)
    return timestamp


def insert_users(deployment: TxCacheDeployment, rows: Iterable[dict]) -> int:
    """Commit one read/write transaction inserting several user rows."""
    transaction = deployment.database.begin_rw()
    for row in rows:
        transaction.insert("users", row)
    timestamp = transaction.commit()
    deployment.advance(0.1)
    return timestamp
