"""Unit and property tests for validity intervals and interval sets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interval import Interval, IntervalSet


# ----------------------------------------------------------------------
# Interval basics
# ----------------------------------------------------------------------
class TestIntervalBasics:
    def test_contains_inside(self):
        assert Interval(3, 7).contains(3)
        assert Interval(3, 7).contains(6)

    def test_contains_excludes_upper_bound(self):
        assert not Interval(3, 7).contains(7)

    def test_contains_excludes_below(self):
        assert not Interval(3, 7).contains(2)

    def test_unbounded_contains_large_values(self):
        assert Interval(5).contains(10**12)

    def test_unbounded_flag(self):
        assert Interval(5).unbounded
        assert not Interval(5, 9).unbounded

    def test_empty_interval(self):
        assert Interval(4, 4).empty
        assert not Interval(4, 5).empty
        assert not Interval(4).empty

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_equality_and_hash(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert hash(Interval(1, None)) == hash(Interval(1, None))
        assert Interval(1, 2) != Interval(1, 3)


class TestIntervalIntersection:
    def test_overlapping(self):
        assert Interval(1, 5).intersect(Interval(3, 8)) == Interval(3, 5)

    def test_disjoint_is_empty(self):
        assert Interval(1, 3).intersect(Interval(5, 9)).empty

    def test_adjacent_is_empty(self):
        assert Interval(1, 3).intersect(Interval(3, 6)).empty

    def test_unbounded_with_bounded(self):
        assert Interval(2).intersect(Interval(4, 9)) == Interval(4, 9)

    def test_both_unbounded(self):
        assert Interval(2).intersect(Interval(5)) == Interval(5)

    def test_intersects_predicate(self):
        assert Interval(1, 5).intersects(Interval(4, 9))
        assert not Interval(1, 4).intersects(Interval(4, 9))

    def test_contains_interval(self):
        assert Interval(1, 10).contains_interval(Interval(3, 7))
        assert Interval(1).contains_interval(Interval(3, 7))
        assert not Interval(3, 7).contains_interval(Interval(1, 10))
        assert not Interval(3, 7).contains_interval(Interval(5))


class TestIntervalTruncateSubtract:
    def test_truncate_unbounded(self):
        assert Interval(3).truncate(9) == Interval(3, 9)

    def test_truncate_does_not_extend(self):
        assert Interval(3, 5).truncate(9) == Interval(3, 5)

    def test_truncate_below_lower_bound_yields_empty(self):
        result = Interval(5).truncate(2)
        assert result.empty or result.hi == result.lo

    def test_subtract_middle_splits(self):
        pieces = Interval(0, 10).subtract(Interval(3, 6))
        assert pieces == [Interval(0, 3), Interval(6, 10)]

    def test_subtract_disjoint_returns_self(self):
        assert Interval(0, 3).subtract(Interval(5, 7)) == [Interval(0, 3)]

    def test_subtract_covering_returns_nothing(self):
        assert Interval(3, 5).subtract(Interval(0, 10)) == []

    def test_subtract_from_unbounded(self):
        pieces = Interval(0).subtract(Interval(4, 6))
        assert pieces == [Interval(0, 4), Interval(6, None)]

    def test_union_hull(self):
        assert Interval(1, 3).union_hull(Interval(5, 9)) == Interval(1, 9)
        assert Interval(1, 3).union_hull(Interval(5)).unbounded


# ----------------------------------------------------------------------
# IntervalSet
# ----------------------------------------------------------------------
class TestIntervalSet:
    def test_add_and_contains(self):
        s = IntervalSet([Interval(1, 3), Interval(7, 9)])
        assert s.contains(2)
        assert s.contains(8)
        assert not s.contains(5)

    def test_add_merges_overlapping(self):
        s = IntervalSet([Interval(1, 5), Interval(4, 9)])
        assert len(s) == 1
        assert s.intervals[0] == Interval(1, 9)

    def test_add_merges_adjacent(self):
        s = IntervalSet([Interval(1, 4), Interval(4, 7)])
        assert len(s) == 1

    def test_empty_intervals_ignored(self):
        s = IntervalSet([Interval(3, 3)])
        assert len(s) == 0
        assert not s

    def test_subtract_from(self):
        s = IntervalSet([Interval(2, 4), Interval(6, 8)])
        pieces = s.subtract_from(Interval(0, 10))
        assert pieces == [Interval(0, 2), Interval(4, 6), Interval(8, 10)]

    def test_piece_containing(self):
        s = IntervalSet([Interval(2, 4), Interval(6, 8)])
        assert s.piece_containing(Interval(0, 10), 5) == Interval(4, 6)
        assert s.piece_containing(Interval(0, 10), 0) == Interval(0, 2)

    def test_piece_containing_missing_timestamp_raises(self):
        s = IntervalSet([Interval(2, 4)])
        with pytest.raises(ValueError):
            s.piece_containing(Interval(0, 10), 3)

    def test_intersects(self):
        s = IntervalSet([Interval(5, 9)])
        assert s.intersects(Interval(8, 12))
        assert not s.intersects(Interval(1, 5))


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
timestamps = st.integers(min_value=0, max_value=200)


def intervals(draw) -> Interval:
    lo = draw(timestamps)
    unbounded = draw(st.booleans())
    if unbounded:
        return Interval(lo, None)
    hi = draw(st.integers(min_value=lo, max_value=220))
    return Interval(lo, hi)


interval_strategy = st.builds(
    lambda lo, span: Interval(lo, None if span is None else lo + span),
    timestamps,
    st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
)


class TestIntervalProperties:
    @given(interval_strategy, interval_strategy, timestamps)
    def test_intersection_membership(self, a, b, t):
        """t is in a∩b exactly when it is in both a and b."""
        assert a.intersect(b).contains(t) == (a.contains(t) and b.contains(t))

    @given(interval_strategy, interval_strategy)
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(interval_strategy, interval_strategy, timestamps)
    def test_subtract_membership(self, a, b, t):
        """t is in a-b exactly when it is in a and not in b."""
        in_difference = any(piece.contains(t) for piece in a.subtract(b))
        assert in_difference == (a.contains(t) and not b.contains(t))

    @given(st.lists(interval_strategy, max_size=8), interval_strategy, timestamps)
    @settings(max_examples=200)
    def test_interval_set_subtraction_membership(self, masks, source, t):
        mask_set = IntervalSet(masks)
        pieces = mask_set.subtract_from(source)
        in_pieces = any(piece.contains(t) for piece in pieces)
        assert in_pieces == (source.contains(t) and not mask_set.contains(t))

    @given(st.lists(interval_strategy, max_size=10))
    def test_interval_set_members_disjoint_and_sorted(self, members):
        s = IntervalSet(members)
        stored = s.intervals
        for first, second in zip(stored, stored[1:]):
            assert first.lo <= second.lo
            # Members are disjoint and non-adjacent (adjacent ones merge), so
            # only the last member may be unbounded and each earlier member
            # must end strictly before the next begins.
            assert first.hi is not None
            assert first.hi < second.lo

    @given(interval_strategy, timestamps)
    def test_truncate_never_grows(self, interval, t):
        truncated = interval.truncate(t)
        assert truncated.lo == interval.lo
        if interval.hi is not None:
            assert truncated.hi is not None and truncated.hi <= interval.hi
