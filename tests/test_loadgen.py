"""The open-loop load-generation subsystem, tested without wall-clock flake.

Covers the four layers bottom-up: arrival schedules (seeded determinism,
statistical sanity, Poisson splitting), the log-bucketed histogram against
a sorted-list oracle (including merges across shards and process-boundary
serialization), the engine's coordinated-omission behaviour (an injected
stall must surface in the open-loop tail and must *not* surface in the
closed-loop tail — the whole point of the subsystem), and the sweep /
capacity layers driven by a synthetic runner so their logic is exercised
with zero sockets.  One short real multi-process run at the end keeps the
wiring honest.
"""

from __future__ import annotations

import dataclasses
import math
import random
import time

import pytest

from repro.bench.loadgen import (
    ArrivalSchedule,
    CapacityModel,
    LatencyHistogram,
    OpenLoopConfig,
    RatePoint,
    SweepResult,
    capacity_report,
    poisson_arrivals,
    run_open_loop,
    run_openloop_benchmark,
    run_rate_sweep,
    uniform_arrivals,
)
from repro.bench.loadgen.runner import OpenLoopResult


# ----------------------------------------------------------------------
# Arrival schedules
# ----------------------------------------------------------------------
class TestArrivalSchedules:
    def test_same_seed_same_sequence(self):
        assert poisson_arrivals(1000.0, 500, seed=7) == poisson_arrivals(1000.0, 500, seed=7)
        assert ArrivalSchedule(rate=1000.0, seed=7).times(500) == poisson_arrivals(
            1000.0, 500, seed=7
        )

    def test_different_seeds_differ(self):
        assert poisson_arrivals(1000.0, 100, seed=1) != poisson_arrivals(1000.0, 100, seed=2)

    def test_arrivals_are_increasing(self):
        times = poisson_arrivals(500.0, 1000, seed=3)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_mean_interarrival_matches_rate(self):
        # 20k exponential gaps at rate 1000: the sample mean of the gaps
        # should land within a few percent of 1/rate (std error ~0.7%).
        count = 20_000
        times = poisson_arrivals(1000.0, count, seed=11)
        mean_gap = times[-1] / count
        assert mean_gap == pytest.approx(1e-3, rel=0.05)

    def test_uniform_arrivals_exact(self):
        assert uniform_arrivals(4.0, 3) == [0.25, 0.5, 0.75]

    def test_split_preserves_rate_and_kind(self):
        schedule = ArrivalSchedule(rate=1200.0, kind="uniform", seed=5)
        shares = schedule.split(3)
        assert [s.rate for s in shares] == [400.0, 400.0, 400.0]
        assert all(s.kind == "uniform" for s in shares)
        assert len({s.seed for s in shares}) == 3  # independent generators

    def test_split_shares_are_statistically_independent(self):
        shares = ArrivalSchedule(rate=1000.0, seed=9).split(2)
        assert shares[0].times(100) != shares[1].times(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10, seed=1)
        with pytest.raises(ValueError):
            uniform_arrivals(10.0, -1)
        with pytest.raises(ValueError):
            ArrivalSchedule(rate=100.0, kind="bursty")
        with pytest.raises(ValueError):
            ArrivalSchedule(rate=-1.0)
        with pytest.raises(ValueError):
            ArrivalSchedule(rate=100.0).split(0)


# ----------------------------------------------------------------------
# Histogram vs a sorted-list oracle
# ----------------------------------------------------------------------
#: One bucket's relative width at 90 buckets/decade — the error bound the
#: histogram's quantiles must stay within (plus float slop).
BUCKET_REL_ERROR = 10.0 ** (1.0 / 90.0) - 1.0


def oracle_percentile(samples, p):
    ranked = sorted(samples)
    rank = max(1, math.ceil(len(ranked) * p / 100.0))
    return ranked[rank - 1]


class TestLatencyHistogram:
    def _samples(self, seed, count=5000):
        rng = random.Random(seed)
        # Log-uniform over 100us..1s: spans four decades like a real mixed
        # fast-path / stalled-tail latency profile.
        return [10.0 ** rng.uniform(-4.0, 0.0) for _ in range(count)]

    def test_percentiles_match_oracle_within_bucket_error(self):
        samples = self._samples(seed=1)
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.record(sample)
        for p in (50.0, 90.0, 95.0, 99.0, 99.9):
            exact = oracle_percentile(samples, p)
            measured = histogram.percentile(p)
            assert exact <= measured <= exact * (1.0 + BUCKET_REL_ERROR) * (1.0 + 1e-9)

    def test_merge_across_shards_equals_whole(self):
        samples = self._samples(seed=2, count=3000)
        whole = LatencyHistogram()
        shards = [LatencyHistogram() for _ in range(4)]
        for index, sample in enumerate(samples):
            whole.record(sample)
            shards[index % 4].record(sample)
        merged = LatencyHistogram.merged(shards)
        assert merged.count == whole.count == len(samples)
        assert merged.max == whole.max
        for p in (50.0, 95.0, 99.0, 99.9):
            assert merged.percentile(p) == whole.percentile(p)

    def test_merge_rejects_different_layouts(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(buckets_per_decade=30))

    def test_serialization_round_trip(self):
        histogram = LatencyHistogram()
        for sample in self._samples(seed=3, count=500):
            histogram.record(sample)
        clone = LatencyHistogram.from_dict(histogram.to_dict())
        assert clone.count == histogram.count
        assert clone.max == histogram.max
        assert clone.mean == histogram.mean
        assert clone.percentiles() == histogram.percentiles()

    def test_max_is_exact_and_caps_quantiles(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.001)
        histogram.record(0.7654321)
        assert histogram.max == 0.7654321
        # p99.9 falls in the outlier's bucket; the report must be the exact
        # observed max, not the bucket's upper edge.
        assert histogram.percentile(99.9) == 0.7654321

    def test_out_of_range_samples_clamp(self):
        histogram = LatencyHistogram(min_latency=1e-3, max_latency=1.0)
        histogram.record(-5.0)  # clamps to zero -> lowest bucket
        histogram.record(50.0)  # beyond max -> top bucket, exact max kept
        assert histogram.count == 2
        assert histogram.max == 50.0
        assert histogram.percentile(100.0) == 50.0

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(99.0) == 0.0
        assert LatencyHistogram.merged([]).count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency=2.0, max_latency=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(0.0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101.0)


# ----------------------------------------------------------------------
# Engine: coordinated omission is the regression under test
# ----------------------------------------------------------------------
def _stalling_executor_factory(stall_at: int, stall_seconds: float):
    """Executors whose op ``stall_at`` stalls; every other op is fast."""

    def make_executor(thread_index: int):
        def execute(op_index: int) -> None:
            time.sleep(stall_seconds if op_index == stall_at else 0.0002)

        return execute

    return make_executor


class TestOpenLoopEngine:
    def test_injected_stall_charges_the_open_loop_tail(self):
        # 240 arrivals at 400/s with a 120ms stall injected at op 40.  Open
        # loop: ~48 arrivals fall due during the stall and each is charged
        # its queueing delay from its *scheduled* time, so the stall owns
        # the tail far past p80.  Closed loop: the same stall delays the
        # schedule instead, exactly one sample (~0.4%) is slow, and p99 of
        # service time still looks sub-millisecond — coordinated omission.
        times = uniform_arrivals(400.0, 240)
        make_executor = _stalling_executor_factory(stall_at=40, stall_seconds=0.12)

        open_stats = run_open_loop(times, make_executor, threads=1, mode="open")
        closed_stats = run_open_loop(times, make_executor, threads=1, mode="closed")

        assert open_stats.completed == closed_stats.completed == 240
        assert open_stats.errors == closed_stats.errors == 0
        assert open_stats.histogram.percentile(99.0) >= 0.05
        assert closed_stats.histogram.percentile(99.0) <= 0.02
        # Both saw the stall itself: the max service/latency is >= 120ms.
        assert closed_stats.histogram.max >= 0.12

    def test_open_loop_holds_offered_duration(self):
        # An idle-capable executor must not finish faster than the
        # schedule: open loop paces, closed loop front-runs.
        times = uniform_arrivals(1000.0, 200)  # 0.2s of schedule
        make_executor = _stalling_executor_factory(stall_at=-1, stall_seconds=0.0)
        open_stats = run_open_loop(times, make_executor, threads=2, mode="open")
        closed_stats = run_open_loop(times, make_executor, threads=2, mode="closed")
        assert open_stats.wall_seconds >= 0.19
        assert closed_stats.wall_seconds < open_stats.wall_seconds

    def test_errors_counted_not_recorded(self):
        times = uniform_arrivals(2000.0, 50)

        def make_executor(thread_index: int):
            def execute(op_index: int) -> None:
                if op_index % 5 == 0:
                    raise RuntimeError("boom")

            return execute

        stats = run_open_loop(times, make_executor, threads=2, mode="open")
        assert stats.errors == 10
        assert stats.completed == 40
        assert stats.histogram.count == 40

    def test_empty_schedule(self):
        stats = run_open_loop([], _stalling_executor_factory(-1, 0.0), threads=2)
        assert stats.completed == 0
        assert stats.wall_seconds == 0.0

    def test_validation(self):
        factory = _stalling_executor_factory(-1, 0.0)
        with pytest.raises(ValueError):
            run_open_loop([0.1], factory, threads=0)
        with pytest.raises(ValueError):
            run_open_loop([0.1], factory, mode="ajar")


# ----------------------------------------------------------------------
# Sweep + capacity on a synthetic system (no sockets)
# ----------------------------------------------------------------------
def _fake_runner(capacity_ops: float, slow_above: float):
    """A runner modelling a system saturating at ``capacity_ops``.

    Below ``slow_above`` the tail is 2ms; past it (but still under
    capacity) p99 blows out to 500ms — so the SLO ceiling sits below the
    goodput knee, which is the distinction the sweep exists to report.
    """

    def runner(config: OpenLoopConfig) -> OpenLoopResult:
        achieved = min(config.offered_rate, capacity_ops)
        p99 = 0.002 if config.offered_rate <= slow_above else 0.5
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(p99)
        return OpenLoopResult(
            label=config.label,
            offered_rate=config.offered_rate,
            mode=config.mode,
            arrival=config.arrival,
            processes=config.processes,
            threads_per_process=config.threads_per_process,
            transport="fake",
            completed=int(achieved * 2),
            errors=0,
            wall_seconds=2.0,
            achieved_goodput=achieved,
            hit_rate=1.0,
            histogram=histogram,
        )

    return runner


class TestSweepAndCapacity:
    def test_knee_and_slo_ceiling(self):
        sweep = run_rate_sweep(
            OpenLoopConfig(label="fake"),
            rates=[250, 500, 1000, 2000],
            runner=_fake_runner(capacity_ops=1000.0, slow_above=600.0),
        )
        assert [p.offered_rate for p in sweep.points] == [250, 500, 1000, 2000]
        knee = sweep.knee()
        assert knee is not None and knee.offered_rate == 1000
        slo = sweep.max_rate_under_slo(0.05)
        assert slo is not None and slo.offered_rate == 500
        assert "fake" in sweep.format_table()

    def test_geometric_ramp_stops_after_saturation(self):
        calls = []

        def counting_runner(config):
            calls.append(config.offered_rate)
            return _fake_runner(capacity_ops=1000.0, slow_above=600.0)(config)

        sweep = run_rate_sweep(
            OpenLoopConfig(label="fake"),
            start_rate=500.0,
            growth=2.0,
            max_points=8,
            runner=counting_runner,
        )
        # 500 absorbed, 1000 absorbed, 2000 saturated -> stop: 3 calls, not 8.
        assert calls == [500.0, 1000.0, 2000.0]
        assert sweep.knee().offered_rate == 1000.0

    def test_total_ops_scale_with_rate(self):
        seen = []

        def recording_runner(config):
            seen.append((config.offered_rate, config.total_ops))
            return _fake_runner(10_000.0, 10_000.0)(config)

        run_rate_sweep(
            OpenLoopConfig(),
            rates=[100, 1000],
            seconds_per_point=3.0,
            runner=recording_runner,
        )
        assert seen == [(100.0, 300), (1000.0, 3000)]

    def test_capacity_model_math(self):
        model = CapacityModel(
            label="unit",
            sustained_ops_per_second=1000.0,
            p99_at_sustained=0.002,
            cache_nodes=2,
            driver_cores=4,
            think_time_seconds=7.0,
        )
        assert model.ops_per_core == 250.0
        assert model.ops_per_node == 500.0
        assert model.concurrent_users == 7000.0
        assert model.users_at_nodes(8) == 28_000.0
        assert "concurrent users" in model.format_table()
        assert model.to_dict()["concurrent_users"] == 7000.0

    def test_capacity_report_prefers_slo_point(self):
        sweep = run_rate_sweep(
            OpenLoopConfig(label="fake"),
            rates=[250, 500, 1000],
            runner=_fake_runner(capacity_ops=1000.0, slow_above=600.0),
        )
        model = capacity_report(sweep, cache_nodes=2, driver_cores=2, slo_seconds=0.05)
        assert model.sustained_ops_per_second == 500.0
        # Without an SLO the knee is the sustained rate.
        model = capacity_report(sweep, cache_nodes=2, driver_cores=2)
        assert model.sustained_ops_per_second == 1000.0

    def test_capacity_report_none_when_nothing_absorbed(self):
        sweep = SweepResult(label="dead", transport="fake", points=[])
        assert capacity_report(sweep, cache_nodes=2) is None

    def test_rate_point_saturation(self):
        point = RatePoint(
            offered_rate=1000.0,
            achieved_goodput=800.0,
            p50=0.001,
            p95=0.002,
            p99=0.003,
            p999=0.004,
            errors=0,
            hit_rate=1.0,
        )
        assert point.saturation == 0.8

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            run_rate_sweep(OpenLoopConfig(), rates=[])
        with pytest.raises(ValueError):
            run_rate_sweep(OpenLoopConfig(), rates=[-5.0])
        with pytest.raises(ValueError):
            run_rate_sweep(OpenLoopConfig(), start_rate=0.0)


# ----------------------------------------------------------------------
# One short real run: the multi-process wiring, end to end
# ----------------------------------------------------------------------
class TestOpenLoopBenchmark:
    def test_multiprocess_open_loop_end_to_end(self):
        config = OpenLoopConfig(
            offered_rate=600.0,
            total_ops=600,
            processes=2,
            threads_per_process=2,
            label="loadgen-e2e",
        )
        result = run_openloop_benchmark(config)
        assert result.errors == 0
        assert result.completed == 600
        assert result.histogram.count == 600
        assert result.achieved_goodput > 0
        assert result.transport == "pipelined+eventloop"
        assert 0.0 < result.hit_rate <= 1.0
        percentiles = result.percentiles()
        assert percentiles[50.0] <= percentiles[99.0]
        assert "offered" in result.summary()

    def test_benchmark_validation(self):
        with pytest.raises(ValueError):
            run_openloop_benchmark(dataclasses.replace(OpenLoopConfig(), processes=0))
        with pytest.raises(ValueError):
            run_openloop_benchmark(dataclasses.replace(OpenLoopConfig(), total_ops=0))
        with pytest.raises(ValueError):
            run_openloop_benchmark(dataclasses.replace(OpenLoopConfig(), transport="inprocess"))
