"""Tests for read/write and read-only transactions (snapshot isolation)."""

from __future__ import annotations

import pytest

from repro.comm.multicast import InvalidationBus
from repro.db.database import Database
from repro.db.errors import SerializationError, TransactionStateError
from repro.db.invalidation import InvalidationTag
from repro.db.query import Eq, Select
from repro.clock import ManualClock
from tests.helpers import build_database, simple_schema


@pytest.fixture
def db():
    return build_database(rows=5)


class TestReadWriteBasics:
    def test_insert_visible_after_commit(self, db):
        tx = db.begin_rw()
        tx.insert("users", {"id": 99, "name": "new", "region": 0, "score": 0.0})
        tx.commit()
        assert len(db.begin_ro().query(Select("users", Eq("id", 99))).rows) == 1

    def test_insert_invisible_before_commit(self, db):
        tx = db.begin_rw()
        tx.insert("users", {"id": 99, "name": "new", "region": 0, "score": 0.0})
        assert db.begin_ro().query(Select("users", Eq("id", 99))).rows == []
        tx.commit()

    def test_transaction_sees_its_own_insert(self, db):
        tx = db.begin_rw()
        tx.insert("users", {"id": 99, "name": "new", "region": 0, "score": 0.0})
        assert len(tx.query(Select("users", Eq("id", 99))).rows) == 1

    def test_update_changes_value(self, db):
        tx = db.begin_rw()
        count = tx.update("users", Eq("id", 2), {"name": "renamed"})
        tx.commit()
        assert count == 1
        assert db.begin_ro().query(Select("users", Eq("id", 2))).rows[0]["name"] == "renamed"

    def test_transaction_sees_its_own_update(self, db):
        tx = db.begin_rw()
        tx.update("users", Eq("id", 2), {"name": "renamed"})
        assert tx.query(Select("users", Eq("id", 2))).rows[0]["name"] == "renamed"

    def test_delete_removes_row(self, db):
        tx = db.begin_rw()
        count = tx.delete("users", Eq("id", 3))
        tx.commit()
        assert count == 1
        assert db.begin_ro().query(Select("users", Eq("id", 3))).rows == []

    def test_transaction_does_not_see_its_own_delete(self, db):
        tx = db.begin_rw()
        tx.delete("users", Eq("id", 3))
        assert tx.query(Select("users", Eq("id", 3))).rows == []

    def test_commit_returns_increasing_timestamps(self, db):
        first = db.begin_rw()
        first.update("users", Eq("id", 1), {"score": 1.0})
        first_ts = first.commit()
        second = db.begin_rw()
        second.update("users", Eq("id", 2), {"score": 2.0})
        assert second.commit() > first_ts

    def test_empty_commit_consumes_no_timestamp(self, db):
        before = db.latest_timestamp
        tx = db.begin_rw()
        tx.query(Select("users", Eq("id", 1)))
        assert tx.commit() == before
        assert db.latest_timestamp == before

    def test_operations_after_commit_rejected(self, db):
        tx = db.begin_rw()
        tx.commit()
        with pytest.raises(TransactionStateError):
            tx.insert("users", {"id": 100, "name": "x", "region": 0, "score": 0.0})
        with pytest.raises(TransactionStateError):
            tx.commit()


class TestAbort:
    def test_aborted_insert_disappears(self, db):
        tx = db.begin_rw()
        tx.insert("users", {"id": 99, "name": "new", "region": 0, "score": 0.0})
        tx.abort()
        assert db.begin_ro().query(Select("users", Eq("id", 99))).rows == []
        # The provisional version is physically removed, not just hidden.
        assert db.table("users").index_on("id").lookup(99) == []

    def test_aborted_update_restores_old_version(self, db):
        tx = db.begin_rw()
        tx.update("users", Eq("id", 2), {"name": "renamed"})
        tx.abort()
        row = db.begin_ro().query(Select("users", Eq("id", 2))).rows[0]
        assert row["name"] == "user2"
        # And the row can be updated again afterwards.
        tx2 = db.begin_rw()
        assert tx2.update("users", Eq("id", 2), {"name": "second"}) == 1
        tx2.commit()

    def test_aborted_delete_restores_row(self, db):
        tx = db.begin_rw()
        tx.delete("users", Eq("id", 2))
        tx.abort()
        assert len(db.begin_ro().query(Select("users", Eq("id", 2))).rows) == 1

    def test_abort_counted(self, db):
        before = db.stats.aborts
        tx = db.begin_rw()
        tx.abort()
        assert db.stats.aborts == before + 1


class TestSnapshotIsolation:
    def test_reader_does_not_see_concurrent_uncommitted_write(self, db):
        reader = db.begin_ro()
        writer = db.begin_rw()
        writer.update("users", Eq("id", 1), {"name": "changed"})
        assert reader.query(Select("users", Eq("id", 1))).rows[0]["name"] == "user1"
        writer.commit()
        # Snapshot taken at BEGIN: still the old value.
        assert reader.query(Select("users", Eq("id", 1))).rows[0]["name"] == "user1"

    def test_new_reader_sees_committed_write(self, db):
        writer = db.begin_rw()
        writer.update("users", Eq("id", 1), {"name": "changed"})
        writer.commit()
        assert db.begin_ro().query(Select("users", Eq("id", 1))).rows[0]["name"] == "changed"

    def test_write_write_conflict_detected(self, db):
        first = db.begin_rw()
        second = db.begin_rw()
        first.update("users", Eq("id", 1), {"score": 10.0})
        with pytest.raises(SerializationError):
            second.update("users", Eq("id", 1), {"score": 20.0})

    def test_conflict_with_committed_writer_detected(self, db):
        early = db.begin_rw()  # snapshot before the other writer commits
        other = db.begin_rw()
        other.update("users", Eq("id", 1), {"score": 10.0})
        other.commit()
        with pytest.raises(SerializationError):
            early.update("users", Eq("id", 1), {"score": 20.0})

    def test_non_conflicting_writers_both_commit(self, db):
        first = db.begin_rw()
        second = db.begin_rw()
        first.update("users", Eq("id", 1), {"score": 10.0})
        second.update("users", Eq("id", 2), {"score": 20.0})
        first.commit()
        second.commit()


class TestCommitInvalidations:
    def build(self):
        bus = InvalidationBus()
        received = []

        class Collector:
            def process_invalidation(self, message):
                received.append(message)

        bus.subscribe(Collector())
        db = Database(clock=ManualClock(), invalidation_bus=bus)
        db.create_table(simple_schema())
        db.bulk_load(
            "users",
            [{"id": i, "name": f"user{i}", "region": i % 2, "score": 0.0} for i in range(1, 4)],
        )
        return db, received

    def test_update_publishes_tags_for_old_and_new_values(self):
        db, received = self.build()
        tx = db.begin_rw()
        tx.update("users", Eq("id", 1), {"name": "renamed"})
        ts = tx.commit()
        assert len(received) == 1
        message = received[0]
        assert message.timestamp == ts
        tags = set(message.tags)
        assert InvalidationTag.key("users", "name", "user1") in tags
        assert InvalidationTag.key("users", "name", "renamed") in tags
        assert InvalidationTag.key("users", "id", 1) in tags

    def test_insert_publishes_tags_for_each_index(self):
        db, received = self.build()
        tx = db.begin_rw()
        tx.insert("users", {"id": 50, "name": "n", "region": 1, "score": 0.0})
        tx.commit()
        tags = set(received[0].tags)
        assert InvalidationTag.key("users", "id", 50) in tags
        assert InvalidationTag.key("users", "name", "n") in tags
        assert InvalidationTag.key("users", "region", 1) in tags

    def test_readonly_rw_commit_publishes_nothing(self):
        db, received = self.build()
        tx = db.begin_rw()
        tx.query(Select("users", Eq("id", 1)))
        tx.commit()
        assert received == []

    def test_bulk_update_collapses_to_wildcard(self):
        db, received = self.build()
        db.bulk_load(
            "users",
            [{"id": i, "name": f"bulk{i}", "region": 0, "score": 0.0} for i in range(100, 200)],
        )
        tx = db.begin_rw()
        tx.update("users", Eq("region", 0), {"score": 5.0})
        tx.commit()
        tags = set(received[-1].tags)
        assert InvalidationTag.wildcard("users") in tags


class TestReadOnlyTransaction:
    def test_commit_returns_snapshot_timestamp(self, db):
        ro = db.begin_ro()
        assert ro.commit() == db.latest_timestamp

    def test_query_after_finish_rejected(self, db):
        ro = db.begin_ro()
        ro.commit()
        with pytest.raises(TransactionStateError):
            ro.query(Select("users"))

    def test_abort_allowed(self, db):
        ro = db.begin_ro()
        ro.abort()
        assert not ro.active
