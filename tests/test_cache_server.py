"""Tests for the versioned cache server."""

from __future__ import annotations

import pytest

from repro.cache.server import CacheServer
from repro.clock import ManualClock
from repro.comm.multicast import InvalidationMessage
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval


@pytest.fixture
def server():
    return CacheServer(name="c0", capacity_bytes=1024 * 1024, clock=ManualClock())


def tag(value, column="id", table="users"):
    return InvalidationTag.key(table, column, value)


def invalidate(server, ts, *tags):
    server.process_invalidation(InvalidationMessage(timestamp=ts, tags=tuple(tags)))


class TestVersionedLookup:
    def test_miss_on_empty_cache(self, server):
        result = server.lookup("k", 0, 10)
        assert not result.hit
        assert not result.key_ever_stored

    def test_hit_within_interval(self, server):
        server.put("k", "value", Interval(3, 8))
        result = server.lookup("k", 4, 6)
        assert result.hit
        assert result.value == "value"
        assert result.interval == Interval(3, 8)

    def test_hit_on_partial_overlap(self, server):
        server.put("k", "value", Interval(3, 8))
        assert server.lookup("k", 0, 3).hit       # 3 is acceptable
        assert server.lookup("k", 7, 20).hit      # 7 is acceptable
        assert not server.lookup("k", 8, 20).hit  # interval excludes 8
        assert not server.lookup("k", 0, 2).hit

    def test_multiple_versions_most_recent_returned(self, server):
        server.put("k", "old", Interval(0, 5))
        server.put("k", "new", Interval(5, 10))
        result = server.lookup("k", 0, 20)
        assert result.value == "new"

    def test_old_version_still_reachable(self, server):
        server.put("k", "old", Interval(0, 5))
        server.put("k", "new", Interval(5, 10))
        assert server.lookup("k", 2, 4).value == "old"

    def test_still_valid_entry_effective_upper_bound(self, server):
        server.put("k", "value", Interval(3), tags=frozenset({tag(1)}))
        # No invalidation processed yet: entry known valid only at [3, 4).
        assert server.lookup("k", 3, 10).interval == Interval(3, 4)
        server.note_timestamp(9)
        assert server.lookup("k", 3, 10).interval == Interval(3, 10)

    def test_lookup_result_reports_key_history(self, server):
        server.put("k", "value", Interval(0, 2))
        result = server.lookup("k", 5, 9)
        assert not result.hit
        assert result.key_ever_stored
        assert result.fresh_version_exists

    def test_probe_does_not_affect_stats(self, server):
        server.put("k", "value", Interval(0, 5))
        before = server.stats.lookups
        assert server.probe("k", 0, 10)
        assert not server.probe("k", 6, 10)
        assert server.stats.lookups == before

    def test_raw_interval_and_tags_returned(self, server):
        tags = frozenset({tag(7)})
        server.put("k", "value", Interval(2), tags=tags)
        server.note_timestamp(5)
        result = server.lookup("k", 2, 5)
        assert result.raw_interval == Interval(2, None)
        assert result.tags == tags


class TestPut:
    def test_empty_interval_rejected(self, server):
        assert not server.put("k", "v", Interval(5, 5))
        assert server.stats.rejected_insertions == 1

    def test_duplicate_covered_interval_rejected(self, server):
        assert server.put("k", "v", Interval(0, 10))
        assert not server.put("k", "v", Interval(2, 8))
        assert server.entry_count == 1

    def test_insert_after_invalidation_is_truncated(self, server):
        """The insert/invalidate race: a stale still-valid insert arriving
        after the invalidation for its tags must not stay valid forever."""
        invalidate(server, 7, tag(1))
        server.put("k", "stale", Interval(3), tags=frozenset({tag(1)}))
        entry = server.versions_of("k")[0]
        assert not entry.still_valid
        assert entry.interval.hi == 7

    def test_insert_truncates_at_first_invalidation_not_latest(self, server):
        """Regression: several invalidations of the same tag before a late
        insert must truncate at the *first* one after the entry's birth.
        Truncating at the latest would claim validity for every intermediate
        version — observable as mixed-snapshot reads once concurrent writers
        can commit between a transaction's query and its cache insert."""
        invalidate(server, 5, tag(1))
        invalidate(server, 9, tag(1))
        server.put("k", "v-from-ts-2", Interval(2), tags=frozenset({tag(1)}))
        entry = server.versions_of("k")[0]
        assert not entry.still_valid
        assert entry.interval.hi == 5  # not 9

    def test_insert_born_at_latest_invalidation_keeps_birth_timestamp(self, server):
        invalidate(server, 5, tag(1))
        server.put("k", "v-from-ts-5", Interval(5), tags=frozenset({tag(1)}))
        entry = server.versions_of("k")[0]
        # Valid at its birth timestamp at least; nothing later is claimed.
        assert entry.interval.lo == 5
        assert entry.interval.hi == 6

    def test_stale_eviction_prunes_histories_without_overclaiming(self, server):
        invalidate(server, 3, tag(1))
        invalidate(server, 6, tag(1))
        invalidate(server, 9, tag(1))
        server.evict_stale(7)
        # The largest pruned timestamp (6) survives as the history head, so
        # a very late insert truncates below the horizon instead of
        # overclaiming up to the next retained invalidation (9).
        server.put("k", "ancient", Interval(1), tags=frozenset({tag(1)}))
        assert server.versions_of("k")[0].interval.hi == 6

    def test_insert_after_unrelated_invalidation_stays_valid(self, server):
        invalidate(server, 7, tag(999))
        server.put("k", "fresh", Interval(3), tags=frozenset({tag(1)}))
        assert server.versions_of("k")[0].still_valid

    def test_insert_after_wildcard_invalidation_is_truncated(self, server):
        invalidate(server, 7, InvalidationTag.wildcard("users"))
        server.put("k", "stale", Interval(3), tags=frozenset({tag(1)}))
        assert not server.versions_of("k")[0].still_valid

    def test_size_accounting(self, server):
        server.put("k", "x" * 100, Interval(0))
        assert server.used_bytes > 100


class TestInvalidationProcessing:
    def test_matching_tag_truncates_entry(self, server):
        server.put("k", "v", Interval(2), tags=frozenset({tag(1)}))
        invalidate(server, 9, tag(1))
        entry = server.versions_of("k")[0]
        assert entry.interval == Interval(2, 9)
        assert server.stats.entries_invalidated == 1

    def test_non_matching_tag_leaves_entry_valid(self, server):
        server.put("k", "v", Interval(2), tags=frozenset({tag(1)}))
        invalidate(server, 9, tag(2))
        assert server.versions_of("k")[0].still_valid

    def test_wildcard_invalidation_hits_precise_dependency(self, server):
        server.put("k", "v", Interval(2), tags=frozenset({tag(1)}))
        invalidate(server, 9, InvalidationTag.wildcard("users"))
        assert not server.versions_of("k")[0].still_valid

    def test_precise_invalidation_hits_wildcard_dependency(self, server):
        """An entry that depends on a scan (wildcard tag) is affected by any
        update to that table."""
        server.put("k", "v", Interval(2), tags=frozenset({InvalidationTag.wildcard("users")}))
        invalidate(server, 9, tag(5))
        assert not server.versions_of("k")[0].still_valid

    def test_invalidation_advances_watermark(self, server):
        invalidate(server, 12, tag(1))
        assert server.last_invalidation_timestamp == 12

    def test_bounded_entries_unaffected(self, server):
        server.put("k", "v", Interval(2, 6))
        invalidate(server, 9, InvalidationTag.wildcard("users"))
        assert server.versions_of("k")[0].interval == Interval(2, 6)

    def test_atomic_invalidations_share_timestamp(self, server):
        server.put("a", "v", Interval(2), tags=frozenset({tag(1)}))
        server.put("b", "v", Interval(3), tags=frozenset({tag(2)}))
        invalidate(server, 9, tag(1), tag(2))
        assert server.versions_of("a")[0].interval.hi == 9
        assert server.versions_of("b")[0].interval.hi == 9


class TestEviction:
    def test_lru_eviction_when_over_capacity(self):
        clock = ManualClock()
        server = CacheServer(capacity_bytes=2000, clock=clock)
        for i in range(30):
            clock.advance(1.0)
            server.put(f"k{i}", "x" * 100, Interval(0))
        assert server.used_bytes <= 2000
        assert server.stats.lru_evictions > 0
        # The most recently inserted key is still present.
        assert server.lookup("k29", 0, 10).hit

    def test_recently_used_keys_survive(self):
        clock = ManualClock()
        server = CacheServer(capacity_bytes=3000, clock=clock)
        server.put("hot", "x" * 100, Interval(0))
        for i in range(40):
            clock.advance(1.0)
            server.lookup("hot", 0, 10)
            server.put(f"cold{i}", "x" * 100, Interval(0))
        assert server.lookup("hot", 0, 10).hit

    def test_evictions_are_not_errors(self, server):
        """Evicted entries simply miss later (cache entries are never pinned)."""
        small = CacheServer(capacity_bytes=500, clock=ManualClock())
        small.put("a", "x" * 400, Interval(0))
        small.put("b", "y" * 400, Interval(0))
        assert small.lookup("b", 0, 10).hit
        assert not small.lookup("a", 0, 10).hit
        assert small.lookup("a", 0, 10).key_ever_stored

    def test_evict_stale_removes_expired_versions(self, server):
        server.put("k", "old", Interval(0, 4))
        server.put("k", "new", Interval(4, 9))
        removed = server.evict_stale(5)
        assert removed == 1
        assert not server.lookup("k", 0, 3).hit
        assert server.lookup("k", 4, 8).hit

    def test_evict_stale_keeps_still_valid(self, server):
        server.put("k", "v", Interval(0), tags=frozenset({tag(1)}))
        assert server.evict_stale(100) == 0
        # Still-valid entries survive eager eviction and remain usable once
        # the invalidation watermark catches up to the requested range.
        server.note_timestamp(150)
        assert server.lookup("k", 100, 200).hit is True

    def test_clear(self, server):
        server.put("k", "v", Interval(0))
        server.clear()
        assert server.entry_count == 0
        assert server.used_bytes == 0


class TestStats:
    def test_hit_rate(self, server):
        server.put("k", "v", Interval(0))
        server.lookup("k", 0, 5)
        server.lookup("missing", 0, 5)
        assert server.stats.hits == 1
        assert server.stats.misses == 1
        assert server.stats.hit_rate == pytest.approx(0.5)

    def test_reset(self, server):
        server.put("k", "v", Interval(0))
        server.lookup("k", 0, 5)
        server.stats.reset()
        assert server.stats.lookups == 0
        assert server.stats.insertions == 0
