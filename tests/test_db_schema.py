"""Tests for table schemas, columns, and index specifications."""

from __future__ import annotations

import pytest

from repro.db.schema import Column, IndexSpec, TableSchema


class TestColumn:
    def test_untyped_column_accepts_anything(self):
        Column("x").validate(42)
        Column("x").validate("str")
        Column("x").validate(None)

    def test_typed_column_accepts_matching_type(self):
        Column("x", int).validate(7)

    def test_typed_column_rejects_mismatch(self):
        with pytest.raises(TypeError):
            Column("x", int).validate("not an int")

    def test_non_nullable_rejects_none(self):
        with pytest.raises(TypeError):
            Column("x", int, nullable=False).validate(None)

    def test_nullable_accepts_none_even_when_typed(self):
        Column("x", int, nullable=True).validate(None)


class TestIndexSpec:
    def test_names_distinguish_hash_and_btree(self):
        assert IndexSpec("a").name == "hash:a"
        assert IndexSpec("a", ordered=True).name == "btree:a"


class TestTableSchema:
    def test_build_accepts_strings(self):
        schema = TableSchema.build("t", ["id", "x"], "id", indexes=["x"])
        assert schema.column_names == ["id", "x"]
        assert schema.indexes[0].column == "x"

    def test_build_accepts_mixed_columns(self):
        schema = TableSchema.build("t", [Column("id", int), "x"], "id")
        assert schema.column("id").type is int

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema.build("t", ["id", "id"], "id")

    def test_primary_key_must_be_column(self):
        with pytest.raises(ValueError):
            TableSchema.build("t", ["a", "b"], "missing")

    def test_index_on_unknown_column_rejected(self):
        with pytest.raises(ValueError):
            TableSchema.build("t", ["a", "b"], "a", indexes=["missing"])

    def test_column_lookup(self):
        schema = TableSchema.build("t", ["id", "x"], "id")
        assert schema.column("x").name == "x"
        with pytest.raises(KeyError):
            schema.column("missing")

    def test_all_index_specs_includes_primary_key(self):
        schema = TableSchema.build("t", ["id", "x"], "id", indexes=["x"])
        specs = schema.all_index_specs()
        assert specs[0].column == "id"
        assert specs[0].unique
        assert any(spec.column == "x" for spec in specs)

    def test_primary_key_index_not_duplicated(self):
        schema = TableSchema.build("t", ["id"], "id", indexes=["id"])
        specs = schema.all_index_specs()
        assert len([spec for spec in specs if spec.column == "id"]) == 1
