"""R-way replication: zero-loss failover, replica-aware migration, repair.

The headline scenarios, run under both transports via the fault-injection
harness (:mod:`tests.helpers`):

* killing or partitioning a cache node mid-workload with R=2 never serves a
  stale read (the validity-interval invariant of
  ``test_consistency_properties.py`` re-checked under failover) and never
  degrades a lookup — some replica always answers;
* puts fan out to the whole replica set and reads fail over along it, with
  replica-served hits accounted in :class:`ClusterHealthStats`;
* a crash eviction triggers an anti-entropy repair that restores the
  replication factor from the surviving copies — without fabricating
  validity on nodes that missed invalidations (the healed-partition case);
* ``replication_factor=1`` behaves exactly like the unreplicated cluster.
"""

from __future__ import annotations

import pytest

from repro.cache.cluster import CacheCluster
from repro.cache.membership import ClusterMembership
from repro.clock import ManualClock
from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.core.keys import cache_key
from repro.core.stats import MissType
from repro.db.invalidation import InvalidationTag
from repro.deployment import TxCacheDeployment
from repro.interval import Interval
from tests.helpers import (
    ConsistencyHarness,
    FaultInjector,
    node_view,
    node_views,
    transports_under_test,
)

TRANSPORTS = transports_under_test()


@pytest.fixture(params=TRANSPORTS)
def transport_kind(request):
    return request.param


def build_cluster(transport_kind, nodes=3, factor=2, bus=None, failure_threshold=2):
    return CacheCluster(
        node_count=nodes,
        capacity_bytes_per_node=4 * 1024 * 1024,
        clock=ManualClock(),
        invalidation_bus=bus,
        transport=transport_kind,
        replication_factor=factor,
        failure_threshold=failure_threshold,
    )


def fill(cluster, count=120, tagged=True):
    keys = [f"key-{i}" for i in range(count)]
    for i, key in enumerate(keys):
        tags = frozenset({InvalidationTag.key("items", "id", i % 20)}) if tagged else frozenset()
        cluster.put(key, {"i": i}, Interval(0), tags)
    return keys


def holders_of(cluster, key):
    """The nodes whose server actually stores a copy of ``key``."""
    return sorted(
        name for name, view in node_views(cluster).items() if view.versions_of(key)
    )


# ----------------------------------------------------------------------
# Replica placement and accounting
# ----------------------------------------------------------------------
class TestReplicaPlacement:
    def test_puts_fan_out_to_the_full_replica_set(self, transport_kind):
        cluster = build_cluster(transport_kind)
        try:
            keys = fill(cluster)
            for key in keys:
                replicas = cluster.replicas_for(key)
                assert len(replicas) == 2
                assert replicas[0] == cluster.ring.node_for(key)
                assert holders_of(cluster, key) == sorted(replicas)
        finally:
            cluster.close()

    def test_replica_set_capped_by_ring_size(self, transport_kind):
        cluster = build_cluster(transport_kind, nodes=2, factor=3)
        try:
            cluster.put("k", 1, Interval(0))
            assert len(cluster.replicas_for("k")) == 2
            assert holders_of(cluster, "k") == sorted(cluster.ring.nodes)
        finally:
            cluster.close()

    def test_invalidations_truncate_every_replica(self, transport_kind):
        bus = InvalidationBus()
        cluster = build_cluster(transport_kind, bus=bus)
        try:
            keys = fill(cluster, tagged=True)
            bus.publish(
                InvalidationMessage(timestamp=6, tags=(InvalidationTag.wildcard("items"),))
            )
            for key in keys[:20]:
                for name in cluster.replicas_for(key):
                    for entry in node_view(cluster, name).versions_of(key):
                        assert not entry.still_valid
                        assert entry.interval.hi == 6
        finally:
            cluster.close()

    def test_r1_behaves_exactly_like_the_unreplicated_cluster(self, transport_kind):
        cluster = build_cluster(transport_kind, factor=1)
        try:
            keys = fill(cluster, tagged=False)
            for key in keys:
                assert cluster.replicas_for(key) == [cluster.ring.node_for(key)]
                assert holders_of(cluster, key) == [cluster.ring.node_for(key)]
            # One insertion per put: no hidden fan-out.
            assert cluster.aggregate_stats().insertions == len(keys)
            assert cluster.health.replica_served_lookups == 0
            assert cluster.health.replica_hits == 0
            # A crash with R=1 degrades exactly as before: no failover.
            victim = cluster.ring.node_for(keys[0])
            owned = [k for k in keys if cluster.ring.node_for(k) == victim]
            cluster.fail_node(victim)
            if transport_kind != "inprocess":
                result = cluster.lookup(owned[0], 0, 5)
                assert not result.hit and result.degraded
                assert cluster.health.replica_served_lookups == 0
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# Crash failover
# ----------------------------------------------------------------------
class TestCrashFailover:
    def test_killing_any_single_node_loses_no_cached_state(self, transport_kind):
        for victim_index in range(3):
            cluster = build_cluster(transport_kind)
            membership = ClusterMembership(cluster, chunk_size=16)
            try:
                keys = fill(cluster, tagged=False)
                victim = sorted(cluster.ring.nodes)[victim_index]
                cluster.fail_node(victim)
                # Every key stays servable throughout detection + eviction.
                for _round in range(cluster.failure_threshold + 1):
                    for key in keys:
                        result = cluster.lookup(key, 0, 5)
                        assert result.hit, (victim, key)
                        assert not result.degraded
                assert cluster.health.degraded_lookups == 0
                assert victim not in cluster.ring
                # Anti-entropy repair restored the replication factor.
                assert membership.stats.repairs == 1
                assert membership.stats.entries_re_replicated > 0
                for key in keys:
                    assert holders_of(cluster, key) == sorted(cluster.replicas_for(key))
            finally:
                cluster.close()

    def test_suspect_window_hits_are_classified_as_replica_served(self):
        """Socket transport: while the dead primary is still in the ring,
        lookups fail over and the replica's answers are accounted."""
        cluster = build_cluster("socket", failure_threshold=10)
        try:
            keys = fill(cluster, tagged=False)
            victim = cluster.ring.node_for(keys[0])
            owned = [k for k in keys if cluster.ring.node_for(k) == victim]
            cluster.fail_node(victim)
            for key in owned[:4]:
                assert cluster.lookup(key, 0, 5).hit
            assert victim in cluster.ring  # threshold not yet reached
            assert cluster.health.replica_served_lookups == 4
            assert cluster.health.replica_hits == 4
        finally:
            cluster.close()

    def test_batched_lookups_fail_over_per_request(self, transport_kind):
        from repro.cache.entry import LookupRequest

        cluster = build_cluster(transport_kind, failure_threshold=10)
        fault = FaultInjector(cluster)
        try:
            keys = fill(cluster, tagged=False)
            victim = cluster.ring.node_for(keys[0])
            fault.partition(victim)
            requests = [LookupRequest(key, 0, 5) for key in keys]
            results = cluster.multi_lookup(requests)
            assert all(result.hit for result in results)
            assert not any(result.degraded for result in results)
            assert cluster.health.replica_hits > 0
        finally:
            cluster.close()

    def test_all_replicas_down_degrades_instead_of_raising(self, transport_kind):
        cluster = build_cluster(transport_kind, nodes=3, factor=2, failure_threshold=10)
        fault = FaultInjector(cluster)
        try:
            keys = fill(cluster, tagged=False)
            key = keys[0]
            for node in cluster.replicas_for(key):
                fault.partition(node)
            result = cluster.lookup(key, 0, 5)
            assert not result.hit and result.degraded
            assert cluster.health.degraded_lookups == 1
            assert cluster.put(key, "new", Interval(1)) is False
            assert cluster.health.degraded_puts == 1
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# Consistency under fault injection (the paper invariant, under failover)
# ----------------------------------------------------------------------
class TestConsistencyUnderFaults:
    def _deployment(self, transport_kind, factor=2, failure_threshold=2):
        return TxCacheDeployment(
            cache_nodes=3,
            cache_capacity_bytes_per_node=256 * 1024,
            transport=transport_kind,
            replication_factor=factor,
            failure_threshold=failure_threshold,
            # These tests pin the *unsupervised* failure semantics (a crash
            # evicts, the ring stays short); kill-and-respawn lives in
            # tests/test_supervisor.py.
            supervision=False,
        )

    def test_no_stale_read_across_a_mid_workload_crash(self, transport_kind):
        deployment = self._deployment(transport_kind)
        try:
            harness = ConsistencyHarness(deployment, seed=7)
            harness.run(40)  # warm: mixed reads and writes
            victim = deployment.cache.ring.nodes[0]
            deployment.cache.fail_node(victim)
            harness.run(80)  # mid-workload crash: every read still consistent
            assert victim not in deployment.cache.ring
            assert harness.reads > 10 and harness.writes > 5
            # Zero-loss: with R=2 no lookup ever degraded to a synthetic miss.
            assert deployment.cache.health.degraded_lookups == 0
            assert harness.client.stats.misses_by_type[MissType.DEGRADED] == 0
        finally:
            deployment.shutdown()

    def test_no_stale_read_across_a_partition_and_heal(self, transport_kind):
        # A high threshold keeps the partitioned node in the ring, so the
        # heal path (frozen watermark, replica-served suspect window) is
        # exercised deterministically rather than racing the eviction.
        deployment = self._deployment(transport_kind, failure_threshold=1000)
        fault = FaultInjector(deployment.cache)
        try:
            harness = ConsistencyHarness(deployment, seed=11)
            harness.run(40)
            victim = deployment.cache.ring.nodes[0]
            fault.partition(victim)
            harness.run(30)  # reads fail over; writes skip the dead replica
            assert victim in deployment.cache.ring
            fault.heal(victim)
            harness.run(40)  # healed: its frozen watermark must protect it
            assert harness.reads > 15
            assert deployment.cache.health.replica_served_lookups > 0
        finally:
            deployment.shutdown()

    def test_unreplicated_crash_only_degrades_never_lies(self):
        """R=1 under a crash: misses and DEGRADED classifications are fine,
        inconsistency is not."""
        deployment = self._deployment("socket", factor=1)
        try:
            harness = ConsistencyHarness(deployment, seed=3)
            harness.run(40)
            deployment.cache.fail_node(deployment.cache.ring.nodes[0])
            harness.run(80)
        finally:
            deployment.shutdown()


# ----------------------------------------------------------------------
# Anti-entropy repair and watermark safety
# ----------------------------------------------------------------------
class TestRepair:
    def test_repair_is_a_noop_for_unreplicated_clusters(self, transport_kind):
        cluster = build_cluster(transport_kind, factor=1)
        membership = ClusterMembership(cluster)
        try:
            fill(cluster, count=30)
            assert membership.repair() == 0
            assert membership.stats.repairs == 0
        finally:
            cluster.close()

    def test_repair_restores_factor_after_manual_thinning(self, transport_kind):
        cluster = build_cluster(transport_kind)
        membership = ClusterMembership(cluster)
        try:
            keys = fill(cluster, count=60, tagged=False)
            # Manually strip one replica of a few keys to fake entropy.
            stripped = keys[:5]
            for key in stripped:
                replica = cluster.replicas_for(key)[1]
                cluster.discard_keys(replica, [key])
                assert holders_of(cluster, key) != sorted(cluster.replicas_for(key))
            installed = membership.repair()
            assert installed >= len(stripped)
            for key in stripped:
                assert holders_of(cluster, key) == sorted(cluster.replicas_for(key))
            # A second sweep finds nothing missing.
            assert membership.repair() == 0
        finally:
            cluster.close()

    def test_repair_never_fabricates_validity_on_a_healed_partition(self, transport_kind):
        """A node that missed invalidations keeps its frozen watermark: repair
        must not advance it, or its un-truncated still-valid entries would
        serve values at timestamps whose invalidations it never processed."""
        bus = InvalidationBus()
        cluster = build_cluster(transport_kind, bus=bus, failure_threshold=100)
        membership = ClusterMembership(cluster, auto_repair=False)
        fault = FaultInjector(cluster)
        try:
            keys = fill(cluster, count=60, tagged=True)
            bus.publish(InvalidationMessage(timestamp=4, tags=()))
            victim = cluster.ring.nodes[0]
            fault.partition(victim)
            # Invalidate every entry while the victim cannot hear it.
            bus.publish(
                InvalidationMessage(timestamp=8, tags=(InvalidationTag.wildcard("items"),))
            )
            fault.heal(victim)
            membership.repair()
            assert cluster.watermark(victim) == 4  # frozen, not force-advanced
            # The healed node must not satisfy post-invalidation timestamps
            # from its stale still-valid entries.
            for key in keys:
                if victim in cluster.replicas_for(key):
                    assert not cluster.transports[victim].probe(key, 8, 20), key
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# Replica-aware migration
# ----------------------------------------------------------------------
class TestReplicatedMigration:
    def test_join_preserves_exact_replica_placement(self, transport_kind):
        bus = InvalidationBus()
        cluster = build_cluster(transport_kind, bus=bus)
        membership = ClusterMembership(cluster, chunk_size=16)
        try:
            keys = fill(cluster)
            before = {key: cluster.lookup(key, 0, 5) for key in keys}
            membership.join("cache3", capacity_bytes=1 << 22)
            for key in keys:
                result = cluster.lookup(key, 0, 5)
                assert result.hit == before[key].hit
                if result.hit:
                    assert result.value == before[key].value
                assert holders_of(cluster, key) == sorted(cluster.replicas_for(key))
        finally:
            cluster.close()

    def test_leave_keeps_every_key_replicated(self, transport_kind):
        cluster = build_cluster(transport_kind)
        membership = ClusterMembership(cluster, chunk_size=16)
        try:
            keys = fill(cluster, tagged=False)
            victim = cluster.ring.nodes[0]
            membership.leave(victim)
            for key in keys:
                assert cluster.lookup(key, 0, 5).hit
                replicas = cluster.replicas_for(key)
                assert len(replicas) == 2
                for replica in replicas:
                    assert node_view(cluster, replica).versions_of(key), (key, replica)
        finally:
            cluster.close()

    def test_join_warms_keys_the_old_primary_never_stored(self, transport_kind):
        """Regression: the join planner ranks each key's stream source by
        replica order *among actual holders* — a key that landed only on its
        second replica (its primary was partitioned at put time) must still
        be warmed onto the joiner."""
        cluster = build_cluster(transport_kind, failure_threshold=1000)
        membership = ClusterMembership(cluster, chunk_size=16)
        fault = FaultInjector(cluster)
        try:
            fill(cluster, tagged=False)
            victim = cluster.ring.nodes[0]
            fault.partition(victim)
            orphans = [f"orphan-{i}" for i in range(60)]
            for key in orphans:
                cluster.put(key, key.upper(), Interval(0))  # skips the victim
            fault.heal(victim)
            membership.join("cache3", capacity_bytes=1 << 22)
            gained = [k for k in orphans if "cache3" in cluster.replicas_for(k)]
            assert gained, "the joiner should enter some orphan's replica set"
            for key in gained:
                assert node_view(cluster, "cache3").versions_of(key), key
                # Routed reads serve the copy whenever the joiner is the
                # primary (a healed old primary that missed the put may
                # still answer a legitimate miss for the others).
                if cluster.replicas_for(key)[0] == "cache3":
                    assert cluster.lookup(key, 0, 5).value == key.upper()
        finally:
            cluster.close()

    def test_rejoin_after_crash_is_warmed_and_replicated(self, transport_kind):
        cluster = build_cluster(transport_kind)
        membership = ClusterMembership(cluster, chunk_size=16)
        try:
            keys = fill(cluster, tagged=False)
            victim = cluster.ring.nodes[0]
            cluster.fail_node(victim)
            if transport_kind != "inprocess":
                while victim in cluster.ring:
                    cluster.lookup(keys[0], 0, 5)
            membership.join(victim, capacity_bytes=1 << 22)
            assert membership.history[-1].change == "rejoin"
            for key in keys:
                assert cluster.lookup(key, 0, 5).hit
                assert holders_of(cluster, key) == sorted(cluster.replicas_for(key))
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# Invalidation delivery regression (evicted-then-rejoined nodes)
# ----------------------------------------------------------------------
class TestInvalidationDelivery:
    def test_rejoined_node_is_not_double_delivered_after_rewarm(self, transport_kind):
        """Regression: re-attaching the bus after an evict + rejoin used to
        add a second stream guard for the node, delivering every
        invalidation tag twice (double-counted stats, double truncation
        work)."""
        bus = InvalidationBus()
        cluster = build_cluster(transport_kind, bus=bus)
        membership = ClusterMembership(cluster, chunk_size=16)
        try:
            fill(cluster, count=30)
            victim = cluster.ring.nodes[0]
            cluster.fail_node(victim)
            if transport_kind != "inprocess":
                while victim in cluster.ring:
                    cluster.lookup("key-0", 0, 5)
            membership.join(victim, capacity_bytes=1 << 22)  # re-warm
            # A coordinator re-attaching the bus (e.g. after re-warming the
            # tier) must replace subscriptions, not stack them.
            cluster.attach_invalidation_bus(bus)
            bus.publish(
                InvalidationMessage(timestamp=5, tags=(InvalidationTag.key("items", "id", 1),))
            )
            for name, view in node_views(cluster).items():
                assert view.stats.invalidation_messages == 1, name
            assert len(bus.subscribers) == cluster.node_count
        finally:
            cluster.close()

    def test_attach_twice_is_idempotent(self, transport_kind):
        bus = InvalidationBus()
        cluster = build_cluster(transport_kind, bus=bus)
        try:
            cluster.attach_invalidation_bus(bus)
            bus.publish(InvalidationMessage(timestamp=3, tags=()))
            for view in node_views(cluster).values():
                assert view.last_invalidation_timestamp == 3
                assert view.stats.invalidation_messages == 1
            assert len(bus.subscribers) == cluster.node_count
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# End-to-end: the client library over a replicated, failing tier
# ----------------------------------------------------------------------
class TestClientOverReplication:
    def test_client_hits_survive_a_crash(self, transport_kind):
        from repro.db.query import Eq, Select
        from tests.helpers import simple_schema

        deployment = TxCacheDeployment(
            cache_nodes=3,
            transport=transport_kind,
            replication_factor=2,
            failure_threshold=2,
        )
        try:
            deployment.database.create_table(simple_schema())
            deployment.database.bulk_load(
                "users",
                [{"id": i, "name": f"user{i}", "region": 0, "score": 0.0} for i in range(1, 31)],
            )
            client = deployment.client()

            @client.cacheable(name="get_user")
            def get_user(user_id):
                return client.query(Select("users", Eq("id", user_id))).rows[0]

            with client.read_only():
                for uid in range(1, 31):
                    get_user(uid)  # misses: fill all replicas

            victim = deployment.cache.ring.nodes[0]
            victim_uid = next(
                uid
                for uid in range(1, 31)
                if deployment.cache.ring.node_for(cache_key("get_user", (uid,))) == victim
            )
            deployment.cache.fail_node(victim)
            misses_before = client.stats.misses
            with client.read_only():
                for uid in range(1, 31):
                    assert get_user(uid)["id"] == uid
            # Every read after the crash was still a cache hit (zero loss).
            assert client.stats.misses == misses_before
            assert client.stats.misses_by_type[MissType.DEGRADED] == 0
            assert get_user.__txcache_name__ == "get_user"
            assert victim_uid is not None
        finally:
            deployment.shutdown()
