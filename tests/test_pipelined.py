"""Pipelined transport + event-loop server: the fast wire path's contracts.

Covers what the legacy parity suites cannot: out-of-order completion on one
multiplexed connection, per-connection backpressure, poisoned-connection
semantics (timeouts fail every pending RPC and the transport re-dials), and
both framings coexisting on one listening socket, under both server engines.
The tests are deterministic — slowness is injected with events, never
timing guesses.
"""

from __future__ import annotations

import threading

import pytest

from repro.cache.cluster import CacheCluster
from repro.cache.netserver import (
    CacheNodeUnreachableError,
    CacheServerProcess,
    CacheTransportError,
    SocketTransport,
)
from repro.cache.server import CacheServer
from repro.clock import ManualClock
from repro.interval import Interval


def make_server(name="node"):
    return CacheServer(name=name, capacity_bytes=4 * 1024 * 1024, clock=ManualClock())


# ----------------------------------------------------------------------
# Out-of-order completion (the reason the event loop exists)
# ----------------------------------------------------------------------
def test_fast_lookup_overtakes_slow_extract_on_one_connection():
    """A stalled extract_entries must not head-of-line-block a lookup.

    Both requests travel on the *same* pipelined connection.  The extract
    is blocked inside a worker on an event the test controls; the lookup
    must complete while the extract is still stuck, proving the event-loop
    server completes responses out of arrival order.
    """
    server = make_server()
    slow_started = threading.Event()
    release_slow = threading.Event()
    original = server.extract_entries

    def stalled_extract(cursor=None, limit=64):
        slow_started.set()
        assert release_slow.wait(timeout=10), "test deadlock: never released"
        return original(cursor, limit)

    server.extract_entries = stalled_extract
    with CacheServerProcess(server, style="eventloop") as process:
        transport = SocketTransport(process.address, pipelined=True)
        try:
            transport.put("k", {"v": 1}, Interval(0))
            slow_result = {}

            def run_slow():
                slow_result["value"] = transport.extract_entries()

            slow_thread = threading.Thread(target=run_slow)
            slow_thread.start()
            assert slow_started.wait(timeout=10)
            # The slow op is wedged in a pool worker; the fast op must
            # come back regardless (same socket, later request id).
            result = transport.lookup("k", 0, 5)
            assert result.hit and result.value == {"v": 1}
            assert "value" not in slow_result  # extract still in flight
            release_slow.set()
            slow_thread.join(timeout=10)
            assert not slow_thread.is_alive()
            records, cursor = slow_result["value"]
            assert [r.key for r in records] == ["k"]
        finally:
            release_slow.set()
            transport.close()


def test_reactor_stays_responsive_while_whole_store_op_holds_server_lock():
    """A maintenance op holding the server lock must not block the loop.

    ``evict_stale`` is wedged *while holding the CacheServer lock*.  A
    lookup issued meanwhile necessarily waits for the lock — but it must
    wait in a pool worker, not on the loop thread: lock-free requests
    (``ping``) from the same connection must keep completing throughout.
    Before the pooled-detour fix, the first inline lookup parked the whole
    reactor on the lock and every connection froze.
    """
    server = make_server()
    lock_held = threading.Event()
    release = threading.Event()
    original_evict = server.evict_stale

    def stalled_evict(oldest):
        with server._lock:
            lock_held.set()
            assert release.wait(timeout=30), "test deadlock: never released"
        return original_evict(oldest)

    server.evict_stale = stalled_evict
    with CacheServerProcess(server, style="eventloop", worker_threads=4) as process:
        transport = SocketTransport(process.address, pipelined=True)
        try:
            transport.put("k", 1, Interval(0))
            evict_thread = threading.Thread(target=lambda: transport.evict_stale(0))
            evict_thread.start()
            assert lock_held.wait(timeout=10)
            lookup_result = {}
            lookup_thread = threading.Thread(
                target=lambda: lookup_result.update(r=transport.lookup("k", 0, 5))
            )
            lookup_thread.start()
            # The lookup is parked on the server lock in a worker; the loop
            # must still serve lock-free traffic on the same connection.
            assert transport._call("ping") == server.name
            assert "r" not in lookup_result  # still waiting on the lock
            release.set()
            for thread in (evict_thread, lookup_thread):
                thread.join(timeout=10)
                assert not thread.is_alive()
            assert lookup_result["r"].hit
        finally:
            release.set()
            transport.close()


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def test_backpressure_bounds_queue_pauses_reads_and_recovers():
    """Flooding one connection past the bound pauses it without deadlock.

    Every request is a ``keys`` op (pool-dispatched) blocked on an event,
    so in-flight requests accumulate deterministically.  The server must
    (a) stop reading the connection at ``max_queued_per_connection``,
    (b) never exceed that bound, and (c) drain everything once released.
    """
    bound = 4
    flood = 16
    server = make_server()
    release = threading.Event()
    arrived = threading.Semaphore(0)
    original = server.keys

    def stalled_keys():
        arrived.release()
        assert release.wait(timeout=30), "test deadlock: never released"
        return original()

    server.keys = stalled_keys
    with CacheServerProcess(
        server, style="eventloop", worker_threads=flood, max_queued_per_connection=bound
    ) as process:
        transport = SocketTransport(process.address, pipelined=True)
        try:
            results = []
            threads = [
                threading.Thread(target=lambda: results.append(transport.keys()))
                for _ in range(flood)
            ]
            for thread in threads:
                thread.start()
            # Exactly `bound` requests reach the workers; the rest are
            # parked (unread or queued) behind the paused connection.
            for _ in range(bound):
                assert arrived.acquire(timeout=10)
            assert not arrived.acquire(timeout=0.3), "backpressure bound exceeded"
            assert process.backpressure_pauses >= 1
            assert process.max_in_flight_per_connection <= bound
            release.set()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive(), "flood worker wedged (deadlock)"
            assert len(results) == flood
            assert all(r == [] for r in results)
        finally:
            release.set()
            transport.close()


# ----------------------------------------------------------------------
# Framing coexistence and engine matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("style", ["threaded", "eventloop"])
def test_both_framings_share_one_listening_socket(style):
    """A pooled and a pipelined client against the same server agree."""
    with CacheServerProcess(make_server(), style=style) as process:
        pooled = SocketTransport(process.address, pipelined=False)
        pipelined = SocketTransport(process.address, pipelined=True)
        try:
            pooled.put("from-pooled", 1, Interval(0))
            pipelined.put("from-mux", 2, Interval(0))
            assert pooled.lookup("from-mux", 0, 5).value == 2
            assert pipelined.lookup("from-pooled", 0, 5).value == 1
            assert sorted(pipelined.keys()) == ["from-mux", "from-pooled"]
        finally:
            pooled.close()
            pipelined.close()


@pytest.mark.parametrize("style", ["threaded", "eventloop"])
@pytest.mark.parametrize("pipelined", [False, True])
def test_server_side_errors_surface_without_poisoning(style, pipelined):
    """Bad requests raise CacheTransportError; the stream keeps working.

    An unknown op fails fast (client-side on the pipelined path, which can
    check its opcode table; server-side on the legacy path); a structurally
    bad request — wrong arity — always crosses the wire and exercises the
    server's error response.  Neither may poison the connection.
    """
    with CacheServerProcess(make_server(), style=style) as process:
        transport = SocketTransport(process.address, pipelined=pipelined)
        try:
            with pytest.raises(CacheTransportError, match="unknown cache operation"):
                transport._call("no-such-op")
            with pytest.raises(CacheTransportError, match="TypeError"):
                transport._call("lookup")  # missing key/lo/hi
            assert transport.put("k", 1, Interval(0)) is True
            assert transport.lookup("k", 0, 5).hit
        finally:
            transport.close()


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------
def test_timeout_poisons_connection_and_transport_redials():
    """A timed-out RPC fails every pending call; the next call reconnects."""
    server = make_server()
    release = threading.Event()
    original = server.keys

    def stalled_keys():
        assert release.wait(timeout=30)
        return original()

    server.keys = stalled_keys
    with CacheServerProcess(server, style="eventloop") as process:
        transport = SocketTransport(
            process.address, pipelined=True, timeout_seconds=0.3
        )
        try:
            with pytest.raises(CacheNodeUnreachableError, match="timed out"):
                transport.keys()
            release.set()
            # The poisoned connection is gone; a fresh call re-dials and
            # works (a response stream that lost a reply cannot be reused).
            assert transport.probe("k", 0, 5) is False
            assert transport.put("k", 1, Interval(0)) is True
        finally:
            release.set()
            transport.close()


def test_server_shutdown_fails_pending_pipelined_calls():
    server = make_server()
    release = threading.Event()
    original = server.keys

    def stalled_keys():
        release.wait(timeout=5)
        return original()

    server.keys = stalled_keys
    process = CacheServerProcess(server, style="eventloop")
    transport = SocketTransport(process.address, pipelined=True)
    try:
        failures = []

        def call_keys():
            try:
                transport.keys()
            except CacheNodeUnreachableError as exc:
                failures.append(exc)

        caller = threading.Thread(target=call_keys)
        caller.start()
        process.shutdown()
        release.set()
        caller.join(timeout=10)
        assert not caller.is_alive()
        assert len(failures) == 1
        with pytest.raises(CacheNodeUnreachableError):
            transport.probe("k", 0, 5)
    finally:
        release.set()
        transport.close()
        process.shutdown()


def test_transport_close_is_idempotent_and_fails_fast():
    with CacheServerProcess(make_server(), style="eventloop") as process:
        transport = SocketTransport(process.address, pipelined=True)
        assert transport.probe("k", 0, 5) is False
        transport.close()
        transport.close()  # second close must be a no-op
        with pytest.raises(CacheNodeUnreachableError):
            transport.probe("k", 0, 5)


# ----------------------------------------------------------------------
# Cluster-level explicit-override matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("style", ["threaded", "eventloop"])
@pytest.mark.parametrize("pipelined", [False, True])
def test_cluster_override_matrix_serves_traffic(style, pipelined):
    """Every {framing} x {engine} combination works behind the cluster."""
    cluster = CacheCluster(
        node_count=2,
        capacity_bytes_per_node=1024 * 1024,
        clock=ManualClock(),
        transport="socket",
        socket_pipelined=pipelined,
        server_style=style,
    )
    try:
        assert cluster.socket_pipelined is pipelined
        assert cluster.server_style == style
        for process in cluster.processes.values():
            assert process.style == style
        for i in range(20):
            cluster.put(f"key-{i}", i, Interval(0))
        assert all(cluster.lookup(f"key-{i}", 0, 5).hit for i in range(20))
    finally:
        cluster.close()
