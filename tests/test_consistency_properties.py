"""Randomized system-level property test of TxCache's core guarantee.

The test drives a deployment with a randomly generated interleaving of
writes, read-only transactions (with random staleness limits), clock
advances, evictions-inducing small caches, and housekeeping, and checks the
paper's central invariant after every read-only transaction: everything a
transaction observed — whether served from the cache or the database —
corresponds to one single historical database state.

To make that checkable, every write transaction bumps a single global
``version`` counter and rewrites every row of a small table so that all rows
always carry the same version number.  Any transaction that observes two
different version numbers has seen an inconsistent mix of states.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import ConsistencyMode
from repro.db.query import Eq, Select
from repro.db.schema import TableSchema
from repro.deployment import TxCacheDeployment

ROWS = 6


def build(capacity_bytes: int = 64 * 1024) -> TxCacheDeployment:
    deployment = TxCacheDeployment(
        cache_nodes=2, cache_capacity_bytes_per_node=capacity_bytes
    )
    deployment.database.create_table(
        TableSchema.build("state", ["id", "version", "payload"], primary_key="id")
    )
    deployment.database.bulk_load(
        "state", [{"id": i, "version": 0, "payload": "x" * 64} for i in range(ROWS)]
    )
    return deployment


def write_new_version(deployment: TxCacheDeployment, version: int) -> None:
    transaction = deployment.database.begin_rw()
    for row_id in range(ROWS):
        transaction.update("state", Eq("id", row_id), {"version": version})
    transaction.commit()
    deployment.advance(random.Random(version).uniform(0.01, 0.5))


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7, 8])
def test_every_read_only_transaction_observes_one_version(seed):
    rng = random.Random(seed)
    deployment = build(capacity_bytes=rng.choice([8 * 1024, 64 * 1024, 512 * 1024]))
    client = deployment.client()

    @client.cacheable(name="get_row")
    def get_row(row_id):
        return client.query(Select("state", Eq("id", row_id))).rows[0]

    version = 0
    for step in range(120):
        action = rng.random()
        if action < 0.30:
            version += 1
            write_new_version(deployment, version)
        elif action < 0.40:
            deployment.advance(rng.uniform(0.1, 20.0))
        elif action < 0.45:
            deployment.housekeeping(max_staleness=60.0)
        else:
            staleness = rng.choice([0, 1, 5, 30, 60])
            observed = set()
            with client.read_only(staleness=staleness):
                for _ in range(rng.randint(2, ROWS)):
                    row_id = rng.randrange(ROWS)
                    if rng.random() < 0.6:
                        observed.add(get_row(row_id)["version"])
                    else:
                        observed.add(
                            client.query(Select("state", Eq("id", row_id))).rows[0]["version"]
                        )
            assert len(observed) == 1, (
                f"step {step}: transaction observed mixed versions {observed}"
            )


def test_no_consistency_mode_is_actually_weaker():
    """Sanity check that the invariant above is non-trivial: the
    NO_CONSISTENCY baseline violates it under the same kind of workload."""
    rng = random.Random(0)
    deployment = build()
    client = deployment.client(mode=ConsistencyMode.NO_CONSISTENCY)

    @client.cacheable(name="get_row")
    def get_row(row_id):
        return client.query(Select("state", Eq("id", row_id))).rows[0]

    # Warm the cache at version 0.
    with client.read_only():
        for row_id in range(ROWS):
            get_row(row_id)

    violations = 0
    version = 0
    for _ in range(40):
        version += 1
        write_new_version(deployment, version)
        observed = set()
        with client.read_only(staleness=60):
            observed.add(get_row(rng.randrange(ROWS))["version"])
            observed.add(
                client.query(Select("state", Eq("id", rng.randrange(ROWS)))).rows[0]["version"]
            )
        if len(observed) > 1:
            violations += 1
    assert violations > 0
