"""Deterministic cluster-simulation scenarios for the gossip plane.

Each test declares a fault schedule up front and runs :class:`ClusterSimulator`
on virtual time; the acceptance scenario of the autonomous-cluster-plane work
— N=5 nodes converge on the same epoch after a seeded crash, *identically*
across reruns — is pinned here, along with flapping partitions, heavy
message loss, and crash/restart refutation.
"""

from __future__ import annotations

import pytest

from repro.cache.gossip import ALIVE, DEAD, SUSPECT
from tests.simulator import ClusterSimulator


def crash_scenario(seed: int = 42) -> ClusterSimulator:
    sim = ClusterSimulator(nodes=5, seed=seed)
    sim.crash_at(5.0, "node2")
    sim.run_until(30.0)
    return sim


def test_five_nodes_converge_on_the_same_epoch_after_a_crash():
    sim = crash_scenario()
    assert sim.converged()
    # Every survivor independently reached the death verdict.
    assert sim.statuses("node2") == {
        name: DEAD for name in ["node0", "node1", "node3", "node4"]
    }
    # And they agree on one epoch token (the coordinator-free epoch).
    assert len(set(sim.epoch_tokens().values())) == 1


def test_crash_scenario_is_deterministic_across_reruns():
    first = crash_scenario()
    second = crash_scenario()
    assert first.fingerprint() == second.fingerprint()
    assert first.trace == second.trace
    assert first.messages_sent == second.messages_sent
    assert first.messages_dropped == second.messages_dropped


def test_different_seeds_produce_different_runs_but_the_same_verdict():
    first = crash_scenario(seed=1)
    second = crash_scenario(seed=2)
    # Different event orders (the fingerprint sees them) ...
    assert first.fingerprint() != second.fingerprint()
    # ... but the protocol outcome is seed-independent.
    assert first.converged() and second.converged()
    assert set(first.statuses("node2").values()) == {DEAD}
    assert set(second.statuses("node2").values()) == {DEAD}


def test_convergence_survives_thirty_percent_message_loss():
    sim = ClusterSimulator(nodes=5, seed=3, loss_rate=0.3)
    sim.crash_at(5.0, "node4")
    sim.run_until(60.0)
    assert sim.messages_dropped > 0
    assert sim.converged()
    assert set(sim.statuses("node4").values()) == {DEAD}


def test_flapping_partition_shorter_than_the_confirm_window_kills_nobody():
    sim = ClusterSimulator(nodes=4, seed=9, suspect_timeout=2.0, confirm_timeout=4.0)
    # Three short partitions; each heals before suspect+confirm can elapse.
    sim.partition_between(3.0, 6.0, ["node0", "node1"], ["node2", "node3"])
    sim.partition_between(10.0, 13.0, ["node0", "node2"], ["node1", "node3"])
    sim.partition_between(17.0, 20.0, ["node0", "node3"], ["node1", "node2"])
    sim.run_until(40.0)
    assert not any("->dead" in line for line in sim.trace)
    assert sim.converged()
    for name in sim.names:
        assert set(sim.statuses(name).values()) == {ALIVE}


def test_partition_longer_than_the_confirm_window_exiles_the_minority():
    """A split that outlives suspect+confirm is permanent until a rejoin.

    Both sides correctly confirm the other dead and — per SWIM — stop
    gossiping with confirmed-dead peers, so healing the network alone does
    not reunite the views: the minority must rejoin explicitly (the
    restart/refutation path of the next test, or a membership rejoin in a
    real deployment).  What must NOT happen is the majority splitting among
    themselves: they stay mutually alive and internally converged.
    """
    sim = ClusterSimulator(nodes=4, seed=11)
    sim.partition_between(3.0, 13.0, ["node0", "node1", "node2"], ["node3"])
    sim.run_until(8.0)
    assert sim.agents["node0"].status_of("node3") in (SUSPECT, DEAD)
    sim.run_until(40.0)
    majority = ["node0", "node1", "node2"]
    for name in majority:
        assert sim.agents[name].status_of("node3") == DEAD
        assert sim.agents[name].members(include_suspect=False) == majority
    assert sim.agents["node3"].status_of("node0") == DEAD  # the mirror exile
    assert len({sim.agents[name].epoch_token() for name in majority}) == 1


def test_crashed_node_restart_rejoins_via_refutation():
    sim = ClusterSimulator(nodes=5, seed=7)
    sim.crash_at(5.0, "node1")
    sim.restart_at(20.0, "node1")
    sim.run_until(60.0)
    assert sim.converged()
    assert set(sim.statuses("node1").values()) == {ALIVE}
    # The reborn agent out-ranked its own tombstone by bumping incarnation.
    assert sim.agents["node1"].incarnation > 0
    assert sim.agents["node1"].refutations > 0
    assert any("[fault] node1 restarted" in line for line in sim.trace)


def test_simulator_rejects_degenerate_clusters():
    with pytest.raises(ValueError):
        ClusterSimulator(nodes=1)
