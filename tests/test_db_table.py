"""Tests for table storage."""

from __future__ import annotations

import pytest

from repro.db.errors import UnknownIndexError
from repro.db.table import Table
from tests.helpers import simple_schema


@pytest.fixture
def table():
    return Table(simple_schema())


class TestVersionStorage:
    def test_add_version_assigns_row_ids(self, table):
        v1 = table.add_version({"id": 1, "name": "a", "region": 0, "score": 1.0}, xmin=0)
        v2 = table.add_version({"id": 2, "name": "b", "region": 1, "score": 2.0}, xmin=0)
        assert v1.row_id != v2.row_id

    def test_add_version_with_existing_row_id(self, table):
        v1 = table.add_version({"id": 1, "name": "a", "region": 0, "score": 1.0}, xmin=0)
        v2 = table.add_version({"id": 1, "name": "a2", "region": 0, "score": 1.0}, xmin=3, row_id=v1.row_id)
        assert table.versions_of(v1.row_id) == [v1, v2]

    def test_unknown_column_rejected(self, table):
        with pytest.raises(KeyError):
            table.add_version({"id": 1, "bogus": True}, xmin=0)

    def test_current_version_of(self, table):
        v1 = table.add_version({"id": 1, "name": "a", "region": 0, "score": 1.0}, xmin=0)
        assert table.current_version_of(v1.row_id) is v1
        v1.xmax = 4
        assert table.current_version_of(v1.row_id) is None

    def test_remove_version(self, table):
        v1 = table.add_version({"id": 1, "name": "a", "region": 0, "score": 1.0}, xmin=0)
        table.remove_version(v1)
        assert table.row_count() == 0
        assert table.index_on("id").lookup(1) == []

    def test_counts(self, table):
        v1 = table.add_version({"id": 1, "name": "a", "region": 0, "score": 1.0}, xmin=0)
        table.add_version({"id": 1, "name": "a2", "region": 0, "score": 1.0}, xmin=2, row_id=v1.row_id)
        table.add_version({"id": 2, "name": "b", "region": 1, "score": 2.0}, xmin=0)
        assert table.row_count() == 2
        assert table.version_count() == 3
        v1.xmax = 2
        assert table.current_row_count() == 2

    def test_scan_versions_yields_everything(self, table):
        for i in range(5):
            table.add_version({"id": i, "name": f"u{i}", "region": 0, "score": 0.0}, xmin=0)
        assert len(list(table.scan_versions())) == 5


class TestIndexes:
    def test_primary_key_index_exists(self, table):
        assert table.has_index_on("id")

    def test_declared_indexes_exist(self, table):
        assert table.has_index_on("name")
        assert table.has_index_on("region")
        assert not table.has_index_on("score")

    def test_index_on_unknown_column_raises(self, table):
        with pytest.raises(UnknownIndexError):
            table.index_on("score")

    def test_ordered_index_detection(self, table):
        assert table.ordered_index_on("region") is not None
        assert table.ordered_index_on("name") is None

    def test_indexes_updated_on_insert(self, table):
        table.add_version({"id": 1, "name": "alice", "region": 2, "score": 0.0}, xmin=0)
        assert len(table.index_on("name").lookup("alice")) == 1
        assert len(table.index_on("region").lookup(2)) == 1
