"""Transport-layer tests: in-process vs socket parity, framing, lifecycle.

The central property: the choice of transport is *invisible* to everything
above it.  A parametrized suite replays the same operation trace against an
in-process cluster and a cluster of the transport under test and requires
byte-identical results (pickled result streams compare equal), including
lookup/put/probe outcomes, invalidation effects, and statistics.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.cache.cluster import CacheCluster
from repro.cache.entry import LookupRequest
from repro.cache.netserver import (
    CacheServerProcess,
    CacheTransportError,
    SocketTransport,
)
from repro.cache.server import CacheServer
from repro.clock import ManualClock
from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.comm.transport import CacheTransport, InProcessTransport
from repro.core.api import ConsistencyMode
from repro.db.invalidation import InvalidationTag
from repro.deployment import TxCacheDeployment
from repro.interval import Interval
from tests.test_integration import build_bank_deployment, transfer
from tests.helpers import node_views, simple_schema, transports_under_test

# Overridable with REPRO_TRANSPORT=inprocess|socket (CI transport matrix).
TRANSPORTS = transports_under_test()


@pytest.fixture(params=TRANSPORTS)
def transport_kind(request):
    return request.param


@pytest.fixture
def cluster(transport_kind):
    cluster = CacheCluster(
        node_count=3,
        capacity_bytes_per_node=256 * 1024,
        clock=ManualClock(),
        transport=transport_kind,
    )
    yield cluster
    cluster.close()


# ----------------------------------------------------------------------
# Operation-trace parity
# ----------------------------------------------------------------------
def _replay_trace(cluster: CacheCluster, bus: InvalidationBus, seed: int = 7) -> list:
    """Run a deterministic mixed operation trace; return every result."""
    rng = random.Random(seed)
    tag = lambda i: InvalidationTag.key("items", "id", i)  # noqa: E731
    results = []
    timestamp = 0
    for step in range(300):
        op = rng.randrange(7)
        key = f"key-{rng.randrange(40)}"
        if op == 0:  # still-valid put with tags
            results.append(
                cluster.put(key, {"step": step, "k": key}, Interval(timestamp), frozenset({tag(rng.randrange(10))}))
            )
        elif op == 1:  # bounded-interval put
            lo = rng.randrange(max(1, timestamp + 1))
            results.append(cluster.put(key, ("v", step), Interval(lo, lo + rng.randrange(1, 5))))
        elif op == 2:
            lo = rng.randrange(timestamp + 2)
            results.append(cluster.lookup(key, lo, lo + rng.randrange(8)))
        elif op == 3:
            lo = rng.randrange(timestamp + 2)
            results.append(cluster.probe(key, lo, lo + rng.randrange(8)))
        elif op == 4:
            results.append(cluster.was_ever_stored(key))
        elif op == 5:  # batched lookups + probes spanning several nodes
            requests = [
                LookupRequest(f"key-{rng.randrange(40)}", 0, timestamp + 1, probe=bool(i % 2))
                for i in range(rng.randrange(1, 6))
            ]
            results.append(cluster.multi_lookup(requests))
        else:  # invalidation through the bus
            timestamp += 1
            tags = (tag(rng.randrange(10)),) if rng.random() < 0.8 else (
                InvalidationTag.wildcard("items"),
            )
            bus.publish(InvalidationMessage(timestamp=timestamp, tags=tags))
            results.append(("invalidated", timestamp))
        if step % 97 == 0:
            results.append(cluster.evict_stale(max(0, timestamp - 5)))
    results.append(cluster.aggregate_stats())
    return results


def test_trace_parity_with_inprocess(transport_kind):
    """Both transports produce byte-identical results on the same trace."""
    reference_bus = InvalidationBus()
    reference = CacheCluster(
        node_count=3,
        capacity_bytes_per_node=256 * 1024,
        clock=ManualClock(),
        invalidation_bus=reference_bus,
        transport="inprocess",
    )
    subject_bus = InvalidationBus()
    subject = CacheCluster(
        node_count=3,
        capacity_bytes_per_node=256 * 1024,
        clock=ManualClock(),
        invalidation_bus=subject_bus,
        transport=transport_kind,
    )
    try:
        expected = _replay_trace(reference, reference_bus)
        actual = _replay_trace(subject, subject_bus)
        assert actual == expected
        # Byte-identical serialized results.  Each result is pickled on its
        # own after one normalizing round trip, so the comparison checks the
        # values themselves rather than incidental object sharing between
        # results (the socket transport's results have already crossed the
        # wire once, which otherwise perturbs pickle's memoization).
        def canonical(result):
            if isinstance(result, list):
                return [canonical(item) for item in result]
            return pickle.dumps(pickle.loads(pickle.dumps(result)))

        assert [canonical(a) for a in actual] == [canonical(e) for e in expected]
    finally:
        reference.close()
        subject.close()


def test_cluster_operations_work_over_any_transport(cluster):
    cluster.put("k", {"a": 1}, Interval(0, 5), frozenset())
    assert cluster.lookup("k", 0, 4).hit
    assert cluster.lookup("k", 0, 4).value == {"a": 1}
    assert not cluster.lookup("k", 6, 9).hit
    assert cluster.probe("k", 0, 4)
    assert cluster.was_ever_stored("k")
    assert not cluster.was_ever_stored("absent")
    assert cluster.evict_stale(10) == 1
    cluster.put("k2", 2, Interval(0))
    cluster.clear()
    assert cluster.entry_count == 0


def test_multi_lookup_groups_by_node_and_preserves_order(cluster):
    keys = [f"key-{i}" for i in range(30)]
    for i, key in enumerate(keys):
        cluster.put(key, i, Interval(0))
    requests = [LookupRequest(key, 0, 5) for key in keys]
    requests += [LookupRequest("never-stored", 0, 5), LookupRequest(keys[0], 0, 5, probe=True)]
    results = cluster.multi_lookup(requests)
    assert len(results) == len(requests)
    for i, result in enumerate(results[:30]):
        assert result.hit and result.value == i and result.key == keys[i]
    assert not results[30].hit and not results[30].key_ever_stored
    assert results[31].hit  # probe over a present key
    # The trace spanned every node.
    assert len({node for node, count in cluster.key_distribution(keys).items() if count}) > 1


def test_multi_lookup_matches_singleton_lookups(cluster):
    for i in range(20):
        cluster.put(f"key-{i}", i, Interval(0, 3 + i % 4))
    requests = [LookupRequest(f"key-{i}", 0, 3) for i in range(20)]
    # Probes first so the comparison lookups see identical LRU/stats state.
    probes = cluster.multi_lookup([
        LookupRequest(r.key, r.lo, r.hi, probe=True) for r in requests
    ])
    singles = [cluster.probe(r.key, r.lo, r.hi) for r in requests]
    assert [p.hit for p in probes] == singles


def test_invalidations_reach_every_node(transport_kind):
    bus = InvalidationBus()
    cluster = CacheCluster(
        node_count=3, clock=ManualClock(), invalidation_bus=bus, transport=transport_kind
    )
    try:
        for i in range(30):
            cluster.put(
                f"key-{i}", i, Interval(0), frozenset({InvalidationTag.key("t", "id", i)})
            )
        bus.publish(InvalidationMessage(timestamp=4, tags=(InvalidationTag.wildcard("t"),)))
        for view in node_views(cluster).values():
            assert view.last_invalidation_timestamp == 4
        assert cluster.aggregate_stats().entries_invalidated == 30
    finally:
        cluster.close()


# ----------------------------------------------------------------------
# Socket specifics: framing, errors, lifecycle
# ----------------------------------------------------------------------
class TestSocketTransport:
    def test_transport_learns_node_name(self):
        with CacheServerProcess(CacheServer(name="nodeX", clock=ManualClock())) as process:
            transport = SocketTransport(process.address)
            assert transport.name == "nodeX"
            transport.close()

    def test_server_survives_bad_requests(self):
        with CacheServerProcess(CacheServer(clock=ManualClock())) as process:
            transport = SocketTransport(process.address)
            with pytest.raises(CacheTransportError, match="unknown cache operation"):
                transport._call("no-such-op")
            # The connection is still usable afterwards.
            assert transport.put("k", 1, Interval(0)) is True
            assert transport.lookup("k", 0, 5).hit
            transport.close()

    def test_calls_after_close_raise(self):
        with CacheServerProcess(CacheServer(clock=ManualClock())) as process:
            transport = SocketTransport(process.address)
            transport.close()
            with pytest.raises(CacheTransportError):
                transport.probe("k", 0, 1)

    def test_graceful_shutdown_disconnects_clients(self):
        process = CacheServerProcess(CacheServer(clock=ManualClock()))
        transport = SocketTransport(process.address)
        assert transport.probe("k", 0, 1) is False
        process.shutdown()
        assert not process.running
        with pytest.raises(CacheTransportError):
            transport.put("k", 1, Interval(0))
        transport.close()
        process.shutdown()  # idempotent

    def test_multiple_connections_share_one_node(self):
        with CacheServerProcess(CacheServer(clock=ManualClock())) as process:
            first = SocketTransport(process.address)
            second = SocketTransport(process.address)
            first.put("k", "from-first", Interval(0))
            assert second.lookup("k", 0, 5).value == "from-first"
            assert second.stats().insertions == 1
            first.close()
            second.close()

    def test_conforms_to_transport_protocol(self):
        with CacheServerProcess(CacheServer(clock=ManualClock())) as process:
            transport = SocketTransport(process.address)
            assert isinstance(transport, CacheTransport)
            assert isinstance(InProcessTransport(CacheServer(clock=ManualClock())), CacheTransport)
            transport.close()


# ----------------------------------------------------------------------
# Whole-stack scenarios over TCP
# ----------------------------------------------------------------------
class TestIntegrationOverTcp:
    def test_bank_invariant_holds_over_socket_transport(self):
        """The integration suite's consistency invariant, served over TCP."""
        from repro.db.query import Eq, Select

        accounts = 6
        deployment = build_bank_deployment(accounts=accounts, transport="socket")
        try:
            client = deployment.client()

            @client.cacheable(name="get_balance")
            def get_balance(account_id):
                return client.query(Select("accounts", Eq("id", account_id))).rows[0]["balance"]

            rng = random.Random(9)
            for round_number in range(25):
                transfer(deployment, rng.randrange(accounts), rng.randrange(accounts), rng.randint(1, 20))
                with client.read_only(staleness=rng.choice([0, 5, 30])):
                    cached_part = rng.randrange(accounts)
                    total = 0
                    for account in range(accounts):
                        if account <= cached_part:
                            total += get_balance(account)
                        else:
                            total += client.query(
                                Select("accounts", Eq("id", account))
                            ).rows[0]["balance"]
                assert total == accounts * 100, f"inconsistent snapshot on round {round_number}"
            assert client.stats.hits > 0  # the cache actually served traffic
        finally:
            deployment.shutdown()

    def test_deployment_modes_match_across_transports(self):
        """Same workload, same hit/miss pattern, whichever transport serves it."""
        from tests.helpers import TRANSPORTS as ALL_TRANSPORTS

        patterns = {}
        # Always compares both transports (the point of the test), even when
        # REPRO_TRANSPORT restricts the parametrized suites.
        for kind in ALL_TRANSPORTS:
            deployment = TxCacheDeployment(transport=kind, mode=ConsistencyMode.CONSISTENT)
            try:
                deployment.database.create_table(simple_schema())
                deployment.database.bulk_load(
                    "users",
                    [
                        {"id": i, "name": f"user{i}", "region": 0, "score": 0.0}
                        for i in range(1, 9)
                    ],
                )
                client = deployment.client()
                from repro.db.query import Eq, Select

                @client.cacheable(name="get_user")
                def get_user(user_id):
                    return client.query(Select("users", Eq("id", user_id))).rows[0]

                rng = random.Random(3)
                observed = []
                for _ in range(60):
                    with client.read_only():
                        observed.append(get_user(rng.randrange(1, 9))["name"])
                patterns[kind] = (
                    observed,
                    client.stats.hits,
                    client.stats.misses,
                    client.stats.cache_rpcs,
                )
            finally:
                deployment.shutdown()
        assert patterns["socket"] == patterns["inprocess"]
        assert patterns["socket-pipelined"] == patterns["inprocess"]
        assert patterns["socket-process"] == patterns["inprocess"]
