"""Tests for the invalidation multicast bus."""

from __future__ import annotations

import pytest

from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.db.invalidation import InvalidationTag


class Recorder:
    """A subscriber that records every message it receives."""

    def __init__(self):
        self.messages = []

    def process_invalidation(self, message):
        self.messages.append(message)


def message(ts, *tags):
    return InvalidationMessage(timestamp=ts, tags=tuple(tags))


class TestSynchronousDelivery:
    def test_single_subscriber_receives_message(self):
        bus = InvalidationBus()
        recorder = Recorder()
        bus.subscribe(recorder)
        bus.publish(message(1, InvalidationTag.key("users", "id", 1)))
        assert len(recorder.messages) == 1
        assert recorder.messages[0].timestamp == 1

    def test_all_subscribers_receive_every_message(self):
        bus = InvalidationBus()
        recorders = [Recorder() for _ in range(3)]
        for recorder in recorders:
            bus.subscribe(recorder)
        bus.publish(message(1))
        bus.publish(message(2))
        assert all(len(r.messages) == 2 for r in recorders)

    def test_messages_delivered_in_order(self):
        bus = InvalidationBus()
        recorder = Recorder()
        bus.subscribe(recorder)
        for ts in (1, 2, 5, 9):
            bus.publish(message(ts))
        assert [m.timestamp for m in recorder.messages] == [1, 2, 5, 9]

    def test_out_of_order_publication_rejected(self):
        bus = InvalidationBus()
        bus.publish(message(5))
        with pytest.raises(ValueError):
            bus.publish(message(5))
        with pytest.raises(ValueError):
            bus.publish(message(3))

    def test_duplicate_subscription_ignored(self):
        bus = InvalidationBus()
        recorder = Recorder()
        bus.subscribe(recorder)
        bus.subscribe(recorder)
        bus.publish(message(1))
        assert len(recorder.messages) == 1

    def test_unsubscribe_stops_delivery(self):
        bus = InvalidationBus()
        recorder = Recorder()
        bus.subscribe(recorder)
        bus.publish(message(1))
        bus.unsubscribe(recorder)
        bus.publish(message(2))
        assert len(recorder.messages) == 1


class TestDeferredDelivery:
    def test_messages_queue_until_delivered(self):
        bus = InvalidationBus(synchronous=False)
        recorder = Recorder()
        bus.subscribe(recorder)
        bus.publish(message(1))
        bus.publish(message(2))
        assert recorder.messages == []
        assert bus.pending_count == 2
        delivered = bus.deliver_pending()
        assert delivered == 2
        assert [m.timestamp for m in recorder.messages] == [1, 2]

    def test_switching_to_synchronous_flushes_queue(self):
        bus = InvalidationBus(synchronous=False)
        recorder = Recorder()
        bus.subscribe(recorder)
        bus.publish(message(1))
        bus.set_synchronous(True)
        assert [m.timestamp for m in recorder.messages] == [1]
        bus.publish(message(2))
        assert [m.timestamp for m in recorder.messages] == [1, 2]

    def test_counters(self):
        bus = InvalidationBus(synchronous=False)
        bus.subscribe(Recorder())
        bus.publish(message(3))
        assert bus.last_published_timestamp == 3
        assert bus.delivered_count == 0
        bus.deliver_pending()
        assert bus.delivered_count == 1
        assert bus.pending_count == 0
