"""Tests for query execution and validity-interval tracking.

These exercise the heart of the paper's database modification: the result
tuple validity, the invalidity mask built from phantoms, the final validity
interval, and the invalidation tags attached to each query result.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.invalidation import InvalidationTag
from repro.db.query import Aggregate, And, Eq, Func, In, Join, Or, Range, Select
from repro.clock import ManualClock
from repro.interval import Interval
from tests.helpers import build_database, simple_schema


@pytest.fixture
def db():
    return build_database(rows=10)


def update_user(db, user_id, **changes):
    """Commit a read/write transaction changing one user."""
    tx = db.begin_rw()
    tx.update("users", Eq("id", user_id), changes)
    return tx.commit()


def delete_user(db, user_id):
    tx = db.begin_rw()
    tx.delete("users", Eq("id", user_id))
    return tx.commit()


def insert_user(db, user_id, **extra):
    tx = db.begin_rw()
    row = {"id": user_id, "name": f"user{user_id}", "region": 0, "score": 0.0}
    row.update(extra)
    tx.insert("users", row)
    return tx.commit()


class TestBasicSelects:
    def test_point_lookup(self, db):
        result = db.begin_ro().query(Select("users", Eq("id", 3)))
        assert len(result.rows) == 1
        assert result.rows[0]["name"] == "user3"

    def test_full_scan(self, db):
        result = db.begin_ro().query(Select("users"))
        assert len(result.rows) == 10

    def test_projection(self, db):
        result = db.begin_ro().query(Select("users", Eq("id", 1), columns=["name"]))
        assert result.rows == [{"name": "user1"}]

    def test_order_by_and_limit(self, db):
        result = db.begin_ro().query(Select("users", order_by="id", descending=True, limit=3))
        assert [row["id"] for row in result.rows] == [10, 9, 8]

    def test_range_predicate(self, db):
        result = db.begin_ro().query(Select("users", Range("id", 3, 5)))
        assert sorted(row["id"] for row in result.rows) == [3, 4, 5]

    def test_in_predicate(self, db):
        result = db.begin_ro().query(Select("users", In("id", [2, 4, 6])))
        assert sorted(row["id"] for row in result.rows) == [2, 4, 6]

    def test_compound_predicate(self, db):
        result = db.begin_ro().query(
            Select("users", And(Range("id", 1, 6), Eq("region", 0)))
        )
        assert sorted(row["id"] for row in result.rows) == [3, 6]

    def test_or_and_func_predicates(self, db):
        result = db.begin_ro().query(
            Select("users", Or(Eq("id", 1), Func(lambda r: r["id"] == 2)))
        )
        assert sorted(row["id"] for row in result.rows) == [1, 2]

    def test_rows_are_copies(self, db):
        result = db.begin_ro().query(Select("users", Eq("id", 1)))
        result.rows[0]["name"] = "mutated"
        again = db.begin_ro().query(Select("users", Eq("id", 1)))
        assert again.rows[0]["name"] == "user1"

    def test_unknown_table_raises(self, db):
        from repro.db.errors import UnknownTableError

        with pytest.raises(UnknownTableError):
            db.begin_ro().query(Select("missing"))


class TestAggregates:
    def test_count(self, db):
        assert db.begin_ro().query(Aggregate(Select("users"), "count")).scalar() == 10

    def test_max_min_sum_avg(self, db):
        ro = db.begin_ro()
        assert ro.query(Aggregate(Select("users"), "max", "id")).scalar() == 10
        assert ro.query(Aggregate(Select("users"), "min", "id")).scalar() == 1
        assert ro.query(Aggregate(Select("users"), "sum", "id")).scalar() == 55
        assert ro.query(Aggregate(Select("users"), "avg", "id")).scalar() == pytest.approx(5.5)

    def test_aggregates_over_empty_input(self, db):
        ro = db.begin_ro()
        empty = Select("users", Eq("id", 999))
        assert ro.query(Aggregate(empty, "count")).scalar() == 0
        assert ro.query(Aggregate(empty, "max", "id")).scalar() is None
        assert ro.query(Aggregate(empty, "sum", "id")).scalar() == 0

    def test_invalid_aggregate_rejected(self):
        with pytest.raises(ValueError):
            Aggregate(Select("users"), "median", "id")
        with pytest.raises(ValueError):
            Aggregate(Select("users"), "max")


class TestJoins:
    def test_join_merges_rows(self):
        db = Database(clock=ManualClock())
        db.create_table(simple_schema("users"))
        db.create_table(simple_schema("accounts"))
        db.bulk_load("users", [{"id": 1, "name": "a", "region": 7, "score": 0.0}])
        db.bulk_load("accounts", [{"id": 7, "name": "acct", "region": 0, "score": 9.0}])
        result = db.begin_ro().query(
            Join(Select("users"), "accounts", on=("region", "id"), inner_prefix="acct_")
        )
        assert len(result.rows) == 1
        assert result.rows[0]["acct_score"] == 9.0
        assert result.rows[0]["name"] == "a"

    def test_join_tags_include_both_tables(self):
        db = Database(clock=ManualClock())
        db.create_table(simple_schema("users"))
        db.create_table(simple_schema("accounts"))
        db.bulk_load("users", [{"id": 1, "name": "a", "region": 7, "score": 0.0}])
        db.bulk_load("accounts", [{"id": 7, "name": "acct", "region": 0, "score": 9.0}])
        result = db.begin_ro().query(Join(Select("users"), "accounts", on=("region", "id")))
        tables = {tag.table for tag in result.tags}
        assert tables == {"users", "accounts"}


class TestValidityIntervals:
    def test_initial_data_is_valid_from_zero(self, db):
        result = db.begin_ro().query(Select("users", Eq("id", 1)))
        assert result.validity == Interval(0, None)
        assert result.still_valid

    def test_update_bounds_old_snapshot_result(self, db):
        ts = update_user(db, 1, name="renamed")
        old = db.begin_ro(snapshot_id=0).query(Select("users", Eq("id", 1)))
        assert old.validity == Interval(0, ts)
        new = db.begin_ro().query(Select("users", Eq("id", 1)))
        assert new.validity == Interval(ts, None)

    def test_unrelated_update_does_not_narrow_validity(self, db):
        update_user(db, 5, name="other")
        result = db.begin_ro().query(Select("users", Eq("id", 1)))
        assert result.validity == Interval(0, None)

    def test_phantom_insert_bounds_earlier_result(self, db):
        """A row inserted later bounds the validity of an earlier empty result."""
        ts = insert_user(db, 42)
        result = db.begin_ro(snapshot_id=0).query(Select("users", Eq("id", 42)))
        assert result.rows == []
        assert result.validity == Interval(0, ts)

    def test_phantom_delete_bounds_later_result(self, db):
        """After a delete, the new (empty) result's validity starts at the delete."""
        ts = delete_user(db, 3)
        result = db.begin_ro().query(Select("users", Eq("id", 3)))
        assert result.rows == []
        assert result.validity == Interval(ts, None)

    def test_scan_validity_intersects_all_matching_rows(self, db):
        ts1 = update_user(db, 2, score=50.0)
        ts2 = update_user(db, 4, score=60.0)
        result = db.begin_ro().query(Select("users", Range("id", 1, 5)))
        # The result contains rows last modified at ts1 and ts2, so it is
        # valid only from the latest of those commits onwards.
        assert result.validity == Interval(ts2, None)
        assert ts1 < ts2

    def test_aggregate_validity_reflects_contributing_rows(self, db):
        ts = update_user(db, 7, score=99.0)
        result = db.begin_ro().query(Aggregate(Select("users"), "max", "score"))
        assert result.scalar() == 99.0
        assert result.validity.lo == ts

    def test_validity_piece_contains_query_timestamp(self, db):
        update_user(db, 1, name="v2")
        update_user(db, 1, name="v3")
        for snapshot in (0, 1, 2):
            result = db.begin_ro(snapshot_id=snapshot).query(Select("users", Eq("id", 1)))
            assert result.validity.contains(snapshot)

    def test_limit_does_not_break_validity(self, db):
        ts = update_user(db, 9, score=1.5)
        result = db.begin_ro().query(Select("users", order_by="id", limit=2))
        # Conservative: validity accounts for all matching rows, including
        # those beyond the limit, so the modified row bounds it.
        assert result.validity.lo == ts


class TestQueryTags:
    def test_index_lookup_gets_precise_tag(self, db):
        result = db.begin_ro().query(Select("users", Eq("name", "user3")))
        assert result.tags == frozenset({InvalidationTag.key("users", "name", "user3")})

    def test_seq_scan_gets_wildcard_tag(self, db):
        result = db.begin_ro().query(Select("users", Eq("score", 3.0)))
        assert result.tags == frozenset({InvalidationTag.wildcard("users")})

    def test_range_scan_gets_wildcard_tag(self, db):
        result = db.begin_ro().query(Select("users", Range("region", 0, 1)))
        assert result.tags == frozenset({InvalidationTag.wildcard("users")})


class TestValidityTrackingDisabled:
    def test_no_tracking_returns_point_interval_and_no_tags(self):
        db = Database(clock=ManualClock(), track_validity=False)
        db.create_table(simple_schema())
        db.bulk_load("users", [{"id": 1, "name": "a", "region": 0, "score": 0.0}])
        result = db.begin_ro().query(Select("users", Eq("id", 1)))
        assert result.validity == Interval(0, None)
        assert result.tags == frozenset()


class TestExecutorStats:
    def test_stats_accumulate(self, db):
        db.executor.stats.reset()
        ro = db.begin_ro()
        ro.query(Select("users", Eq("id", 1)))
        ro.query(Select("users"))
        assert db.executor.stats.queries == 2
        assert db.executor.stats.index_lookups == 1
        assert db.executor.stats.seq_scans == 1
        assert db.executor.stats.rows_returned == 11

    def test_observers_called(self, db):
        seen = []
        db.executor.add_observer(lambda query, result: seen.append((query, result)))
        db.begin_ro().query(Select("users", Eq("id", 1)))
        assert len(seen) == 1
        db.executor.remove_observer
