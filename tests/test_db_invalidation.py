"""Tests for invalidation tags and tag collapsing."""

from __future__ import annotations

from repro.db.invalidation import (
    InvalidationTag,
    collapse_tags,
    tags_for_modified_tuple,
)


class TestInvalidationTag:
    def test_wildcard_construction(self):
        tag = InvalidationTag.wildcard("users")
        assert tag.is_wildcard
        assert str(tag) == "users:?"

    def test_key_construction(self):
        tag = InvalidationTag.key("users", "name", "alice")
        assert not tag.is_wildcard
        assert str(tag) == "users:name='alice'"

    def test_precise_tags_overlap_when_equal(self):
        a = InvalidationTag.key("users", "id", 3)
        assert a.overlaps(InvalidationTag.key("users", "id", 3))
        assert not a.overlaps(InvalidationTag.key("users", "id", 4))
        assert not a.overlaps(InvalidationTag.key("users", "name", 3))

    def test_wildcard_overlaps_everything_in_table(self):
        wildcard = InvalidationTag.wildcard("users")
        assert wildcard.overlaps(InvalidationTag.key("users", "id", 1))
        assert InvalidationTag.key("users", "id", 1).overlaps(wildcard)
        assert not wildcard.overlaps(InvalidationTag.wildcard("items"))

    def test_tags_are_hashable_and_deduplicate(self):
        tags = {InvalidationTag.key("t", "c", 1), InvalidationTag.key("t", "c", 1)}
        assert len(tags) == 1


class TestTagsForModifiedTuple:
    def test_one_tag_per_index(self):
        tags = tags_for_modified_tuple("users", ["id", "name"], {"id": 1, "name": "a"})
        assert tags == {
            InvalidationTag.key("users", "id", 1),
            InvalidationTag.key("users", "name", "a"),
        }

    def test_missing_column_yields_none_key(self):
        tags = tags_for_modified_tuple("users", ["region"], {"id": 1})
        assert tags == {InvalidationTag.key("users", "region", None)}


class TestCollapseTags:
    def test_small_sets_pass_through(self):
        tags = {InvalidationTag.key("users", "id", i) for i in range(5)}
        assert collapse_tags(tags, threshold=10) == frozenset(tags)

    def test_large_sets_collapse_to_wildcard(self):
        tags = {InvalidationTag.key("users", "id", i) for i in range(20)}
        assert collapse_tags(tags, threshold=10) == frozenset({InvalidationTag.wildcard("users")})

    def test_existing_wildcard_subsumes_precise_tags(self):
        tags = {
            InvalidationTag.wildcard("users"),
            InvalidationTag.key("users", "id", 1),
        }
        assert collapse_tags(tags) == frozenset({InvalidationTag.wildcard("users")})

    def test_tables_collapse_independently(self):
        tags = {InvalidationTag.key("users", "id", i) for i in range(20)}
        tags |= {InvalidationTag.key("items", "id", 1)}
        collapsed = collapse_tags(tags, threshold=10)
        assert InvalidationTag.wildcard("users") in collapsed
        assert InvalidationTag.key("items", "id", 1) in collapsed
