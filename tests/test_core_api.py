"""Tests for the TxCache client library: transactions, cacheable functions,
consistency, lazy timestamp selection, and the baseline modes."""

from __future__ import annotations

import pytest

from repro.core.api import ConsistencyMode
from repro.core.exceptions import (
    NotInTransactionError,
    TransactionInProgressError,
    TxCacheError,
)
from repro.core.stats import MissType
from repro.db.errors import SerializationError
from repro.db.query import Eq, Select
from tests.helpers import build_deployment, insert_users, update_user


def make_get_user(client):
    @client.cacheable(name="get_user")
    def get_user(user_id):
        rows = client.query(Select("users", Eq("id", user_id))).rows
        return rows[0] if rows else None

    return get_user


class TestTransactionControl:
    def test_begin_commit_cycle(self):
        _dep, client = build_deployment()
        client.begin_ro()
        assert client.in_transaction
        assert client.current_read_only
        timestamp = client.commit()
        assert timestamp >= 0
        assert not client.in_transaction

    def test_nested_begin_rejected(self):
        _dep, client = build_deployment()
        client.begin_ro()
        with pytest.raises(TransactionInProgressError):
            client.begin_ro()
        with pytest.raises(TransactionInProgressError):
            client.begin_rw()
        client.abort()

    def test_commit_without_transaction_rejected(self):
        _dep, client = build_deployment()
        with pytest.raises(NotInTransactionError):
            client.commit()
        with pytest.raises(NotInTransactionError):
            client.abort()

    def test_query_outside_transaction_rejected(self):
        _dep, client = build_deployment()
        with pytest.raises(NotInTransactionError):
            client.query(Select("users"))

    def test_cacheable_outside_transaction_rejected(self):
        _dep, client = build_deployment()
        get_user = make_get_user(client)
        with pytest.raises(NotInTransactionError):
            get_user(1)

    def test_context_managers(self):
        dep, client = build_deployment()
        with client.read_only():
            assert client.current_read_only
        with client.read_write():
            client.update("users", Eq("id", 1), {"score": 9.0})
        dep.advance(0.1)
        with client.read_only(staleness=0):
            value = client.query(Select("users", Eq("id", 1))).rows[0]["score"]
        assert value == 9.0

    def test_context_manager_aborts_on_exception(self):
        _dep, client = build_deployment()
        with pytest.raises(RuntimeError):
            with client.read_write():
                client.update("users", Eq("id", 1), {"score": 9.0})
                raise RuntimeError("boom")
        # The update was rolled back.
        with client.read_only(staleness=0):
            assert client.query(Select("users", Eq("id", 1))).rows[0]["score"] == 1.0

    def test_write_operations_require_rw_transaction(self):
        _dep, client = build_deployment()
        client.begin_ro()
        with pytest.raises(NotInTransactionError):
            client.insert("users", {"id": 99, "name": "x", "region": 0, "score": 0.0})
        client.abort()


class TestCacheableFunctions:
    def test_miss_then_hit(self):
        _dep, client = build_deployment()
        get_user = make_get_user(client)
        client.begin_ro()
        first = get_user(3)
        second = get_user(3)
        client.commit()
        assert first == second
        assert client.stats.misses == 1
        assert client.stats.hits == 1

    def test_hits_span_transactions(self):
        _dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_only():
            get_user(3)
        with client.read_only():
            get_user(3)
        assert client.stats.hits == 1
        assert client.stats.misses == 1

    def test_cached_value_shared_between_clients(self):
        dep, client = build_deployment()
        other = dep.client()
        get_user_a = make_get_user(client)
        get_user_b = make_get_user(other)
        with client.read_only():
            get_user_a(3)
        with other.read_only():
            get_user_b(3)
        assert other.stats.hits == 1

    def test_different_arguments_cached_separately(self):
        _dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_only():
            assert get_user(1)["id"] == 1
            assert get_user(2)["id"] == 2
        assert client.stats.misses == 2

    def test_make_cacheable_returns_wrapped_metadata(self):
        _dep, client = build_deployment()
        get_user = make_get_user(client)
        assert get_user.__txcache_name__ == "get_user"
        assert callable(get_user.__txcache_wrapped__)

    def test_decorator_without_arguments(self):
        _dep, client = build_deployment()

        @client.cacheable
        def constant():
            return 42

        with client.read_only():
            assert constant() == 42
            assert constant() == 42
        assert client.stats.hits == 1

    def test_cacheable_call_counted_per_transaction_mode(self):
        _dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_write():
            get_user(1)
        assert client.stats.cache_bypassed_calls == 1
        assert client.stats.hits == 0

    def test_pure_computation_cacheable(self):
        _dep, client = build_deployment()
        calls = []

        @client.cacheable(name="expensive")
        def expensive(n):
            calls.append(n)
            return n * n

        with client.read_only():
            assert expensive(4) == 16
        with client.read_only():
            assert expensive(4) == 16
        assert calls == [4]


class TestAutomaticInvalidation:
    def test_update_invalidates_cached_function(self):
        dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_only():
            assert get_user(3)["name"] == "user3"
        update_user(dep, 3, name="renamed")
        # A transaction demanding fresh data sees the new value.
        with client.read_only(staleness=0):
            assert get_user(3)["name"] == "renamed"

    def test_unrelated_update_does_not_invalidate(self):
        dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_only():
            get_user(3)
        update_user(dep, 4, name="other")
        with client.read_only(staleness=0):
            get_user(3)
        # Second call was a hit: the entry for user 3 is still valid.
        assert client.stats.hits == 1

    def test_insert_invalidates_scan_results(self):
        dep, client = build_deployment(rows=5)

        @client.cacheable(name="count_users")
        def count_users():
            return len(client.query(Select("users")).rows)

        with client.read_only():
            assert count_users() == 5
        insert_users(dep, [{"id": 50, "name": "new", "region": 0, "score": 0.0}])
        with client.read_only(staleness=0):
            assert count_users() == 6

    def test_stale_transaction_may_reuse_invalidated_entry(self):
        dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_only():
            assert get_user(3)["name"] == "user3"
        update_user(dep, 3, name="renamed")
        # Within the staleness limit the old (consistent) version is allowed.
        with client.read_only(staleness=30):
            value = get_user(3)["name"]
        assert value in {"user3", "renamed"}
        assert client.stats.hits >= 1


class TestConsistency:
    def test_transaction_never_mixes_old_and_new_state(self):
        """The core TxCache guarantee: cached data and database data observed
        in one transaction reflect a single point in time."""
        dep, client = build_deployment()
        get_user = make_get_user(client)

        # Cache user 1 at the initial state.
        with client.read_only():
            before = get_user(1)
        assert before["score"] == 1.0

        # A write changes user 1 and user 2 atomically.
        transaction = dep.database.begin_rw()
        transaction.update("users", Eq("id", 1), {"score": 100.0})
        transaction.update("users", Eq("id", 2), {"score": 200.0})
        transaction.commit()

        # A new transaction reads user 1 from the cache (old snapshot is
        # within staleness) and user 2 from the database: it must see the
        # matching old value for user 2.
        with client.read_only(staleness=30):
            user1 = get_user(1)
            user2_row = client.query(Select("users", Eq("id", 2))).rows[0]
            if user1["score"] == 1.0:
                assert user2_row["score"] == 2.0
            else:
                assert user2_row["score"] == 200.0

    def test_db_query_pins_transaction_to_snapshot(self):
        dep, client = build_deployment()
        client.begin_ro()
        first = client.query(Select("users", Eq("id", 1))).rows[0]
        update_user(dep, 1, score=77.0)
        second = client.query(Select("users", Eq("id", 1))).rows[0]
        client.commit()
        assert first["score"] == second["score"] == 1.0

    def test_commit_returns_serialization_timestamp(self):
        dep, client = build_deployment()
        with client.read_only():
            client.query(Select("users", Eq("id", 1)))
        # No writes have happened, so the only possible timestamp is 0.
        client.begin_ro()
        client.query(Select("users", Eq("id", 1)))
        assert client.commit() == 0

    def test_causality_via_staleness_bound(self):
        """The paper's recipe: feed a write's commit timestamp back as the
        next transaction's freshness requirement so time never moves backwards."""
        dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_only():
            get_user(1)
        with client.read_write():
            client.update("users", Eq("id", 1), {"name": "after-write"})
        dep.advance(0.1)
        # Demand data at least as new as the write we just made.
        with client.read_only(staleness=0):
            assert get_user(1)["name"] == "after-write"


class TestReadWriteTransactions:
    def test_rw_bypasses_cache_and_sees_latest(self):
        dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_only():
            get_user(1)
        update_user(dep, 1, name="fresh")
        with client.read_write():
            assert get_user(1)["name"] == "fresh"
        assert client.stats.cache_bypassed_calls >= 1

    def test_rw_commit_returns_new_timestamp(self):
        dep, client = build_deployment()
        before = dep.database.latest_timestamp
        with client.read_write():
            client.update("users", Eq("id", 1), {"score": 5.0})
        assert dep.database.latest_timestamp == before + 1

    def test_serialization_error_propagates_and_clears_state(self):
        dep, client = build_deployment()
        client.begin_rw()
        client.update("users", Eq("id", 1), {"score": 5.0})
        conflicting = dep.database.begin_rw()
        with pytest.raises(SerializationError):
            conflicting.update("users", Eq("id", 1), {"score": 6.0})
        conflicting.abort()
        client.commit()
        assert not client.in_transaction

    def test_rw_abort_discards_changes(self):
        dep, client = build_deployment()
        client.begin_rw()
        client.update("users", Eq("id", 1), {"score": 5.0})
        client.abort()
        with client.read_only(staleness=0):
            assert client.query(Select("users", Eq("id", 1))).rows[0]["score"] == 1.0


class TestNestedCacheableCalls:
    def test_inner_hit_outer_miss(self):
        dep, client = build_deployment()
        get_user = make_get_user(client)

        @client.cacheable(name="profile_page")
        def profile_page(user_id):
            user = get_user(user_id)
            return f"profile:{user['name']}"

        with client.read_only():
            get_user(2)  # warm the inner function
        with client.read_only():
            page = profile_page(2)
        assert page == "profile:user2"
        # Outer page result is now cached too.
        with client.read_only():
            profile_page(2)
        assert client.stats.hits >= 2

    def test_outer_entry_invalidated_through_inner_dependency(self):
        dep, client = build_deployment()
        get_user = make_get_user(client)

        @client.cacheable(name="profile_page")
        def profile_page(user_id):
            user = get_user(user_id)
            return f"profile:{user['name']}"

        with client.read_only():
            assert profile_page(2) == "profile:user2"
        update_user(dep, 2, name="renamed")
        with client.read_only(staleness=0):
            assert profile_page(2) == "profile:renamed"

    def test_unbalanced_frames_detected(self):
        _dep, client = build_deployment()
        get_user = make_get_user(client)

        @client.cacheable(name="bad_page")
        def bad_page(user_id):
            client.commit()  # illegal: finishing the transaction mid-call
            return user_id

        client.begin_ro()
        with pytest.raises(TxCacheError):
            bad_page(1)
        if client.in_transaction:
            client.abort()


class TestMissClassification:
    def test_compulsory_miss(self):
        _dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_only():
            get_user(1)
        assert client.stats.misses_by_type[MissType.COMPULSORY] == 1

    def test_stale_or_capacity_miss_after_eviction(self):
        dep, client = build_deployment(capacity_bytes=600)
        get_user = make_get_user(client)
        with client.read_only():
            for user_id in range(1, 15):
                get_user(user_id)
        # Re-read an early key: it has very likely been evicted by now.
        client.stats.reset()
        with client.read_only():
            get_user(1)
        assert (
            client.stats.misses_by_type[MissType.STALE_OR_CAPACITY]
            + client.stats.misses_by_type[MissType.COMPULSORY]
            == client.stats.misses
        )

    def test_consistency_miss(self):
        dep, client = build_deployment()
        get_user = make_get_user(client)
        # Cache user 1 at the initial snapshot; its cached copy becomes stale
        # (valid only in the past) when user 1 is updated.
        with client.read_only():
            get_user(1)
        update_user(dep, 1, score=10.0)
        # User 2 is also updated, so any later cached copy of it is valid
        # only from that commit onwards.
        update_user(dep, 2, score=20.0)
        dep.advance(1.0)
        # Cache user 2 at the newest snapshot only.
        with client.read_only(staleness=0):
            assert get_user(2)["score"] == 20.0
        client.stats.reset()
        # A wide-staleness transaction first uses user 1's old cached copy,
        # pinning itself to the old snapshot; user 2's only cached version is
        # valid only at the newest snapshot, so even though a sufficiently
        # fresh version exists it cannot be used: a consistency miss.
        with client.read_only(staleness=60):
            assert get_user(1)["score"] == 1.0
            get_user(2)
        assert client.stats.misses_by_type[MissType.CONSISTENCY] >= 1


class TestBaselineModes:
    def test_no_cache_mode_never_uses_cache(self):
        dep, _ = build_deployment()
        client = dep.client(mode=ConsistencyMode.NO_CACHE)
        get_user = make_get_user(client)
        with client.read_only():
            get_user(1)
            get_user(1)
        assert client.stats.hits == 0
        assert client.stats.cache_bypassed_calls == 2
        assert dep.cache.entry_count == 0

    def test_no_consistency_mode_reads_any_fresh_value(self):
        dep, _ = build_deployment()
        client = dep.client(mode=ConsistencyMode.NO_CONSISTENCY)
        get_user = make_get_user(client)
        with client.read_only():
            get_user(1)
        update_user(dep, 1, score=50.0)
        update_user(dep, 2, score=60.0)
        with client.read_only():
            value_one = get_user(1)
            value_two = client.query(Select("users", Eq("id", 2))).rows[0]
        # It happily mixes the stale cached user 1 with the fresh user 2 —
        # exactly the anomaly TxCache's consistent mode prevents.
        assert value_one["score"] == 1.0
        assert value_two["score"] == 60.0

    def test_no_consistency_mode_still_populates_cache(self):
        dep, _ = build_deployment()
        client = dep.client(mode=ConsistencyMode.NO_CONSISTENCY)
        get_user = make_get_user(client)
        with client.read_only():
            get_user(1)
        assert dep.cache.entry_count == 1


class TestLazyTimestampSelection:
    def test_cache_only_transaction_never_touches_database(self):
        dep, client = build_deployment()
        get_user = make_get_user(client)
        with client.read_only():
            get_user(1)
        ro_before = dep.database.stats.ro_transactions
        with client.read_only():
            get_user(1)
        assert dep.database.stats.ro_transactions == ro_before

    def test_db_transaction_started_lazily(self):
        dep, client = build_deployment()
        client.begin_ro()
        assert client.current_timestamp is None
        client.query(Select("users", Eq("id", 1)))
        assert client.current_timestamp is not None
        client.commit()

    def test_old_pin_triggers_new_snapshot_when_star_available(self):
        dep, client = build_deployment()
        # Create a pinned snapshot, then age it beyond the 5 s threshold.
        with client.read_only():
            client.query(Select("users", Eq("id", 1)))
        update_user(dep, 1, score=9.0)
        dep.advance(10.0)
        with client.read_only(staleness=60):
            client.query(Select("users", Eq("id", 1)))
            chosen = client.current_timestamp
        assert chosen == dep.database.latest_timestamp
        assert client.stats.pins_created >= 2

    def test_recent_pin_reused(self):
        dep, client = build_deployment()
        with client.read_only():
            client.query(Select("users", Eq("id", 1)))
        pins_before = client.stats.pins_created
        dep.advance(1.0)
        with client.read_only():
            client.query(Select("users", Eq("id", 2)))
        assert client.stats.pins_created == pins_before

    def test_pincushion_released_after_commit(self):
        dep, client = build_deployment()
        with client.read_only():
            client.query(Select("users", Eq("id", 1)))
        for snapshot in dep.pincushion.pinned_ids:
            assert dep.pincushion.snapshot(snapshot).in_use == 0
