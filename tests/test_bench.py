"""Tests for the benchmark harness: cost model, driver, and experiments."""

from __future__ import annotations

import pytest

from repro.apps.rubis.datagen import IN_MEMORY_CONFIG
from repro.bench.costmodel import BufferCache, ClusterSpec, CostModel
from repro.bench.driver import BenchmarkConfig, run_benchmark
from repro.bench.experiments import ExperimentSettings, validity_tracking_overhead
from repro.bench.report import format_series, format_table
from repro.core.api import ConsistencyMode
from repro.db.executor import QueryResult
from repro.db.query import Select
from repro.interval import Interval


def fake_result(rows=(), examined=0):
    return QueryResult(
        rows=list(rows), validity=Interval(0), tags=frozenset(), timestamp=0, examined=examined
    )


class TestBufferCache:
    def test_first_access_misses_then_hits(self):
        cache = BufferCache(capacity_rows=10)
        assert not cache.access("t", 1)
        assert cache.access("t", 1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        cache = BufferCache(capacity_rows=2)
        cache.access("t", 1)
        cache.access("t", 2)
        cache.access("t", 3)  # evicts 1
        assert not cache.access("t", 1)

    def test_capacity_floor(self):
        assert BufferCache(capacity_rows=0).capacity_rows == 1


class TestCostModel:
    def test_query_costs_accumulate(self):
        model = CostModel()
        model.begin_interaction()
        model.observe_query(Select("users"), fake_result(examined=10))
        cost = model.end_interaction()
        params = model.parameters
        assert cost.db == pytest.approx(params.db_cost_per_query + 10 * params.db_cost_per_tuple)
        assert cost.web > 0

    def test_disk_bound_charges_buffer_misses(self):
        model = CostModel(disk_bound=True, total_rows=1000)
        model.begin_interaction()
        rows = [{"id": i} for i in range(5)]
        model.observe_query(Select("users"), fake_result(rows=rows))
        first = model.end_interaction()
        model.begin_interaction()
        model.observe_query(Select("users"), fake_result(rows=rows))
        second = model.end_interaction()
        # The second access finds the rows in the buffer cache.
        assert second.db < first.db

    def test_cacheable_call_costs(self):
        model = CostModel()
        model.begin_interaction()
        model.charge_cacheable_call(hit=True)
        hit_cost = model.current.web
        model.charge_cacheable_call(hit=False)
        model.charge_bypassed_call()
        cost = model.end_interaction()
        assert cost.cache > 0
        assert hit_cost < model.parameters.web_cost_per_cacheable_call + model.parameters.web_cost_per_interaction

    def test_peak_throughput_uses_bottleneck(self):
        model = CostModel()
        model.begin_interaction()
        model.current.db += 0.010
        model.current.web += 0.002
        model.end_interaction()
        cluster = ClusterSpec(db_nodes=1, web_nodes=4, cache_nodes=1)
        assert model.bottleneck(cluster) == "db"
        assert model.peak_throughput(cluster) == pytest.approx(100.0, rel=0.2)

    def test_utilization_shares_normalized(self):
        model = CostModel()
        model.begin_interaction()
        model.current.db += 0.010
        model.current.web += 0.005
        model.current.cache += 0.001
        model.end_interaction()
        shares = model.utilization_shares(ClusterSpec(1, 1, 1))
        assert shares["db"] == pytest.approx(1.0)
        assert 0 < shares["cache"] < shares["web"] < 1.0

    def test_reset(self):
        model = CostModel()
        model.begin_interaction()
        model.current.db += 1.0
        model.end_interaction()
        model.reset()
        assert model.interactions == 0
        assert model.demand_per_interaction().db == 0.0


class TestClusterSpec:
    def test_paper_defaults(self):
        in_memory = ClusterSpec.in_memory_default()
        assert (in_memory.db_nodes, in_memory.web_nodes, in_memory.cache_nodes) == (1, 7, 2)
        disk = ClusterSpec.disk_bound_default()
        assert disk.web_nodes == disk.cache_nodes == 8


class TestBenchmarkDriver:
    @pytest.fixture(scope="class")
    def quick_result(self):
        config = BenchmarkConfig(
            database_config=IN_MEMORY_CONFIG,
            cache_size_bytes=256 * 1024,
            scale=400,
            sessions=6,
            warmup_interactions=150,
            measure_interactions=300,
            seed=2,
            label="unit-test",
        )
        return config, run_benchmark(config)

    def test_result_fields_populated(self, quick_result):
        config, result = quick_result
        assert result.label == "unit-test"
        assert result.peak_throughput > 0
        assert 0.0 <= result.hit_rate <= 1.0
        assert result.interactions == config.measure_interactions
        assert result.bottleneck in {"db", "web", "cache"}
        assert result.simulated_seconds > 0
        assert sum(result.miss_fractions.values()) == pytest.approx(1.0, abs=1e-6) or result.miss_fractions

    def test_caching_beats_no_caching(self, quick_result):
        config, cached = quick_result
        baseline_config = BenchmarkConfig(
            database_config=IN_MEMORY_CONFIG,
            cache_size_bytes=256 * 1024,
            mode=ConsistencyMode.NO_CACHE,
            scale=400,
            sessions=6,
            warmup_interactions=150,
            measure_interactions=300,
            seed=2,
        )
        baseline = run_benchmark(baseline_config)
        assert baseline.hit_rate == 0.0
        assert cached.peak_throughput > baseline.peak_throughput

    def test_workload_mix_is_mostly_read_only(self, quick_result):
        _config, result = quick_result
        assert 0.05 <= result.read_write_fraction <= 0.25

    def test_summary_is_a_single_line(self, quick_result):
        _config, result = quick_result
        assert "\n" not in result.summary()


class TestExperimentHelpers:
    def test_experiment_settings_quick_and_full_differ(self):
        assert ExperimentSettings.quick().measure_interactions < ExperimentSettings.full().measure_interactions

    def test_validity_tracking_overhead_is_small(self):
        result = validity_tracking_overhead(queries=400)
        # The paper found no observable difference; allow generous slack for
        # the Python implementation but catch pathological regressions.
        assert result.overhead_fraction < 2.0
        assert result.stock_seconds_per_query > 0
        assert "overhead" in result.format_table()


class TestReport:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, "x"], [22, "yy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        # title + header + separator + two data rows
        assert len(lines) == 5
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_format_series(self):
        text = format_series("hit rate", [1, 2], [0.5, 1.0])
        assert "hit rate" in text and "1:" in text


def test_churn_event_outside_measurement_phase_is_rejected():
    """Regression: a churn event that would never fire must be an error,
    not a silent no-op producing a baseline run in disguise."""
    import pytest

    from repro.apps.rubis.datagen import IN_MEMORY_CONFIG
    from repro.bench.driver import BenchmarkConfig, ChurnEvent, run_benchmark

    config = BenchmarkConfig(
        database_config=IN_MEMORY_CONFIG,
        cache_size_bytes=64 * 1024,
        measure_interactions=100,
        churn=(ChurnEvent(100, "join"),),
    )
    with pytest.raises(ValueError, match="outside"):
        run_benchmark(config)
