"""Tests for consistent hashing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hashring import ConsistentHashRing


class TestBasics:
    def test_single_node_gets_everything(self):
        ring = ConsistentHashRing(["only"])
        assert all(ring.node_for(f"key{i}") == "only" for i in range(50))

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().node_for("k")

    def test_lookup_is_deterministic(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.node_for("some-key") == ring.node_for("some-key")

    def test_add_node_idempotent(self):
        ring = ConsistentHashRing(["a"])
        ring.add_node("a")
        assert len(ring) == 1

    def test_remove_node(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.remove_node("a")
        assert ring.nodes == ["b"]
        assert all(ring.node_for(f"key{i}") == "b" for i in range(20))

    def test_remove_missing_node_is_noop(self):
        ring = ConsistentHashRing(["a"])
        ring.remove_node("zzz")
        assert len(ring) == 1

    def test_invalid_virtual_nodes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(virtual_nodes=0)


class TestDistribution:
    def test_keys_spread_over_nodes(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(4)], virtual_nodes=200)
        keys = [f"key-{i}" for i in range(4000)]
        counts = ring.distribution(keys)
        assert set(counts) == {f"n{i}" for i in range(4)}
        for count in counts.values():
            # With 200 virtual nodes the load imbalance should be modest.
            assert 0.5 * 1000 < count < 1.7 * 1000

    def test_node_removal_only_remaps_its_keys(self):
        """Consistent hashing: removing a node must not move keys between
        surviving nodes."""
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=100)
        keys = [f"key-{i}" for i in range(1000)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("b")
        for key in keys:
            after = ring.node_for(key)
            if before[key] != "b":
                assert after == before[key]
            else:
                assert after in {"a", "c"}

    def test_node_addition_only_steals_keys(self):
        ring = ConsistentHashRing(["a", "b"], virtual_nodes=100)
        keys = [f"key-{i}" for i in range(1000)]
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("c")
        moved_to_existing = sum(
            1
            for key in keys
            if ring.node_for(key) != before[key] and ring.node_for(key) != "c"
        )
        assert moved_to_existing == 0


class TestProperties:
    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_every_key_maps_to_a_member(self, key):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.node_for(key) in {"a", "b", "c"}

    @given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=20, unique=True))
    @settings(max_examples=50)
    def test_mapping_independent_of_insertion_order(self, node_names):
        forward = ConsistentHashRing(node_names)
        backward = ConsistentHashRing(list(reversed(node_names)))
        for i in range(50):
            key = f"key-{i}"
            assert forward.node_for(key) == backward.node_for(key)
