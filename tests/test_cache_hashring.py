"""Tests for consistent hashing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hashring import ConsistentHashRing


class TestBasics:
    def test_single_node_gets_everything(self):
        ring = ConsistentHashRing(["only"])
        assert all(ring.node_for(f"key{i}") == "only" for i in range(50))

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().node_for("k")

    def test_lookup_is_deterministic(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.node_for("some-key") == ring.node_for("some-key")

    def test_add_node_idempotent(self):
        ring = ConsistentHashRing(["a"])
        ring.add_node("a")
        assert len(ring) == 1

    def test_remove_node(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.remove_node("a")
        assert ring.nodes == ["b"]
        assert all(ring.node_for(f"key{i}") == "b" for i in range(20))

    def test_remove_missing_node_is_noop(self):
        ring = ConsistentHashRing(["a"])
        ring.remove_node("zzz")
        assert len(ring) == 1

    def test_invalid_virtual_nodes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(virtual_nodes=0)


class TestDistribution:
    def test_keys_spread_over_nodes(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(4)], virtual_nodes=200)
        keys = [f"key-{i}" for i in range(4000)]
        counts = ring.distribution(keys)
        assert set(counts) == {f"n{i}" for i in range(4)}
        for count in counts.values():
            # With 200 virtual nodes the load imbalance should be modest.
            assert 0.5 * 1000 < count < 1.7 * 1000

    def test_node_removal_only_remaps_its_keys(self):
        """Consistent hashing: removing a node must not move keys between
        surviving nodes."""
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=100)
        keys = [f"key-{i}" for i in range(1000)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("b")
        for key in keys:
            after = ring.node_for(key)
            if before[key] != "b":
                assert after == before[key]
            else:
                assert after in {"a", "c"}

    def test_node_addition_only_steals_keys(self):
        ring = ConsistentHashRing(["a", "b"], virtual_nodes=100)
        keys = [f"key-{i}" for i in range(1000)]
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("c")
        moved_to_existing = sum(
            1
            for key in keys
            if ring.node_for(key) != before[key] and ring.node_for(key) != "c"
        )
        assert moved_to_existing == 0


class TestMinimalDisruption:
    """The consistent-hashing selling point: changing one of n nodes remaps
    only ~1/n of the keys (vs. ~all of them under modulo hashing)."""

    KEYS = [f"key-{i}" for i in range(4000)]

    def test_adding_one_of_n_nodes_remaps_about_one_nth(self):
        for n in (3, 5, 8):
            ring = ConsistentHashRing([f"n{i}" for i in range(n)], virtual_nodes=150)
            before = {key: ring.node_for(key) for key in self.KEYS}
            ring.add_node("newcomer")
            moved = sum(1 for key in self.KEYS if ring.node_for(key) != before[key])
            expected = len(self.KEYS) / (n + 1)
            assert 0.4 * expected < moved < 1.8 * expected, f"n={n}: moved {moved}"

    def test_removing_one_of_n_nodes_remaps_about_one_nth(self):
        for n in (3, 5, 8):
            ring = ConsistentHashRing([f"n{i}" for i in range(n)], virtual_nodes=150)
            before = {key: ring.node_for(key) for key in self.KEYS}
            ring.remove_node("n0")
            moved = sum(1 for key in self.KEYS if ring.node_for(key) != before[key])
            expected = len(self.KEYS) / n
            assert 0.4 * expected < moved < 1.8 * expected, f"n={n}: moved {moved}"
            # And the moved keys are exactly the victim's.
            assert all(
                before[key] == "n0" for key in self.KEYS if ring.node_for(key) != before[key]
            )

    def test_remove_restores_the_exact_prior_ring(self):
        """Regression for the bisect-based removal: adding then removing a
        node must leave the ring bit-identical to never having added it."""
        reference = ConsistentHashRing(["a", "b", "c"])
        ring = ConsistentHashRing(["a", "b", "c"])
        ring.add_node("d")
        ring.remove_node("d")
        assert ring._points == reference._points
        assert ring._ring == reference._ring
        assert ring.nodes == reference.nodes


class TestWeights:
    def test_weighted_node_owns_a_proportional_share(self):
        ring = ConsistentHashRing(virtual_nodes=150)
        ring.add_node("light")
        ring.add_node("heavy", weight=3.0)
        keys = [f"key-{i}" for i in range(4000)]
        share = ring.distribution(keys)["heavy"] / len(keys)
        assert 0.6 < share < 0.9  # expectation 0.75

    def test_weight_of_and_validation(self):
        ring = ConsistentHashRing(virtual_nodes=100)
        ring.add_node("a", weight=0.5)
        assert ring.weight_of("a") == 0.5
        with pytest.raises(ValueError):
            ring.add_node("b", weight=0)

    def test_weighted_remove_deletes_all_points(self):
        ring = ConsistentHashRing(["a"], virtual_nodes=100)
        ring.add_node("heavy", weight=2.5)
        ring.remove_node("heavy")
        assert all(owner == "a" for _point, owner in ring._ring)
        assert len(ring._points) == 100


class TestOwnershipRanges:
    def test_owned_ranges_cover_exactly_the_nodes_keys(self):
        from repro.cache.hashring import _hash, range_contains

        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=50)
        ranges = {node: ring.owned_ranges(node) for node in ring.nodes}
        for i in range(500):
            key = f"key-{i}"
            owner = ring.node_for(key)
            point = _hash(key)
            for node, arcs in ranges.items():
                contained = any(range_contains(lo, hi, point) for lo, hi in arcs)
                assert contained == (node == owner)

    def test_owned_ranges_unknown_node_raises(self):
        with pytest.raises(KeyError):
            ConsistentHashRing(["a"]).owned_ranges("zzz")

    def test_diff_ownership_empty_for_identical_rings(self):
        from repro.cache.hashring import diff_ownership

        ring = ConsistentHashRing(["a", "b"])
        assert diff_ownership(ring, ring.copy()) == []

    def test_copy_is_independent(self):
        ring = ConsistentHashRing(["a", "b"])
        clone = ring.copy()
        clone.add_node("c")
        assert "c" in clone and "c" not in ring


class TestProperties:
    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_every_key_maps_to_a_member(self, key):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.node_for(key) in {"a", "b", "c"}

    @given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=20, unique=True))
    @settings(max_examples=50)
    def test_mapping_independent_of_insertion_order(self, node_names):
        forward = ConsistentHashRing(node_names)
        backward = ConsistentHashRing(list(reversed(node_names)))
        for i in range(50):
            key = f"key-{i}"
            assert forward.node_for(key) == backward.node_for(key)


# ----------------------------------------------------------------------
# Replication: successor lists and replica ranges
# ----------------------------------------------------------------------
#: Random weighted node sets: name -> weight.  Small virtual-node counts
#: keep the O(points^2) replica_ranges checks fast without changing the
#: properties under test.
weighted_nodes = st.dictionaries(
    st.sampled_from([f"n{i}" for i in range(10)]),
    st.sampled_from([0.5, 1.0, 1.5, 2.0]),
    min_size=1,
    max_size=7,
)

KEYS = [f"key-{i}" for i in range(40)]


def build_weighted(nodes, virtual_nodes=8):
    ring = ConsistentHashRing(virtual_nodes=virtual_nodes)
    for name in sorted(nodes):
        ring.add_node(name, weight=nodes[name])
    return ring


class TestSuccessorProperties:
    @given(weighted_nodes, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_successors_are_distinct_members_primary_first(self, nodes, r):
        ring = build_weighted(nodes)
        for key in KEYS:
            replicas = ring.successors(key, r)
            assert len(replicas) == min(r, len(ring))
            assert len(set(replicas)) == len(replicas)
            assert all(node in ring for node in replicas)
            assert replicas[0] == ring.node_for(key)

    @given(weighted_nodes, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_join_changes_replica_sets_minimally(self, nodes, r):
        """Adding a node inserts it at one position of each key's
        distinct-owner walk: the new replica set is a subset of the old one
        plus the newcomer, and at most one old replica is displaced."""
        ring = build_weighted(nodes)
        before = {key: ring.successors(key, r) for key in KEYS}
        ring.add_node("newcomer")
        for key in KEYS:
            old, new = before[key], ring.successors(key, r)
            assert set(new) <= set(old) | {"newcomer"}
            assert len(set(old) - set(new)) <= 1
            # Surviving replicas keep their relative order.
            survivors = [node for node in new if node != "newcomer"]
            assert survivors == [node for node in old if node in set(survivors)]

    @given(weighted_nodes, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_leave_promotes_the_next_successor_only(self, nodes, r):
        ring = build_weighted(nodes)
        victim = sorted(nodes)[0]
        before = {key: ring.successors(key, r) for key in KEYS}
        ring.remove_node(victim)
        if not len(ring):
            with pytest.raises(LookupError):
                ring.successors(KEYS[0], r)
            return
        for key in KEYS:
            old, new = before[key], ring.successors(key, r)
            expected_len = min(r, len(ring))
            assert len(new) == expected_len
            # Everyone but the victim keeps replica status; at most one node
            # (the next distinct successor) is promoted in.
            kept = [node for node in old if node != victim]
            assert kept == new[: len(kept)]
            assert len(set(new) - set(kept)) <= 1

    @given(weighted_nodes, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_replica_ranges_partition_the_ring_exactly(self, nodes, r):
        """Every hash-space point lies in exactly min(r, n) nodes'
        replica ranges — the nodes of its successor list — and each node's
        own arcs never overlap."""
        from repro.cache.hashring import _hash, range_contains

        ring = build_weighted(nodes)
        ranges = {node: ring.replica_ranges(node, r) for node in ring.nodes}
        for key in KEYS:
            point = _hash(key)
            owners = set(ring.successors(key, r))
            for node, arcs in ranges.items():
                contained = any(range_contains(lo, hi, point) for lo, hi in arcs)
                assert contained == (node in owners), (key, node)
        if len(ring) > 1:
            for node, arcs in ranges.items():
                # Arcs of one node are disjoint: each ring point starts at
                # most one arc, and arcs span distinct inter-point gaps.
                assert len({hi for _lo, hi in arcs}) == len(arcs)

    def test_replica_ranges_r1_equals_owned_ranges(self):
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=50)
        for node in ring.nodes:
            assert ring.replica_ranges(node, 1) == ring.owned_ranges(node)

    def test_successors_validation(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.successors("k", 0)
        with pytest.raises(LookupError):
            ConsistentHashRing().successors("k", 2)
        with pytest.raises(KeyError):
            ring.replica_ranges("zzz", 2)

    def test_diff_replica_ownership_reduces_to_diff_ownership_for_r1(self):
        from repro.cache.hashring import diff_ownership, diff_replica_ownership

        old = ConsistentHashRing(["a", "b", "c"], virtual_nodes=30)
        new = old.copy()
        new.add_node("d")
        plain = diff_ownership(old, new)
        replicated = diff_replica_ownership(old, new, 1)
        assert [(c.lo, c.hi, (c.old_owner,), (c.new_owner,)) for c in plain] == [
            (c.lo, c.hi, c.old_owners, c.new_owners) for c in replicated
        ]

    def test_diff_replica_ownership_marks_only_changed_successor_lists(self):
        from repro.cache.hashring import _hash, diff_replica_ownership, range_contains

        old = ConsistentHashRing(["a", "b", "c"], virtual_nodes=30)
        new = old.copy()
        new.add_node("d")
        changes = diff_replica_ownership(old, new, 2)
        for i in range(300):
            key = f"key-{i}"
            point = _hash(key)
            in_changed = any(range_contains(c.lo, c.hi, point) for c in changes)
            assert in_changed == (old.successors(key, 2) != new.successors(key, 2)), key
