"""The budgeted maintenance plane and the digest-based repair wire cost.

Four concerns:

* unit behaviour of :class:`MaintenanceBudget` / :class:`ChunkedJob` /
  :class:`MaintenancePlane` on a manual clock — window refills, post-hoc
  overdraw, deferrals, failed jobs not poisoning the queue;
* **exact budget accounting**: the op/byte totals the plane reports are the
  precise sum of every chunk's charge, match the budget's own ledger, and a
  budgeted repair re-replicates exactly what a synchronous sweep would;
* **wire cost of repair** (pinned per transport via the transports'
  ``op_counts``): a clean sweep is N ``key_digest`` round trips and nothing
  else — no ``keys``, no ``keys_in_range``, no entry pages — and even a
  dirty sweep never falls back to full ``keys`` inventories;
* **foreground isolation**: a wedged repair chunk (an ``extract_entries``
  RPC stuck server-side) must not stall foreground lookups on the
  event-loop engine — maintenance ops detour to the worker pool while the
  hot path keeps answering.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cache.cluster import CacheCluster
from repro.cache.maintenance import ChunkedJob, MaintenanceBudget, MaintenancePlane
from repro.cache.membership import ClusterMembership
from repro.clock import ManualClock
from repro.deployment import TxCacheDeployment
from repro.interval import Interval
from tests.helpers import transports_under_test

# ----------------------------------------------------------------------
# Budget / job / plane units
# ----------------------------------------------------------------------
def test_budget_refills_per_interval_on_the_injected_clock():
    clock = ManualClock()
    budget = MaintenanceBudget(
        clock=clock, ops_per_interval=2, bytes_per_interval=100, interval_seconds=1.0
    )
    assert budget.allows()
    budget.charge(2, 10)
    assert not budget.allows()  # ops exhausted
    clock.advance(0.5)
    assert not budget.allows()  # window not over yet
    clock.advance(0.5)
    assert budget.allows()  # refilled
    assert budget.windows == 2
    budget.charge(1, 500)  # single chunk may overdraw bytes post-hoc
    assert not budget.allows()
    assert (budget.consumed_ops, budget.consumed_bytes) == (3, 510)


def test_budget_rejects_degenerate_parameters():
    for kwargs in (
        {"ops_per_interval": 0},
        {"bytes_per_interval": 0},
        {"interval_seconds": 0.0},
    ):
        with pytest.raises(ValueError):
            MaintenanceBudget(clock=ManualClock(), **kwargs)


def test_chunked_job_steps_chunks_and_captures_the_result():
    def chunks():
        yield (1, 10)
        yield (2, 20)
        return "done"

    job = ChunkedJob("demo", chunks())
    assert job.step() == (False, 1, 10)
    assert job.step() == (False, 2, 20)
    done, ops, nbytes = job.step()
    assert done and (ops, nbytes) == (0, 0)
    assert job.result == "done"


def test_plane_pump_defers_on_an_exhausted_window_and_resumes():
    clock = ManualClock()
    budget = MaintenanceBudget(
        clock=clock, ops_per_interval=2, bytes_per_interval=1 << 20,
        interval_seconds=1.0,
    )
    plane = MaintenancePlane(budget=budget)

    def chunks():
        for _ in range(6):
            yield (1, 1)
        return "finished"

    job = plane.submit(ChunkedJob("six", chunks()))
    assert plane.pump() == 2  # window pays for 2 ops, then a deferral
    assert plane.stats.budget_deferrals == 1
    assert not plane.idle
    ran = 0
    while not plane.idle:
        clock.advance(1.0)
        ran += plane.pump()
    assert job.result == "finished"
    assert plane.stats.jobs_completed == 1
    # Exact accounting: every chunk's charge is in both ledgers.
    assert plane.stats.ops_charged == budget.consumed_ops == 6
    assert plane.stats.bytes_charged == budget.consumed_bytes == 6
    assert plane.stats.chunks_run == 2 + ran


def test_a_raising_job_fails_without_poisoning_the_queue():
    plane = MaintenancePlane()

    def bad():
        yield (1, 1)
        raise RuntimeError("boom")

    def good():
        yield (1, 1)
        return 7

    plane.submit(ChunkedJob("bad", bad()))
    survivor = plane.submit(ChunkedJob("good", good()))
    plane.drain()
    assert plane.stats.jobs_failed == 1
    assert plane.stats.jobs_completed == 1
    assert survivor.result == 7
    assert plane.idle


# ----------------------------------------------------------------------
# Repair wire cost, pinned via transport op counters
# ----------------------------------------------------------------------
def _sum_op_counts(cluster: CacheCluster) -> dict:
    totals: dict = {}
    for transport in cluster.transports.values():
        for op, count in transport.op_counts.items():
            totals[op] = totals.get(op, 0) + count
    return totals


def _reset_op_counts(cluster: CacheCluster) -> None:
    for transport in cluster.transports.values():
        transport.op_counts.clear()


@pytest.mark.parametrize("transport", transports_under_test())
def test_clean_repair_costs_exactly_n_digest_rpcs(transport):
    with TxCacheDeployment(
        cache_nodes=3, transport=transport, replication_factor=2
    ) as deployment:
        cluster = deployment.cache
        for i in range(30):
            cluster.put(f"key{i}", f"value{i}", Interval(1, None))
        _reset_op_counts(cluster)
        installed = deployment.membership.repair()
        totals = _sum_op_counts(cluster)
        assert installed == 0
        assert totals.get("key_digest") == 3  # one per node, nothing else
        assert totals.get("keys", 0) == 0
        assert totals.get("keys_in_range", 0) == 0
        assert totals.get("extract_entries", 0) == 0
        assert totals.get("install_entries", 0) == 0
        assert deployment.membership.stats.repair_arcs_dirty == 0


@pytest.mark.parametrize("transport", transports_under_test())
def test_dirty_repair_fetches_keys_only_for_divergent_arcs(transport):
    with TxCacheDeployment(
        cache_nodes=3, transport=transport, replication_factor=2
    ) as deployment:
        cluster = deployment.cache
        for i in range(30):
            cluster.put(f"key{i}", f"value{i}", Interval(1, None))
        victim = "cache1"
        lost = cluster.node_keys(victim)[:10]
        cluster.discard_keys(victim, lost)
        _reset_op_counts(cluster)
        stats = deployment.membership.stats
        installed = deployment.membership.repair()
        totals = _sum_op_counts(cluster)
        assert installed == len(lost)
        assert totals.get("key_digest") == 3
        # Key lists were fetched for dirty arcs — but never via the
        # whole-store ``keys`` inventory the old sweep used.
        assert totals.get("keys_in_range", 0) >= 1
        assert totals.get("keys", 0) == 0
        assert stats.repair_arcs_dirty >= 1
        assert stats.repair_arcs_clean >= 1
        assert sorted(cluster.node_keys(victim)) == sorted(
            set(cluster.node_keys(victim)) | set(lost)
        )


# ----------------------------------------------------------------------
# Budgeted repair: exact accounting, parity with the synchronous sweep
# ----------------------------------------------------------------------
def _damaged_cluster(clock: ManualClock):
    cluster = CacheCluster(node_count=3, clock=clock, replication_factor=2)
    for i in range(40):
        cluster.put(f"key{i}", f"value{i}", Interval(1, None))
    victim = "cache2"
    lost = cluster.node_keys(victim)[: len(cluster.node_keys(victim)) // 2]
    cluster.discard_keys(victim, lost)
    return cluster, victim, lost


def test_budgeted_repair_matches_the_synchronous_sweep_exactly():
    sync_clock = ManualClock()
    sync_cluster, _, sync_lost = _damaged_cluster(sync_clock)
    sync_membership = ClusterMembership(sync_cluster, chunk_size=4)
    sync_installed = sync_membership.repair()
    assert sync_installed == len(sync_lost)

    clock = ManualClock()
    cluster, victim, lost = _damaged_cluster(clock)
    budget = MaintenanceBudget(
        clock=clock, ops_per_interval=2, bytes_per_interval=1 << 20,
        interval_seconds=1.0,
    )
    plane = MaintenancePlane(budget=budget)
    membership = ClusterMembership(cluster, chunk_size=4, plane=plane)
    assert membership.repair() == 0  # submitted, not yet run
    assert plane.pending_jobs == 1
    pumps = 0
    while not plane.idle:
        plane.pump()
        clock.advance(1.0)
        pumps += 1
        assert pumps < 1000, "budgeted repair failed to converge"
    # The budget throttled the sweep across many windows ...
    assert plane.stats.budget_deferrals > 0
    assert budget.windows > 2
    # ... the ledgers agree to the op ...
    assert plane.stats.ops_charged == budget.consumed_ops
    assert plane.stats.bytes_charged == budget.consumed_bytes
    # ... and the outcome is identical to the synchronous sweep.
    assert membership.stats.entries_re_replicated == sync_installed
    assert sorted(cluster.node_keys(victim)) == sorted(
        sync_cluster.node_keys(victim)
    )
    assert membership.stats.repair_key_fetches == sync_membership.stats.repair_key_fetches
    assert membership.stats.repair_arcs_dirty == sync_membership.stats.repair_arcs_dirty


def test_auto_repair_after_crash_goes_through_the_plane_when_attached():
    clock = ManualClock()
    deployment = TxCacheDeployment(
        clock=clock, cache_nodes=3, replication_factor=2,
        background_maintenance=True, maintenance_ops_per_interval=4,
    )
    cluster = deployment.cache
    for i in range(20):
        cluster.put(f"key{i}", f"value{i}", Interval(1, None))
    cluster.fail_node("cache1")  # inprocess: evicts immediately, auto-repair
    plane = deployment.membership.plane
    assert plane.pending_jobs == 1  # queued as a background job, not swept
    while not plane.idle:
        deployment.housekeeping()  # housekeeping is the pump
        deployment.advance(1.0)
    assert deployment.membership.stats.repairs == 1
    # Every surviving key is back at full replication: both survivors hold it.
    for node in ("cache0", "cache2"):
        held = set(cluster.node_keys(node))
        for key in held:
            owners = cluster.ring.successors(key, 2)
            if node in owners:
                for other in owners:
                    assert key in set(cluster.node_keys(other))


# ----------------------------------------------------------------------
# Foreground isolation: a wedged chunk never stalls lookups
# ----------------------------------------------------------------------
def test_wedged_repair_chunk_does_not_stall_foreground_lookups():
    """An extract page stuck server-side must not block the hot path.

    The event-loop engine detours maintenance ops (``extract_entries``,
    ``key_digest``, ...) to its worker pool, so one wedged repair chunk
    occupies one worker while lookups keep being answered.  The wedge is
    injected server-side *without* holding the server lock (a slow disk or
    allocation stall, not a lock holder).
    """
    with TxCacheDeployment(
        cache_nodes=2, transport="socket-pipelined", replication_factor=2
    ) as deployment:
        cluster = deployment.cache
        for i in range(20):
            cluster.put(f"key{i}", f"value{i}", Interval(1, None))
        victim = "cache0"
        cluster.discard_keys(victim, cluster.node_keys(victim)[:5])
        plane = MaintenancePlane()
        deployment.membership.plane = plane
        deployment.membership.repair()

        wedge_seconds = 0.8
        server = cluster.servers["cache1"]  # a repair source
        original = server.extract_entries

        def wedged(cursor=None, limit=64):
            time.sleep(wedge_seconds)  # lock-free stall, then the real page
            return original(cursor, limit)

        server.extract_entries = wedged

        pump_thread = threading.Thread(target=plane.drain)
        pump_thread.start()
        try:
            # Foreground lookups throughout the wedge window.
            deadline = time.monotonic() + wedge_seconds
            latencies = []
            while time.monotonic() < deadline:
                started = time.perf_counter()
                cluster.probe("key0", 0, 10)
                latencies.append(time.perf_counter() - started)
            assert len(latencies) > 10, "foreground starved during the wedge"
            # No lookup waited anywhere near the wedge duration.
            assert max(latencies) < wedge_seconds / 2
        finally:
            pump_thread.join(timeout=30)
        assert plane.idle
