"""Binary wire codec: round-trip properties, malformed-frame safety,
codec negotiation, the read lease, and write coalescing.

The codec tests are property-based (Hypothesis): whatever the cache layer
puts in a response must survive encode -> decode unchanged, and *no* byte
stream — truncated, mutated, or garbage — may raise anything other than
:class:`~repro.comm.wire.WireDecodeError` out of the decoder.  The reactor
depends on that contract: a malformed frame becomes an error response, never
a crashed event loop.

The negotiation tests pin the mixed-version story: a binary client dialing
a pickle-only server fails fast with :class:`WireCodecMismatchError` (not
the unreachable error failure-aware routing reacts to), and pickle/legacy
clients keep working against binary servers unchanged.
"""

from __future__ import annotations

import socket
import threading

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.cache.cluster import CacheCluster
from repro.cache.entry import EntryRecord, LookupRequest, LookupResult
from repro.cache.netserver import (
    CacheNodeUnreachableError,
    CacheServerProcess,
    SocketTransport,
    WireCodecMismatchError,
)
from repro.cache.server import CacheServer
from repro.clock import ManualClock
from repro.comm import wire
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval, IntervalSet
from tests.helpers import wire_codecs_under_test

WIRE_CODECS = wire_codecs_under_test()


def make_server(name="node"):
    return CacheServer(name=name, capacity_bytes=4 * 1024 * 1024, clock=ManualClock())


def round_trip(value):
    return wire.decode_binary_body(bytes(wire.encode_binary_body(value)))


# ----------------------------------------------------------------------
# Hypothesis strategies over wire-crossing data
# ----------------------------------------------------------------------
# Timestamps are logical commit counters: non-negative, far below 2**63
# (the codec packs interval bounds as little-endian i64).
timestamps = st.integers(min_value=0, max_value=2**48)

scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False)
    | st.text(max_size=40)  # includes surrogates -> pickle fallback path
    | st.binary(max_size=40)
)

values = st.recursive(
    scalars,
    lambda children: (
        st.lists(children, max_size=4)
        | st.tuples(children, children)
        | st.dictionaries(st.text(max_size=12) | st.integers(), children, max_size=4)
        | st.frozensets(st.integers() | st.text(max_size=8), max_size=4)
    ),
    max_leaves=16,
)

intervals = st.builds(
    lambda lo, span: Interval(lo, None if span is None else lo + span),
    timestamps,
    st.none() | st.integers(min_value=0, max_value=2**20),
)

tags = st.frozensets(
    st.builds(
        InvalidationTag,
        st.sampled_from(["users", "state", "items"]),
        st.none() | st.sampled_from(["id", "region"]),
        st.none() | st.integers(min_value=-5, max_value=5000) | st.text(max_size=8),
    ),
    max_size=4,
)

keys = st.text(max_size=300)

lookup_requests = st.builds(
    LookupRequest, keys, timestamps, timestamps, st.booleans()
)

entry_records = st.builds(EntryRecord, keys, values, intervals, tags)


@st.composite
def lookup_results(draw):
    hit = draw(st.booleans())
    key = draw(keys)
    if not hit:
        return LookupResult(
            False,
            key,
            key_ever_stored=draw(st.booleans()),
            fresh_version_exists=draw(st.booleans()),
            degraded=draw(st.booleans()),
        )
    interval = draw(intervals)
    # raw_interval is None, the same object (truncated entries), or distinct.
    raw_kind = draw(st.sampled_from(["none", "same", "other"]))
    if raw_kind == "none":
        raw_interval = None
    elif raw_kind == "same":
        raw_interval = interval
    else:
        raw_interval = draw(intervals)
    return LookupResult(
        True,
        key,
        value=draw(values),
        interval=interval,
        raw_interval=raw_interval,
        tags=draw(tags),
        key_ever_stored=True,
        fresh_version_exists=draw(st.booleans()),
    )


def assert_results_equal(actual, expected):
    assert actual.hit == expected.hit
    assert actual.key == expected.key
    assert actual.value == expected.value
    assert actual.interval == expected.interval
    assert actual.raw_interval == expected.raw_interval
    assert actual.tags == expected.tags
    assert actual.key_ever_stored == expected.key_ever_stored
    assert actual.fresh_version_exists == expected.fresh_version_exists
    assert actual.degraded == expected.degraded


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
@given(values)
@settings(deadline=None)
def test_arbitrary_values_round_trip(value):
    assert round_trip(value) == value


@given(intervals)
@settings(deadline=None)
def test_intervals_round_trip(interval):
    decoded = round_trip(interval)
    assert decoded == interval
    assert decoded.lo == interval.lo and decoded.hi == interval.hi


@given(st.lists(intervals, max_size=4))
@settings(deadline=None)
def test_interval_sets_round_trip(members):
    interval_set = IntervalSet(members)
    decoded = round_trip(interval_set)
    assert isinstance(decoded, IntervalSet)
    assert decoded.intervals == interval_set.intervals


@given(lookup_requests)
@settings(deadline=None)
def test_lookup_requests_round_trip(request):
    assert round_trip(request) == request


@given(entry_records)
@settings(deadline=None)
def test_entry_records_round_trip(record):
    decoded = round_trip(record)
    assert decoded == record


@given(lookup_results())
@settings(deadline=None)
def test_lookup_results_round_trip(result):
    assert_results_equal(round_trip(result), result)


@given(st.lists(lookup_requests, min_size=1, max_size=6))
@settings(deadline=None)
def test_multi_lookup_request_payloads_round_trip(requests):
    payload = (requests,)
    assert round_trip(payload) == payload


@given(keys, timestamps, timestamps, st.sampled_from(["lookup", "probe"]))
@settings(deadline=None)
def test_single_key_request_args_round_trip(key, lo, span, op):
    """The fixed lookup/probe request layout is exact for every key and
    every 64-bit bound (oversized keys take the u32 length escape)."""
    args = (key, lo, lo + span)
    opcode = wire.OPCODES[op]
    body = bytes(wire.encode_binary_args(opcode, args))
    assert wire.decode_binary_args(opcode, body) == args


def test_single_key_request_args_fall_back_to_tagged_bodies():
    """Arguments the packed layout cannot carry (bounds beyond 64 bits,
    odd arities, non-str keys) still round-trip via the tagged fallback."""
    opcode = wire.OPCODES["lookup"]
    for args in [
        ("k", 0, 2**70),
        ("k", -(2**70), 1),
        ("k", 0, None),
        (b"raw-bytes-key", 0, 1),
        ("k", 0),
        ("k", 0, 1, 2),
    ]:
        body = bytes(wire.encode_binary_args(opcode, args))
        assert body[0] == 0  # tagged-body marker
        assert wire.decode_binary_args(opcode, body) == args
    # Non-single-key ops use the plain tagged body, no marker byte.
    payload = (["a", "b"],)
    body = bytes(wire.encode_binary_args(wire.OPCODES["multi_lookup"], payload))
    assert body == bytes(wire.encode_binary_body(payload))
    assert wire.decode_binary_args(wire.OPCODES["multi_lookup"], body) == payload


@given(keys, timestamps, timestamps, st.data())
@settings(deadline=None, max_examples=60)
def test_malformed_request_args_never_raise_anything_else(key, lo, span, data):
    opcode = wire.OPCODES["lookup"]
    body = bytearray(wire.encode_binary_args(opcode, (key, lo, lo + span)))
    if data.draw(st.booleans()):
        body = body[: data.draw(st.integers(0, max(0, len(body) - 1)))]
    else:
        index = data.draw(st.integers(0, len(body) - 1))
        body[index] ^= data.draw(st.integers(1, 255))
    try:
        wire.decode_binary_args(opcode, bytes(body))
    except wire.WireDecodeError:
        pass  # the only acceptable exception


@given(keys, values, intervals, tags)
@settings(deadline=None)
def test_put_request_args_round_trip_packed(key, value, interval, tag_set):
    """``put``'s fixed layout is exact for every key, value, interval, and
    tag set the cache layer can send (the value rides the tagged codec
    inside the packed frame, so arbitrary values still round-trip)."""
    args = (key, value, interval, tag_set)
    opcode = wire.OPCODES["put"]
    body = bytes(wire.encode_binary_args(opcode, args))
    assert body[0] == 1  # packed-layout marker
    assert wire.decode_binary_args(opcode, body) == args


def test_put_request_args_fall_back_to_tagged_bodies():
    """Arguments the packed put layout cannot carry (non-str key, a plain
    set instead of a frozenset, a missing interval, wrong arity) still
    round-trip via the tagged fallback."""
    opcode = wire.OPCODES["put"]
    for args in [
        (b"raw-key", 1, Interval(0), frozenset()),
        ("k", 1, None, frozenset()),
        ("k", 1, Interval(0), {InvalidationTag("t")}),  # set, not frozenset
        ("k", 1, Interval(0)),
        ("k",),
    ]:
        body = bytes(wire.encode_binary_args(opcode, args))
        assert body[0] == 0  # tagged-body marker
        assert wire.decode_binary_args(opcode, body) == args


@given(keys, intervals, tags, st.data())
@settings(deadline=None, max_examples=60)
def test_malformed_put_args_never_raise_anything_else(key, interval, tag_set, data):
    opcode = wire.OPCODES["put"]
    args = (key, {"row": 1}, interval, tag_set)
    body = bytearray(wire.encode_binary_args(opcode, args))
    if data.draw(st.booleans()):
        body = body[: data.draw(st.integers(0, max(0, len(body) - 1)))]
    else:
        index = data.draw(st.integers(0, len(body) - 1))
        body[index] ^= data.draw(st.integers(1, 255))
    try:
        wire.decode_binary_args(opcode, bytes(body))
    except wire.WireDecodeError:
        pass  # the only acceptable exception


def test_put_trailing_bytes_are_rejected():
    opcode = wire.OPCODES["put"]
    body = bytes(
        wire.encode_binary_args(opcode, ("k", 1, Interval(0, 5), frozenset()))
    )
    with pytest.raises(wire.WireDecodeError):
        wire.decode_binary_args(opcode, body + b"\x00")


def test_interval_object_sharing_survives_the_codec():
    """Truncated entries reuse one Interval as effective *and* raw interval;
    the decoder must reconstruct the sharing (transport parity compares
    canonical re-pickles, where sharing changes the bytes)."""
    shared = Interval(3, 9)
    result = LookupResult(True, "k", value=1, interval=shared, raw_interval=shared)
    decoded = round_trip(result)
    assert decoded.interval is decoded.raw_interval
    distinct = LookupResult(
        True, "k", value=1, interval=Interval(3, 9), raw_interval=Interval(2, None)
    )
    decoded = round_trip(distinct)
    assert decoded.interval is not decoded.raw_interval


# ----------------------------------------------------------------------
# Malformed frames: WireDecodeError or nothing
# ----------------------------------------------------------------------
@given(lookup_results(), st.data())
@settings(deadline=None, max_examples=60)
def test_truncated_bodies_never_raise_anything_else(result, data):
    body = bytes(wire.encode_binary_body(("multi_lookup", result)))
    cut = data.draw(st.integers(min_value=0, max_value=max(0, len(body) - 1)))
    try:
        wire.decode_binary_body(body[:cut])
    except wire.WireDecodeError:
        pass  # the only acceptable exception


@given(lookup_results(), st.data())
@settings(deadline=None, max_examples=60)
def test_mutated_bodies_never_raise_anything_else(result, data):
    body = bytearray(wire.encode_binary_body(result))
    index = data.draw(st.integers(min_value=0, max_value=len(body) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    body[index] ^= flip
    try:
        wire.decode_binary_body(bytes(body))
    except wire.WireDecodeError:
        pass  # a mutation may still decode by luck; it must never crash


@given(st.binary(max_size=64))
@settings(deadline=None, max_examples=60)
def test_random_garbage_never_raises_anything_else(blob):
    try:
        wire.decode_binary_body(blob)
    except wire.WireDecodeError:
        pass


def test_trailing_bytes_are_rejected():
    body = bytes(wire.encode_binary_body(42)) + b"\x00"
    with pytest.raises(wire.WireDecodeError):
        wire.decode_binary_body(body)


def test_empty_body_is_rejected():
    with pytest.raises(wire.WireDecodeError):
        wire.decode_binary_body(b"")


def test_decode_error_is_a_value_error():
    # The dispatch layer catches Exception; this pins the public contract
    # that WireDecodeError is an ordinary (catchable) error type.
    assert issubclass(wire.WireDecodeError, ValueError)


# ----------------------------------------------------------------------
# Reactor safety: garbage binary frames against a live server
# ----------------------------------------------------------------------
def _dial_binary(address):
    sock = socket.create_connection(address)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.sendall(bytes([wire.MUX_MAGIC_BINARY]))
    reply = wire.recv_exactly(sock, 1)
    assert reply[0] == wire.BINARY_ACK
    return sock


def _read_mux_response(sock):
    header = wire.recv_exactly(sock, wire.MUX_HEADER.size)
    request_id, opcode, length = wire.MUX_HEADER.unpack(header)
    body = wire.recv_exactly(sock, length)
    if opcode & wire.FLAG_BIN:
        value = wire.decode_binary_body(body)
    else:
        value = wire.decode_body(opcode & wire.FLAG_OOB, body)
    return request_id, opcode & wire.OPCODE_MASK, value


@pytest.mark.parametrize("style", ["threaded", "eventloop"])
def test_garbage_binary_body_yields_error_response_not_a_dead_server(style):
    """A FLAG_BIN frame with an undecodable body must produce OP_ERR and
    leave the connection (and the server) fully functional."""
    with CacheServerProcess(make_server(), style=style, wire_codec="binary") as process:
        sock = _dial_binary(process.address)
        try:
            garbage = b"\xff\xfe\xfd\xfc"
            frame = wire.MUX_HEADER.pack(
                7, wire.OPCODES["lookup"] | wire.FLAG_BIN, len(garbage)
            )
            sock.sendall(frame + garbage)
            request_id, status, value = _read_mux_response(sock)
            assert request_id == 7
            assert status == (wire.OP_ERR & wire.OPCODE_MASK)
            assert "WireDecodeError" in value
            # Same connection, next request: still served.
            buffers = wire.encode_binary_request_frame(
                8, wire.OPCODES["probe"], ("k", 0, 5)
            )
            sock.sendall(b"".join(bytes(b) for b in buffers))
            request_id, status, value = _read_mux_response(sock)
            assert request_id == 8
            assert status == (wire.OP_OK & wire.OPCODE_MASK)
            assert value is False
        finally:
            sock.close()


@pytest.mark.parametrize("style", ["threaded", "eventloop"])
def test_binary_and_pickle_frames_interleave_on_one_connection(style):
    """The server keeps no per-connection codec state: it answers in the
    codec each request arrived in, even alternating on one socket."""
    with CacheServerProcess(make_server(), style=style, wire_codec="binary") as process:
        sock = _dial_binary(process.address)
        try:
            binary = wire.encode_binary_request_frame(
                1, wire.OPCODES["probe"], ("k", 0, 5)
            )
            pickled = wire.encode_mux_frame(2, wire.OPCODES["keys"], ())
            sock.sendall(
                b"".join(bytes(b) for b in binary)
                + b"".join(bytes(b) for b in pickled)
            )
            responses = {}
            for _ in range(2):
                request_id, status, value = _read_mux_response(sock)
                assert status == (wire.OP_OK & wire.OPCODE_MASK)
                responses[request_id] = value
            assert responses == {1: False, 2: []}
        finally:
            sock.close()


# ----------------------------------------------------------------------
# Codec negotiation: mixed-version deployments fail fast
# ----------------------------------------------------------------------
@pytest.mark.parametrize("style", ["threaded", "eventloop"])
def test_binary_client_against_pickle_only_server_fails_fast(style):
    """The NAK path: a distinct, descriptive error — not 'unreachable',
    which would make failure-aware routing degrade on a misconfiguration."""
    with CacheServerProcess(make_server(), style=style, wire_codec="pickle") as process:
        # The transport dials (and negotiates) eagerly at construction.
        with pytest.raises(WireCodecMismatchError, match="refused the binary"):
            SocketTransport(process.address, pipelined=True, wire_codec="binary")
        assert not isinstance(WireCodecMismatchError("x"), CacheNodeUnreachableError)


def test_binary_client_against_server_that_hangs_up_fails_fast():
    """An old server that closes on the unknown 0xA8 magic byte (EOF before
    any ACK/NAK) must also surface as a codec mismatch."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    address = listener.getsockname()

    def accept_and_close():
        conn, _ = listener.accept()
        conn.recv(1)
        conn.close()

    acceptor = threading.Thread(target=accept_and_close)
    acceptor.start()
    try:
        with pytest.raises(WireCodecMismatchError, match="handshake"):
            SocketTransport(address, pipelined=True, wire_codec="binary")
    finally:
        acceptor.join(timeout=10)
        listener.close()


@pytest.mark.parametrize("style", ["threaded", "eventloop"])
def test_pickle_and_legacy_clients_still_work_against_binary_servers(style):
    """Upgrading the server first must not strand old clients: the pickle
    mux framing and the legacy pooled framing are accepted unchanged."""
    with CacheServerProcess(make_server(), style=style, wire_codec="binary") as process:
        pickled = SocketTransport(process.address, pipelined=True, wire_codec="pickle")
        legacy = SocketTransport(process.address, pipelined=False)
        try:
            pickled.put("a", 1, Interval(0))
            legacy.put("b", 2, Interval(0))
            assert pickled.lookup("b", 0, 5).value == 2
            assert legacy.lookup("a", 0, 5).value == 1
        finally:
            pickled.close()
            legacy.close()


@pytest.mark.parametrize("codec", WIRE_CODECS)
@pytest.mark.parametrize("style", ["threaded", "eventloop"])
def test_matched_codec_serves_traffic(style, codec):
    with CacheServerProcess(make_server(), style=style, wire_codec=codec) as process:
        transport = SocketTransport(process.address, pipelined=True, wire_codec=codec)
        try:
            assert transport.probe("k", 0, 5) is False
            transport.put("k", {"v": 1}, Interval(0), frozenset({InvalidationTag("t")}))
            result = transport.lookup("k", 0, 5)
            assert result.hit and result.value == {"v": 1}
            assert result.tags == frozenset({InvalidationTag("t")})
            results = transport.multi_lookup([LookupRequest("k", 0, 5)])
            assert results[0].hit
            # Maintenance ops ride the pickle fallback under both codecs.
            assert transport.keys() == ["k"]
        finally:
            transport.close()


# ----------------------------------------------------------------------
# REPRO_WIRE_CODEC environment knob
# ----------------------------------------------------------------------
def test_codec_defaults_to_binary(monkeypatch):
    monkeypatch.delenv("REPRO_WIRE_CODEC", raising=False)
    assert wire.default_wire_codec() == "binary"
    assert wire.resolve_wire_codec(None) == "binary"


def test_env_knob_switches_the_default(monkeypatch):
    monkeypatch.setenv("REPRO_WIRE_CODEC", "pickle")
    assert wire.default_wire_codec() == "pickle"
    assert wire.resolve_wire_codec(None) == "pickle"
    # An explicit argument still wins over the environment.
    assert wire.resolve_wire_codec("binary") == "binary"
    assert wire_codecs_under_test() == ["pickle"]


def test_env_knob_reaches_server_and_transport(monkeypatch):
    monkeypatch.setenv("REPRO_WIRE_CODEC", "pickle")
    with CacheServerProcess(make_server(), style="eventloop") as process:
        assert process.wire_codec == "pickle"
        transport = SocketTransport(process.address, pipelined=True)
        try:
            assert transport.wire_codec == "pickle"
            transport.put("k", 1, Interval(0))
            assert transport.lookup("k", 0, 5).hit
        finally:
            transport.close()


def test_invalid_codec_is_rejected():
    with pytest.raises(ValueError, match="wire codec"):
        wire.resolve_wire_codec("msgpack")


# ----------------------------------------------------------------------
# Read lease
# ----------------------------------------------------------------------
@pytest.mark.parametrize("codec", WIRE_CODECS)
@pytest.mark.parametrize("read_lease", [False, True])
def test_concurrent_callers_under_lease_and_rendezvous(read_lease, codec):
    """Many threads hammering one mux connection get their own answers back
    under both reader arrangements (lease handoff and reader thread)."""
    with CacheServerProcess(make_server(), style="eventloop", wire_codec=codec) as process:
        transport = SocketTransport(
            process.address,
            pipelined=True,
            wire_codec=codec,
            mux_read_lease=read_lease,
        )
        try:
            for i in range(16):
                transport.put(f"k{i}", i, Interval(0))
            errors = []

            def worker(start):
                try:
                    for i in range(start, start + 50):
                        index = i % 16
                        result = transport.lookup(f"k{index}", 0, 5)
                        assert result.hit and result.value == index
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i * 50,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
            assert errors == []
        finally:
            transport.close()


@pytest.mark.parametrize("read_lease", [False, True])
def test_timeout_poisons_connection_under_both_reader_arrangements(read_lease):
    server = make_server()
    release = threading.Event()
    original = server.keys

    def stalled_keys():
        assert release.wait(timeout=30)
        return original()

    server.keys = stalled_keys
    with CacheServerProcess(server, style="eventloop") as process:
        transport = SocketTransport(
            process.address,
            pipelined=True,
            timeout_seconds=0.3,
            mux_read_lease=read_lease,
        )
        try:
            with pytest.raises(CacheNodeUnreachableError, match="timed out"):
                transport.keys()
            release.set()
            # Poisoned connection discarded; the next call re-dials.
            assert transport.probe("k", 0, 5) is False
        finally:
            release.set()
            transport.close()


# ----------------------------------------------------------------------
# Write coalescing
# ----------------------------------------------------------------------
def _pump_pings(process, count):
    """Send ``count`` back-to-back mux pings in one segment, read every
    response back."""
    sock = socket.create_connection(process.address)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = bytearray([wire.MUX_MAGIC])
        for request_id in range(count):
            for buffer in wire.encode_mux_frame(request_id, wire.OPCODES["ping"], ()):
                stream += bytes(buffer)
        sock.sendall(bytes(stream))
        seen = set()
        for _ in range(count):
            request_id, status, value = _read_mux_response(sock)
            assert status == (wire.OP_OK & wire.OPCODE_MASK)
            assert value == "node"
            seen.add(request_id)
        assert seen == set(range(count))
    finally:
        sock.close()


def _sendmsg_calls_for_burst(write_coalescing, burst):
    # The counter is read *after* shutdown joins the loop thread: the loop
    # increments it after a client may already have seen the response, so a
    # live read races by one either way.
    with CacheServerProcess(
        make_server(), style="eventloop", write_coalescing=write_coalescing
    ) as process:
        _pump_pings(process, burst)
    return process.sendmsg_calls


def test_write_coalescing_batches_responses_into_fewer_sendmsg_calls():
    """Ping is served inline on the loop thread, so a burst arriving in one
    read event produces one *coalesced* flush — against one sendmsg per
    response with coalescing off."""
    burst = 8
    uncoalesced = _sendmsg_calls_for_burst(False, burst)
    coalesced = _sendmsg_calls_for_burst(True, burst)
    assert uncoalesced == burst
    assert coalesced < uncoalesced


# ----------------------------------------------------------------------
# Cluster-level codec matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("codec", WIRE_CODECS)
def test_cluster_serves_traffic_under_each_codec(codec):
    cluster = CacheCluster(
        node_count=2,
        capacity_bytes_per_node=1024 * 1024,
        clock=ManualClock(),
        transport="socket-pipelined",
        wire_codec=codec,
    )
    try:
        assert cluster.wire_codec == codec
        for i in range(20):
            cluster.put(f"key-{i}", {"row": i}, Interval(0))
        for i in range(20):
            result = cluster.lookup(f"key-{i}", 0, 5)
            assert result.hit and result.value == {"row": i}
    finally:
        cluster.close()


# ----------------------------------------------------------------------
# invalidate_tags: the wire-delivered invalidation stream's batch op
# ----------------------------------------------------------------------
def _invalidation_batch():
    return [
        (4, (InvalidationTag.key("items", "id", 1),)),
        (6, ()),  # a watermark-only advance rides the same batch
        (9, (InvalidationTag.wildcard("items"), InvalidationTag.key("u", "id", 2))),
    ]


def test_invalidate_tags_args_round_trip_binary():
    opcode = wire.OPCODES["invalidate_tags"]
    args = (_invalidation_batch(),)
    body = wire.encode_binary_args(opcode, args)
    assert wire.decode_binary_args(opcode, bytes(body)) == args


def test_invalidate_tags_is_a_binary_op_on_both_framings():
    # The batch is hot-path data (tags truncate entries), so it must ride
    # the binary codec on binary connections; the opcode exists on the
    # legacy framing too (by name), which test_procnode's parity suite
    # exercises end to end.
    assert "invalidate_tags" in wire.BINARY_OPS
    assert wire.OPCODES["invalidate_tags"] in wire.BINARY_OPCODES


@pytest.mark.parametrize("codec", WIRE_CODECS)
def test_invalidate_tags_truncates_over_a_live_connection(codec):
    from repro.comm.multicast import InvalidationMessage

    server = make_server()
    server.put("k", {"v": 1}, Interval(2), frozenset({InvalidationTag.key("items", "id", 1)}))
    with CacheServerProcess(server, style="eventloop", wire_codec=codec) as process:
        transport = SocketTransport(process.address, pipelined=True, wire_codec=codec)
        try:
            transport.process_invalidations(
                [
                    InvalidationMessage(
                        timestamp=ts, tags=tuple(tags)
                    )
                    for ts, tags in _invalidation_batch()
                ]
            )
        finally:
            transport.close()
    assert server.last_invalidation_timestamp == 9
    (entry,) = server.versions_of("k")
    assert not entry.still_valid
    # The first matching invalidation after the entry's birth truncates it
    # (timestamp 4, the exact-tag message), not the later wildcard.
    assert entry.interval.hi == 4
    assert server.stats.invalidation_messages == 3


# ----------------------------------------------------------------------
# EncodeScratch: the multi-lookup batch path's reusable encode buffer
# ----------------------------------------------------------------------
def _batch_args(size=6):
    return ([LookupRequest(f"key-{i}", 0, 40) for i in range(size)],)


def test_encode_scratch_reuses_one_buffer_across_requests():
    scratch = wire.EncodeScratch()
    opcode = wire.OPCODES["multi_lookup"]
    for request_id in range(200):
        header, body = scratch.encode_request_frame(request_id, opcode, _batch_args())
        rid, flagged, length = wire.MUX_HEADER.unpack(bytes(header))
        assert rid == request_id
        assert flagged == opcode | wire.FLAG_BIN
        assert length == len(body)
        assert wire.decode_binary_args(opcode, bytes(body)) == _batch_args()
        body.release()  # the send path releases before the next encode
    assert scratch.allocations == 1  # the no-new-allocations claim


def test_encode_scratch_replaces_the_buffer_past_its_limit():
    scratch = wire.EncodeScratch(limit_bytes=256)
    opcode = wire.OPCODES["multi_lookup"]
    for request_id in range(50):
        _header, body = scratch.encode_request_frame(request_id, opcode, _batch_args())
        body.release()
    # The buffer grew past the cap and was replaced wholesale (not
    # truncated in place, which would shrink the allocation every frame).
    assert scratch.allocations > 1
    assert len(scratch.buffer) <= 256 + 1024  # bounded, not monotone growth


def test_encode_scratch_rolls_back_a_failed_encode():
    class Exploding:
        def __reduce__(self):
            raise RuntimeError("unpicklable on purpose")

    scratch = wire.EncodeScratch()
    opcode = wire.OPCODES["multi_lookup"]
    _header, body = scratch.encode_request_frame(1, opcode, _batch_args())
    good_length = len(scratch.buffer)
    body.release()
    with pytest.raises(Exception):
        scratch.encode_request_frame(2, opcode, (Exploding(),))
    # The shared buffer holds no half-written layout: the next frame
    # starts exactly where the failed one tried to.
    assert len(scratch.buffer) == good_length
    _header, body = scratch.encode_request_frame(3, opcode, _batch_args())
    assert wire.decode_binary_args(opcode, bytes(body)) == _batch_args()
    body.release()


def test_mux_transport_pins_scratch_allocations_across_a_batch_run():
    """The transport-level no-new-allocations claim: one encode buffer
    serves every multi_lookup of a run (satellite of the per-core PR)."""
    with CacheServerProcess(make_server(), style="eventloop", wire_codec="binary") as process:
        transport = SocketTransport(process.address, pipelined=True, wire_codec="binary")
        try:
            for i in range(10):
                transport.put(f"key-{i}", {"row": i}, Interval(0))
            for _ in range(100):
                results = transport.multi_lookup(
                    [LookupRequest(f"key-{i}", 0, 40) for i in range(10)]
                )
                assert all(result.hit for result in results)
            assert transport.scratch_allocations == 1
        finally:
            transport.close()
