"""Tests for the RUBiS client emulator and workload mixes."""

from __future__ import annotations

import pytest

from repro.apps.rubis.app import RubisApp
from repro.apps.rubis.datagen import IN_MEMORY_CONFIG, populate_database
from repro.apps.rubis.schema import create_rubis_schema
from repro.apps.rubis.workload import (
    BIDDING_MIX,
    BROWSING_MIX,
    INTERACTION_NAMES,
    INTERACTIONS,
    RubisClientSession,
)
from repro.deployment import TxCacheDeployment


@pytest.fixture(scope="module")
def session_setup():
    deployment = TxCacheDeployment(cache_capacity_bytes_per_node=4 * 1024 * 1024)
    create_rubis_schema(deployment.database)
    dataset = populate_database(deployment.database, IN_MEMORY_CONFIG.scaled(800), seed=3)
    app = RubisApp(deployment.client(), dataset)
    return deployment, app


class TestWorkloadDefinition:
    def test_twenty_six_interactions_defined(self):
        assert len(INTERACTION_NAMES) == 26

    def test_five_read_write_interactions(self):
        writes = [name for name, i in INTERACTIONS.items() if not i.read_only]
        assert sorted(writes) == [
            "register_item",
            "register_user",
            "store_bid",
            "store_buy_now",
            "store_comment",
        ]

    def test_transition_probabilities_sum_to_one(self):
        for state, choices in BIDDING_MIX.transitions.items():
            assert sum(p for _name, p in choices) == pytest.approx(1.0), state

    def test_transition_targets_are_known_interactions(self):
        for choices in BIDDING_MIX.transitions.values():
            for name, _p in choices:
                assert name in INTERACTIONS

    def test_every_interaction_reachable(self):
        reachable = set()
        for choices in BIDDING_MIX.transitions.values():
            reachable.update(name for name, _p in choices)
        assert reachable == set(INTERACTION_NAMES) - {BIDDING_MIX.initial_state} | {"home"}

    def test_bidding_mix_is_roughly_fifteen_percent_writes(self):
        fraction = BIDDING_MIX.read_write_fraction(steps=30_000)
        assert 0.10 <= fraction <= 0.20

    def test_browsing_mix_has_no_writes(self):
        assert BROWSING_MIX.read_write_fraction(steps=5_000) == 0.0


class TestClientSession:
    def test_session_runs_every_interaction_without_error(self, session_setup):
        _deployment, app = session_setup
        session = RubisClientSession(app, BIDDING_MIX, seed=1, staleness=30)
        for name in INTERACTION_NAMES:
            session.execute(name)
        assert sum(session.interactions_run.values()) == len(INTERACTION_NAMES)
        assert session.read_write_count == 5

    def test_markov_walk_executes_transactions(self, session_setup):
        deployment, app = session_setup
        session = RubisClientSession(
            app, BIDDING_MIX, seed=2, staleness=30, now_fn=deployment.clock.now
        )
        for _ in range(80):
            session.step()
            deployment.advance(0.05)
        assert sum(session.interactions_run.values()) == 80
        assert session.read_only_count > session.read_write_count

    def test_think_time_positive(self, session_setup):
        _deployment, app = session_setup
        session = RubisClientSession(app, BIDDING_MIX, seed=3)
        samples = [session.think_time() for _ in range(200)]
        assert all(s >= 0 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(7.0, rel=0.5)

    def test_sessions_with_same_seed_follow_same_path(self, session_setup):
        _deployment, app = session_setup
        a = RubisClientSession(app, BIDDING_MIX, seed=9)
        b = RubisClientSession(app, BIDDING_MIX, seed=9)
        path_a = [a.step() for _ in range(15)]
        path_b = [b.step() for _ in range(15)]
        assert path_a == path_b

    def test_item_locality(self, session_setup):
        _deployment, app = session_setup
        session = RubisClientSession(app, BIDDING_MIX, seed=4)
        picks = [session.pick_item() for _ in range(300)]
        hot_cutoff = max(1, len(app.dataset.active_item_ids) // 10)
        hot = sum(1 for p in picks if p in set(app.dataset.active_item_ids[:hot_cutoff]))
        assert hot > len(picks) * 0.4
