"""Tests for pin sets and the lazy timestamp selection invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import EmptyPinSetError
from repro.core.pinset import STAR, PinSet
from repro.interval import Interval


class TestConstruction:
    def test_initial_contents(self):
        pins = PinSet([3, 5], star=True)
        assert pins.timestamps == frozenset({3, 5})
        assert pins.has_star
        assert len(pins) == 3

    def test_star_only_is_allowed(self):
        pins = PinSet([], star=True)
        assert pins.has_star
        assert pins.bounds() is None

    def test_completely_empty_rejected(self):
        with pytest.raises(EmptyPinSetError):
            PinSet([], star=False)

    def test_contains(self):
        pins = PinSet([3], star=True)
        assert 3 in pins
        assert STAR in pins
        assert 4 not in pins


class TestBoundsAndSelection:
    def test_bounds_excludes_star(self):
        pins = PinSet([3, 9, 5], star=True)
        assert pins.bounds() == (3, 9)

    def test_most_recent(self):
        assert PinSet([3, 9, 5]).most_recent() == 9
        assert PinSet([], star=True).most_recent() is None

    def test_sorted_timestamps(self):
        assert PinSet([5, 1, 3]).sorted_timestamps() == [1, 3, 5]


class TestMutation:
    def test_restrict_keeps_only_matching_timestamps(self):
        pins = PinSet([1, 5, 9], star=True)
        pins.restrict(Interval(4, 10))
        assert pins.timestamps == frozenset({5, 9})
        assert not pins.has_star

    def test_restrict_to_empty_raises(self):
        pins = PinSet([1, 2], star=True)
        with pytest.raises(EmptyPinSetError):
            pins.restrict(Interval(10, 20))

    def test_would_survive(self):
        pins = PinSet([1, 5], star=True)
        assert pins.would_survive(Interval(4, 9))
        assert not pins.would_survive(Interval(10, 20))

    def test_reify_star(self):
        pins = PinSet([], star=True)
        pins.reify_star(7)
        assert pins.timestamps == frozenset({7})
        assert not pins.has_star

    def test_remove_star_with_timestamps(self):
        pins = PinSet([4], star=True)
        pins.remove_star()
        assert not pins.has_star

    def test_remove_star_when_only_star_raises(self):
        pins = PinSet([], star=True)
        with pytest.raises(EmptyPinSetError):
            pins.remove_star()

    def test_copy_is_independent(self):
        pins = PinSet([1, 2], star=True)
        clone = pins.copy()
        clone.restrict(Interval(2, 5))
        assert pins.timestamps == frozenset({1, 2})
        assert pins.has_star


# ----------------------------------------------------------------------
# Property tests mirroring the paper's Invariants 1 and 2 (section 6.2.1)
# ----------------------------------------------------------------------
timestamps = st.integers(min_value=0, max_value=60)
interval_strategy = st.builds(
    lambda lo, span: Interval(lo, None if span is None else lo + span),
    timestamps,
    st.one_of(st.none(), st.integers(min_value=1, max_value=40)),
)


class TestPinSetProperties:
    @given(st.sets(timestamps, min_size=1, max_size=8), st.lists(interval_strategy, max_size=12))
    @settings(max_examples=200)
    def test_invariant_1_all_survivors_consistent_with_observations(self, pins, observations):
        """After restricting by each observed interval, every remaining
        timestamp lies inside every interval that was applied."""
        pin_set = PinSet(pins, star=True)
        applied = []
        for interval in observations:
            if pin_set.would_survive(interval):
                pin_set.restrict(interval)
                applied.append(interval)
        for timestamp in pin_set.timestamps:
            assert all(interval.contains(timestamp) for interval in applied)

    @given(st.sets(timestamps, min_size=1, max_size=8), st.lists(interval_strategy, max_size=12))
    @settings(max_examples=200)
    def test_invariant_2_pin_set_never_empty(self, pins, observations):
        """Skipping restrictions that would empty the set (treated as cache
        misses by the library) keeps the pin set non-empty forever."""
        pin_set = PinSet(pins, star=True)
        for interval in observations:
            if pin_set.would_survive(interval):
                pin_set.restrict(interval)
            assert not pin_set.empty
            assert len(pin_set) >= 1
