"""Tests for the pincushion (pinned-snapshot registry)."""

from __future__ import annotations

import pytest

from repro.clock import ManualClock
from repro.pincushion.pincushion import Pincushion


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def pincushion(clock):
    return Pincushion(clock=clock, expiry_seconds=60.0)


class TestRegistration:
    def test_register_and_query(self, pincushion):
        pincushion.register(5, wallclock=0.0)
        assert pincushion.pinned_ids == [5]
        assert pincushion.snapshot(5).wallclock == 0.0

    def test_register_same_snapshot_twice_bumps_usage(self, pincushion):
        pincushion.register(5, wallclock=0.0)
        pincushion.register(5, wallclock=0.0)
        assert len(pincushion) == 1
        assert pincushion.snapshot(5).in_use == 2

    def test_register_without_use(self, pincushion):
        pincushion.register(5, wallclock=0.0, in_use=False)
        assert pincushion.snapshot(5).in_use == 0


class TestFreshness:
    def test_fresh_snapshots_filters_by_staleness(self, pincushion, clock):
        pincushion.register(1, wallclock=0.0, in_use=False)
        clock.advance(100.0)
        pincushion.register(2, wallclock=95.0, in_use=False)
        fresh = pincushion.fresh_snapshots(staleness=30.0, mark_in_use=False)
        assert [s.snapshot_id for s in fresh] == [2]

    def test_fresh_snapshots_sorted_ascending(self, pincushion):
        pincushion.register(9, wallclock=0.0, in_use=False)
        pincushion.register(3, wallclock=0.0, in_use=False)
        fresh = pincushion.fresh_snapshots(staleness=30.0, mark_in_use=False)
        assert [s.snapshot_id for s in fresh] == [3, 9]

    def test_fresh_snapshots_marks_in_use(self, pincushion):
        pincushion.register(1, wallclock=0.0, in_use=False)
        pincushion.fresh_snapshots(staleness=30.0)
        assert pincushion.snapshot(1).in_use == 1

    def test_release_balances_in_use(self, pincushion):
        pincushion.register(1, wallclock=0.0, in_use=False)
        fresh = pincushion.fresh_snapshots(staleness=30.0)
        pincushion.release([s.snapshot_id for s in fresh])
        assert pincushion.snapshot(1).in_use == 0

    def test_release_never_goes_negative(self, pincushion):
        pincushion.register(1, wallclock=0.0, in_use=False)
        pincushion.release([1])
        assert pincushion.snapshot(1).in_use == 0


class TestExpiry:
    def test_old_unused_snapshots_expire(self, pincushion, clock):
        unpinned = []
        pincushion._unpin_callback = unpinned.append
        pincushion.register(1, wallclock=0.0, in_use=False)
        clock.advance(120.0)
        expired = pincushion.expire_old_snapshots()
        assert expired == [1]
        assert unpinned == [1]
        assert len(pincushion) == 0

    def test_in_use_snapshots_never_expire(self, pincushion, clock):
        pincushion.register(1, wallclock=0.0)  # in use
        clock.advance(1000.0)
        assert pincushion.expire_old_snapshots() == []
        assert len(pincushion) == 1

    def test_recent_snapshots_not_expired(self, pincushion, clock):
        pincushion.register(1, wallclock=0.0, in_use=False)
        clock.advance(10.0)
        assert pincushion.expire_old_snapshots() == []

    def test_custom_threshold(self, pincushion, clock):
        pincushion.register(1, wallclock=0.0, in_use=False)
        clock.advance(10.0)
        assert pincushion.expire_old_snapshots(older_than=5.0) == [1]


class TestStats:
    def test_counters(self, pincushion, clock):
        pincushion.register(1, wallclock=0.0, in_use=False)
        pincushion.fresh_snapshots(staleness=30.0)
        pincushion.release([1])
        clock.advance(500.0)
        pincushion.expire_old_snapshots()
        assert pincushion.stats.registrations == 1
        assert pincushion.stats.fresh_requests == 1
        assert pincushion.stats.releases == 1
        assert pincushion.stats.expirations == 1
