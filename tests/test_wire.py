"""Unit tests for the wire codec: framing, opcodes, reassembly, copies."""

from __future__ import annotations

import pickle
import socket

import pytest

from repro.cache.entry import LookupRequest
from repro.comm import wire


# ----------------------------------------------------------------------
# Body codec
# ----------------------------------------------------------------------
def test_plain_body_round_trips():
    payload = ("multi_lookup", ([LookupRequest("k", 0, 5)],))
    flags, buffers = wire.encode_body(payload)
    assert flags == 0 and len(buffers) == 1
    assert wire.decode_body(flags, buffers[0]) == payload


def test_out_of_band_buffers_round_trip_without_copies():
    """PickleBuffer payloads travel as separate segments, reassembled zero-copy."""
    blob = bytearray(b"z" * 200_000)
    payload = {"meta": 1, "blob": pickle.PickleBuffer(blob)}
    flags, buffers = wire.encode_body(payload)
    assert flags == wire.FLAG_OOB
    # subheader + pickle stream + the raw buffer, which is *not* embedded
    # in the pickle stream.
    assert len(buffers) == 3
    assert len(buffers[1]) < 1000  # the stream stays tiny
    assert bytes(buffers[2]) == bytes(blob)
    body = b"".join(bytes(b) for b in buffers)
    decoded = wire.decode_body(flags, body)
    assert bytes(decoded["blob"]) == bytes(blob)
    assert decoded["meta"] == 1


def test_mux_frame_header_layout():
    buffers = wire.encode_mux_frame(42, wire.OPCODES["lookup"], ("k", 0, 5))
    header = bytes(buffers[0])
    request_id, opcode, length = wire.MUX_HEADER.unpack(header)
    assert request_id == 42
    assert opcode == wire.OPCODES["lookup"]
    assert length == sum(len(b) for b in buffers[1:])


def test_legacy_frame_matches_historical_layout():
    payload = ("ping", ())
    header, data = wire.encode_legacy_frame(payload)
    (length,) = wire.LEGACY_HEADER.unpack(bytes(header))
    assert length == len(data)
    assert pickle.loads(data) == payload


def test_opcode_table_is_bijective_and_reserves_zero():
    assert 0 not in wire.OP_NAMES
    assert len(wire.OP_NAMES) == len(wire.OPCODES)
    for name, code in wire.OPCODES.items():
        assert wire.OP_NAMES[code] == name
        assert code < wire.OP_OK  # responses and flags never collide


# ----------------------------------------------------------------------
# Frame reassembly
# ----------------------------------------------------------------------
def _flatten(buffers):
    return b"".join(bytes(b) for b in buffers)


def test_assembler_detects_mux_by_magic_and_reassembles_partials():
    assembler = wire.FrameAssembler()
    stream = bytes([wire.MUX_MAGIC])
    stream += _flatten(wire.encode_mux_frame(1, wire.OPCODES["ping"], ()))
    stream += _flatten(wire.encode_mux_frame(2, wire.OPCODES["probe"], ("k", 0, 5)))
    frames = []
    for i in range(0, len(stream), 3):  # drip-feed in 3-byte chunks
        frames.extend(assembler.feed(stream[i : i + 3]))
    assert assembler.mode == "mux"
    assert [(f[0], f[1]) for f in frames] == [
        (1, wire.OPCODES["ping"]),
        (2, wire.OPCODES["probe"]),
    ]
    assert wire.decode_body(0, frames[1][2]) == ("k", 0, 5)


def test_assembler_detects_legacy_without_magic():
    assembler = wire.FrameAssembler()
    stream = _flatten(wire.encode_legacy_frame(("ping", ())))
    stream += _flatten(wire.encode_legacy_frame(("probe", ("k", 0, 5))))
    frames = assembler.feed(stream)
    assert assembler.mode == "legacy"
    assert [f[0] for f in frames] == [None, None]
    assert pickle.loads(bytes(frames[1][2])) == ("probe", ("k", 0, 5))


def test_assembler_rejects_oversized_frames():
    assembler = wire.FrameAssembler()
    bogus = wire.LEGACY_HEADER.pack(wire.MAX_FRAME_BYTES + 1)
    with pytest.raises(ValueError, match="oversized"):
        assembler.feed(bogus)


def test_multiple_frames_in_one_feed():
    assembler = wire.FrameAssembler()
    stream = bytes([wire.MUX_MAGIC])
    for i in range(20):
        stream += _flatten(wire.encode_mux_frame(i, wire.OPCODES["keys"], ()))
    frames = assembler.feed(stream)
    assert [f[0] for f in frames] == list(range(20))


# ----------------------------------------------------------------------
# Vectored sends
# ----------------------------------------------------------------------
def test_send_buffers_writes_vector_without_copies():
    a, b = socket.socketpair()
    try:
        wire.WIRE_COUNTERS.reset()
        payload = [b"head", b"x" * 10_000, b"tail"]
        wire.send_buffers(a, payload)
        received = bytearray()
        while len(received) < 10_008:
            received += b.recv(65536)
        assert bytes(received) == b"".join(payload)
        assert wire.WIRE_COUNTERS.bytes_copied == 0
        assert wire.WIRE_COUNTERS.bytes_sent == 10_008
    finally:
        a.close()
        b.close()


def test_send_buffers_resumes_after_partial_sends():
    """A tiny kernel buffer forces partial sendmsg returns mid-vector."""
    import threading

    a, b = socket.socketpair()
    try:
        a.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        chunks = [bytes([i % 251]) * 3001 for i in range(40)]
        expected = b"".join(chunks)
        received = bytearray()

        def drain():
            while len(received) < len(expected):
                data = b.recv(65536)
                if not data:
                    return
                received.extend(data)

        reader = threading.Thread(target=drain)
        reader.start()
        wire.send_buffers(a, chunks)
        reader.join(timeout=10)
        assert bytes(received) == expected
    finally:
        a.close()
        b.close()
