"""Tests for the clock abstractions."""

from __future__ import annotations

import time

import pytest

from repro.clock import ManualClock, SystemClock


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(5.0).now() == 5.0

    def test_defaults_to_zero(self):
        assert ManualClock().now() == 0.0

    def test_advance(self):
        clock = ManualClock()
        clock.advance(2.5)
        clock.advance(1.0)
        assert clock.now() == pytest.approx(3.5)

    def test_advance_returns_new_time(self):
        assert ManualClock(1.0).advance(2.0) == pytest.approx(3.0)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1)

    def test_set_forward(self):
        clock = ManualClock()
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_set_backwards_rejected(self):
        clock = ManualClock(10.0)
        with pytest.raises(ValueError):
            clock.set(5.0)


class TestSystemClock:
    def test_tracks_real_time(self):
        clock = SystemClock()
        before = time.time()
        observed = clock.now()
        after = time.time()
        assert before <= observed <= after

    def test_monotonic_enough(self):
        clock = SystemClock()
        assert clock.now() <= clock.now()
