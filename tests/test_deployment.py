"""Tests for the deployment wiring helper."""

from __future__ import annotations

from repro.clock import ManualClock
from repro.core.api import ConsistencyMode
from repro.db.query import Eq, Select
from repro.deployment import TxCacheDeployment
from tests.helpers import simple_schema, update_user


def build():
    deployment = TxCacheDeployment(cache_nodes=2)
    deployment.database.create_table(simple_schema())
    deployment.database.bulk_load(
        "users",
        [{"id": i, "name": f"user{i}", "region": 0, "score": 0.0} for i in range(1, 6)],
    )
    return deployment


class TestWiring:
    def test_cache_nodes_subscribed_to_invalidation_stream(self):
        deployment = build()
        update_user(deployment, 1, name="changed")
        for server in deployment.cache.servers.values():
            assert server.last_invalidation_timestamp == 1

    def test_clients_share_the_cache(self):
        deployment = build()
        first = deployment.client()
        second = deployment.client()
        assert first.cache is second.cache
        assert len(deployment.clients) == 2

    def test_client_mode_override(self):
        deployment = build()
        client = deployment.client(mode=ConsistencyMode.NO_CACHE)
        assert client.mode is ConsistencyMode.NO_CACHE

    def test_manual_clock_by_default(self):
        deployment = TxCacheDeployment()
        assert isinstance(deployment.clock, ManualClock)
        deployment.advance(5.0)
        assert deployment.clock.now() == 5.0


class TestHousekeeping:
    def test_housekeeping_expires_pins_and_vacuums(self):
        deployment = build()
        client = deployment.client()
        with client.read_only():
            client.query(Select("users", Eq("id", 1)))
        update_user(deployment, 1, name="v2")
        # Age everything past the pincushion expiry and staleness limit.
        deployment.advance(300.0)
        deployment.housekeeping(max_staleness=30.0)
        assert deployment.database.pinned_snapshots == {}
        # The superseded version has been vacuumed.
        assert deployment.database.table("users").version_count() == 5

    def test_housekeeping_evicts_stale_cache_entries(self):
        deployment = build()
        client = deployment.client()

        @client.cacheable(name="get_user")
        def get_user(user_id):
            return client.query(Select("users", Eq("id", user_id))).rows[0]

        with client.read_only():
            get_user(1)
        update_user(deployment, 1, name="v2")  # truncates the cached entry
        deployment.advance(300.0)
        update_user(deployment, 2, name="marker")  # a commit after the horizon
        deployment.housekeeping(max_staleness=30.0)
        assert deployment.cache.aggregate_stats().stale_evictions >= 1
