"""Tests for cluster elasticity: membership epochs, live key migration, and
failure-aware (degraded) cache routing.

The headline scenarios:

* a planned join/leave with migration keeps every still-servable entry
  servable — no cold-miss trough for the remapped slice;
* killing a socket cache node mid-workload degrades its lookups to misses
  (no exception escapes to the application), and after the failure
  threshold the node is evicted from the ring and traffic reroutes;
* membership behaves identically over both transports.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.cluster import CacheCluster
from repro.cache.entry import EntryRecord
from repro.cache.hashring import ConsistentHashRing, _hash, diff_ownership, range_contains
from repro.cache.membership import ClusterMembership
from repro.core.keys import cache_key
from repro.cache.server import CacheServer
from repro.clock import ManualClock
from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.core.api import ConsistencyMode
from repro.core.stats import MissType
from repro.db.query import Eq, Select
from repro.db.invalidation import InvalidationTag
from repro.deployment import TxCacheDeployment
from repro.interval import Interval
from tests.helpers import node_views, transports_under_test

# Overridable with REPRO_TRANSPORT=inprocess|socket (CI transport matrix).
TRANSPORTS = transports_under_test()


@pytest.fixture(params=TRANSPORTS)
def transport_kind(request):
    return request.param


def build_membership(transport_kind, nodes=3, bus=None):
    cluster = CacheCluster(
        node_count=nodes,
        capacity_bytes_per_node=4 * 1024 * 1024,
        clock=ManualClock(),
        invalidation_bus=bus,
        transport=transport_kind,
    )
    return cluster, ClusterMembership(cluster, chunk_size=16)


def fill(cluster, count=200, tagged=True):
    keys = [f"key-{i}" for i in range(count)]
    for i, key in enumerate(keys):
        tags = frozenset({InvalidationTag.key("items", "id", i % 20)}) if tagged else frozenset()
        cluster.put(key, {"i": i}, Interval(0), tags)
    return keys


# ----------------------------------------------------------------------
# Epochs and history
# ----------------------------------------------------------------------
class TestEpochs:
    def test_epoch_advances_on_every_change(self, transport_kind):
        cluster, membership = build_membership(transport_kind)
        try:
            assert membership.epoch == 0
            membership.join("cache3", capacity_bytes=1 << 20)
            membership.leave("cache3")
            membership.evict("cache0")
            assert membership.epoch == 3
            assert [record.change for record in membership.history] == [
                "genesis", "join", "leave", "evict",
            ]
            assert membership.history[-1].members == ("cache1", "cache2")
        finally:
            cluster.close()

    def test_rejoin_after_departure_is_recorded(self, transport_kind):
        cluster, membership = build_membership(transport_kind)
        try:
            membership.leave("cache1")
            membership.join("cache1", capacity_bytes=1 << 20)
            assert membership.stats.rejoins == 1
            assert membership.history[-1].change == "rejoin"
            assert "cache1" in cluster.ring
        finally:
            cluster.close()

    def test_join_existing_member_raises(self, transport_kind):
        cluster, membership = build_membership(transport_kind)
        try:
            with pytest.raises(ValueError):
                membership.join("cache0")
            with pytest.raises(KeyError):
                membership.leave("nope")
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# Live key migration
# ----------------------------------------------------------------------
class TestJoinMigration:
    def test_join_keeps_remapped_keys_servable(self, transport_kind):
        bus = InvalidationBus()
        cluster, membership = build_membership(transport_kind, bus=bus)
        try:
            keys = fill(cluster)
            bus.publish(
                InvalidationMessage(timestamp=5, tags=(InvalidationTag.key("items", "id", 3),))
            )
            before = {key: cluster.lookup(key, 0, 6) for key in keys}
            membership.join("cache3", capacity_bytes=1 << 22)
            moved = [key for key in keys if cluster.ring.node_for(key) == "cache3"]
            assert moved, "the join should take over part of the key space"
            for key in keys:
                result = cluster.lookup(key, 0, 6)
                assert result.hit == before[key].hit, key
                if result.hit:
                    assert result.value == before[key].value
                    # Migrated still-valid entries keep their interval shape.
                    assert result.raw_interval == before[key].raw_interval
            assert membership.stats.entries_migrated >= len(moved)
        finally:
            cluster.close()

    def test_migrated_still_valid_entries_keep_their_tags(self, transport_kind):
        bus = InvalidationBus()
        cluster, membership = build_membership(transport_kind, bus=bus)
        try:
            keys = fill(cluster, tagged=True)
            membership.join("cache3", capacity_bytes=1 << 22)
            moved = [key for key in keys if cluster.ring.node_for(key) == "cache3"]
            # Invalidate after the migration: migrated entries must truncate
            # on the *new* owner exactly as they would have on the old one.
            bus.publish(
                InvalidationMessage(timestamp=9, tags=(InvalidationTag.wildcard("items"),))
            )
            for key in moved:
                result = cluster.lookup(key, 0, 8)
                assert result.hit and result.interval.hi == 9
                assert not cluster.probe(key, 10, 20)
        finally:
            cluster.close()

    def test_cold_join_loses_the_remapped_slice(self, transport_kind):
        cluster, membership = build_membership(transport_kind)
        try:
            keys = fill(cluster)
            membership.join("cache3", capacity_bytes=1 << 22, migrate=False)
            moved = [key for key in keys if cluster.ring.node_for(key) == "cache3"]
            assert moved
            assert all(not cluster.lookup(key, 0, 6).hit for key in moved)
            assert membership.stats.entries_migrated == 0
        finally:
            cluster.close()

    def test_join_discards_migrated_keys_from_sources(self, transport_kind):
        cluster, membership = build_membership(transport_kind)
        try:
            keys = fill(cluster, tagged=False)
            total_before = cluster.entry_count
            membership.join("cache3", capacity_bytes=1 << 22)
            # Migration copies then discards: the cluster-wide entry count is
            # unchanged and no node holds a key it no longer owns.
            assert cluster.entry_count == total_before
            for name, view in node_views(cluster).items():
                for key in keys:
                    if view.versions_of(key):
                        assert cluster.ring.node_for(key) == name
            assert membership.stats.entries_discarded == membership.stats.entries_migrated
        finally:
            cluster.close()

    def test_weighted_join_takes_a_larger_share(self, transport_kind):
        cluster, membership = build_membership(transport_kind)
        try:
            keys = [f"key-{i}" for i in range(2000)]
            membership.join("heavy", capacity_bytes=1 << 22, weight=2.0)
            share = cluster.key_distribution(keys)["heavy"] / len(keys)
            # 2 of 5 effective weights → expect ~40% of the key space.
            assert 0.25 < share < 0.55
        finally:
            cluster.close()


class TestLeaveMigration:
    def test_leave_drains_entries_to_survivors(self, transport_kind):
        bus = InvalidationBus()
        cluster, membership = build_membership(transport_kind, bus=bus)
        try:
            keys = fill(cluster)
            before = {key: cluster.lookup(key, 0, 6) for key in keys}
            victim = cluster.ring.node_for(keys[0])
            membership.leave(victim)
            assert victim not in cluster.ring
            for key in keys:
                result = cluster.lookup(key, 0, 6)
                assert result.hit == before[key].hit, key
                if result.hit:
                    assert result.value == before[key].value
        finally:
            cluster.close()

    def test_leave_without_migration_cold_starts_the_slice(self, transport_kind):
        cluster, membership = build_membership(transport_kind)
        try:
            keys = fill(cluster)
            victim = cluster.ring.node_for(keys[0])
            owned = [key for key in keys if cluster.ring.node_for(key) == victim]
            membership.leave(victim, migrate=False)
            assert all(not cluster.lookup(key, 0, 6).hit for key in owned)
        finally:
            cluster.close()

    def test_last_node_leaving_empties_the_ring(self, transport_kind):
        cluster, membership = build_membership(transport_kind, nodes=1)
        try:
            fill(cluster, count=10)
            membership.leave("cache0")
            assert len(cluster.ring) == 0
            # Routing degrades rather than raising on an empty ring.
            assert not cluster.lookup("key-1", 0, 5).hit
            assert cluster.put("key-1", 1, Interval(0)) is False
        finally:
            cluster.close()


class TestMembershipTransportParity:
    def test_join_leave_sequence_matches_across_transports(self):
        """The same membership trace routes and serves identically whether
        the nodes are in-process objects or real TCP servers."""
        from tests.helpers import TRANSPORTS as ALL_TRANSPORTS

        outcomes = {}
        # Always compares both transports (the point of the test), even when
        # REPRO_TRANSPORT restricts the parametrized suites.
        for kind in ALL_TRANSPORTS:
            bus = InvalidationBus()
            cluster, membership = build_membership(kind, bus=bus)
            try:
                keys = fill(cluster)
                membership.join("cache3", capacity_bytes=1 << 22)
                bus.publish(
                    InvalidationMessage(timestamp=7, tags=(InvalidationTag.wildcard("items"),))
                )
                membership.leave("cache1")
                membership.join("cache4", capacity_bytes=1 << 22, migrate=False)
                routing = {key: cluster.ring.node_for(key) for key in keys}
                lookups = {key: (cluster.lookup(key, 0, 6).hit, cluster.lookup(key, 8, 12).hit) for key in keys}
                outcomes[kind] = (
                    membership.epoch,
                    [record.change for record in membership.history],
                    sorted(cluster.ring.nodes),
                    routing,
                    lookups,
                    membership.stats.entries_migrated,
                    membership.stats.keys_migrated,
                )
            finally:
                cluster.close()
        assert outcomes["socket"] == outcomes["inprocess"]
        assert outcomes["socket-pipelined"] == outcomes["inprocess"]
        assert outcomes["socket-process"] == outcomes["inprocess"]


# ----------------------------------------------------------------------
# Ring diff / extraction plumbing
# ----------------------------------------------------------------------
class TestOwnershipPlumbing:
    def test_diff_ownership_covers_exactly_the_new_nodes_gain(self):
        old = ConsistentHashRing(["a", "b", "c"])
        new = old.copy()
        new.add_node("d")
        changes = diff_ownership(old, new)
        assert changes and all(change.new_owner == "d" for change in changes)
        # Every key that changes owner falls in a reported range, and every
        # reported range routes to the new node.
        for i in range(500):
            key = f"key-{i}"
            point = _hash(key)
            in_changed = any(range_contains(c.lo, c.hi, point) for c in changes)
            assert in_changed == (old.node_for(key) != new.node_for(key))

    def test_extract_entries_pages_all_versions_of_a_key_together(self):
        server = CacheServer(clock=ManualClock(), capacity_bytes=1 << 22)
        for i in range(30):
            server.put(f"key-{i:02d}", i, Interval(0, 5))
            server.put(f"key-{i:02d}", i * 10, Interval(5, 9))
        seen = []
        cursor = None
        pages = 0
        while True:
            records, cursor = server.extract_entries(cursor, limit=7)
            pages += 1
            seen.extend(records)
            if cursor is None:
                break
        assert pages == 5  # ceil(30 / 7)
        assert len(seen) == 60
        by_key = {}
        for record in seen:
            by_key.setdefault(record.key, []).append(record)
        assert all(len(versions) == 2 for versions in by_key.values())
        assert server.stats.entries_extracted == 60

    def test_install_entries_respects_put_semantics(self):
        source = CacheServer(name="src", clock=ManualClock(), capacity_bytes=1 << 22)
        target = CacheServer(name="dst", clock=ManualClock(), capacity_bytes=1 << 22)
        source.put("k", "v", Interval(0), frozenset({InvalidationTag.key("t", "id", 1)}))
        records, _ = source.extract_entries()
        # The target already saw the invalidation the source has not: the
        # installed still-valid record must be truncated on insert.
        target.process_invalidation(
            InvalidationMessage(timestamp=4, tags=(InvalidationTag.key("t", "id", 1),))
        )
        assert target.install_entries(records) == 1
        assert target.versions_of("k")[0].interval.hi == 4
        # Duplicate installs are rejected, not double-stored.
        assert target.install_entries(records) == 0

    def test_discard_keys_releases_capacity(self):
        server = CacheServer(clock=ManualClock(), capacity_bytes=1 << 22)
        server.put("a", "x" * 100, Interval(0))
        server.put("b", "y" * 100, Interval(0))
        used = server.used_bytes
        assert server.discard_keys(["a", "missing"]) == 1
        assert server.used_bytes < used
        assert not server.lookup("a", 0, 5).hit
        assert server.was_ever_stored("a")  # history is kept


# ----------------------------------------------------------------------
# Failure-aware routing
# ----------------------------------------------------------------------
class TestFailureAwareRouting:
    def test_dead_socket_node_degrades_then_evicts(self):
        cluster = CacheCluster(
            node_count=3, clock=ManualClock(), transport="socket", failure_threshold=3
        )
        membership = ClusterMembership(cluster)
        try:
            keys = fill(cluster, count=60, tagged=False)
            victim = cluster.ring.node_for(keys[0])
            owned = [key for key in keys if cluster.ring.node_for(key) == victim]
            cluster.fail_node(victim)

            # Degraded phase: no exception, synthetic misses / dropped puts.
            for key in owned[:2]:
                result = cluster.lookup(key, 0, 6)
                assert not result.hit and result.degraded
            assert victim in cluster.suspect_nodes or victim not in cluster.ring
            while victim in cluster.ring:
                cluster.put(owned[0], 1, Interval(0))
            assert cluster.health.nodes_evicted == 1
            assert membership.history[-1].change == "evict"

            # Rerouted phase: the survivors own the slice and serve it.
            for key in owned:
                assert cluster.ring.node_for(key) != victim
                cluster.put(key, "refill", Interval(0))
                assert cluster.lookup(key, 0, 6).hit
            assert not cluster.suspect_nodes
        finally:
            cluster.close()

    def test_degradation_only_on_connectivity_errors(self):
        """A server-side error response must still raise (it is a bug, not
        a dead node)."""
        cluster = CacheCluster(node_count=1, clock=ManualClock(), transport="socket")
        try:
            transport = cluster.transports["cache0"]
            with pytest.raises(Exception, match="unknown cache operation"):
                transport._call("no-such-op")
            assert "cache0" in cluster.ring  # not treated as a failure
            assert cluster.health.transport_failures == 0
        finally:
            cluster.close()

    def test_mid_workload_crash_never_escapes_to_the_application(self):
        """Acceptance scenario: kill a socket cache node mid-workload; the
        client sees degraded misses (classified as such), never an
        exception, and the workload keeps committing after the ring heals."""
        deployment = TxCacheDeployment(
            cache_nodes=3, transport="socket", failure_threshold=3
        )
        try:
            from tests.helpers import simple_schema

            deployment.database.create_table(simple_schema())
            deployment.database.bulk_load(
                "users",
                [{"id": i, "name": f"user{i}", "region": 0, "score": 0.0} for i in range(1, 41)],
            )
            client = deployment.client(mode=ConsistencyMode.CONSISTENT)

            @client.cacheable(name="get_user")
            def get_user(user_id):
                return client.query(Select("users", Eq("id", user_id))).rows[0]

            rng = random.Random(11)

            def spin(rounds):
                for _ in range(rounds):
                    with client.read_only():
                        get_user(rng.randrange(1, 41))
                    if rng.random() < 0.25:  # updates publish invalidations
                        with client.read_write():
                            client.update(
                                "users", Eq("id", rng.randrange(1, 41)), {"score": 1.0}
                            )
                    deployment.advance(0.05)

            spin(60)  # warm the cache over all three nodes
            victim = deployment.cache.ring.nodes[0]
            victim_uid = next(
                uid
                for uid in range(1, 41)
                if deployment.cache.ring.node_for(cache_key("get_user", (uid,))) == victim
            )
            deployment.cache.fail_node(victim)
            # A read that routes to the dead node: served as a degraded miss.
            with client.read_only():
                assert get_user(victim_uid)["id"] == victim_uid
            spin(80)  # mid-workload: must not raise
            assert victim not in deployment.cache.ring
            assert deployment.cache.health.nodes_evicted == 1
            assert deployment.membership.history[-1].change == "evict"
            assert client.stats.misses_by_type[MissType.DEGRADED] > 0
            assert deployment.cache.health.degraded_lookups > 0

            # After eviction the survivors serve the remapped slice again.
            hits_before = client.stats.hits
            spin(80)
            assert client.stats.hits > hits_before
        finally:
            deployment.shutdown()

    def test_inprocess_fail_node_evicts_immediately(self):
        cluster = CacheCluster(node_count=2, clock=ManualClock())
        membership = ClusterMembership(cluster)
        try:
            cluster.fail_node("cache0")
            assert "cache0" not in cluster.ring
            assert cluster.node_count == 1
            assert membership.epoch == 1
        finally:
            cluster.close()

    def test_rejoin_after_failure_eviction(self, transport_kind):
        cluster, membership = build_membership(transport_kind)
        try:
            keys = fill(cluster, tagged=False)
            victim = cluster.ring.node_for(keys[0])
            cluster.fail_node(victim)
            if transport_kind != "inprocess":
                # Networked kinds keep the dead endpoint in the ring until
                # enough routed traffic fails (threshold eviction).
                while victim in cluster.ring:
                    cluster.lookup(keys[0], 0, 6)
            assert victim not in cluster.ring
            # Refill the survivors so the rejoin has something to migrate.
            for key in keys:
                cluster.put(key, "warm", Interval(0))
            membership.join(victim, capacity_bytes=1 << 22)
            assert membership.history[-1].change == "rejoin"
            assert victim in cluster.ring
            assert all(cluster.lookup(key, 0, 6).hit for key in keys)
        finally:
            cluster.close()

    def test_crashed_invalidation_subscriber_degrades_publishing(self):
        bus = InvalidationBus()
        cluster = CacheCluster(
            node_count=2, clock=ManualClock(), invalidation_bus=bus,
            transport="socket", failure_threshold=2,
        )
        try:
            cluster.fail_node("cache0")
            # Publishing must not raise even with a dead subscriber; after
            # enough failures the dead node is evicted and unsubscribed.
            bus.publish(InvalidationMessage(timestamp=1, tags=()))
            bus.publish(InvalidationMessage(timestamp=2, tags=()))
            assert "cache0" not in cluster.ring
            assert len(bus.subscribers) == 1
        finally:
            cluster.close()


class TestFailureAccounting:
    def test_any_successful_op_clears_suspect_status(self):
        """A suspect node that answers again — via any routed operation —
        must have its consecutive-failure count reset, not just via
        lookup/put."""
        cluster = CacheCluster(node_count=2, clock=ManualClock(), failure_threshold=3)
        try:
            cluster.note_transport_failure("cache0")
            cluster.note_transport_failure("cache0")
            assert cluster.suspect_nodes == ["cache0"]
            key = next(
                f"key-{i}" for i in range(100) if cluster.ring.node_for(f"key-{i}") == "cache0"
            )
            cluster.probe(key, 0, 5)  # succeeds against the healthy node
            assert cluster.suspect_nodes == []
            # Two fresh failures must NOT evict (the count was reset).
            cluster.note_transport_failure("cache0")
            cluster.note_transport_failure("cache0")
            assert "cache0" in cluster.ring
        finally:
            cluster.close()

    def test_migration_failures_are_recorded_without_evicting(self):
        """A node dying mid-migration marks it suspect but never performs a
        ring eviction from inside the membership change; the first routed
        failure afterwards completes it."""
        cluster = CacheCluster(
            node_count=3, clock=ManualClock(), transport="socket", failure_threshold=1
        )
        membership = ClusterMembership(cluster)
        try:
            keys = fill(cluster, count=60, tagged=False)
            victim = cluster.ring.nodes[0]
            cluster.processes[victim].shutdown()  # dies before the drain
            survivor = next(n for n in cluster.ring.nodes if n != victim)
            membership.leave(survivor)  # drain must survive a dead destination
            assert membership.stats.migration_install_failures >= 1
            assert victim in cluster.ring  # not evicted mid-migration...
            assert victim in cluster.suspect_nodes  # ...but already suspect
            cluster.lookup(keys[0] if cluster.ring.node_for(keys[0]) == victim
                           else next(k for k in keys if cluster.ring.node_for(k) == victim),
                           0, 5)
            assert victim not in cluster.ring  # first routed failure evicts
        finally:
            cluster.close()

    def test_manual_evict_counts_separately_from_failure_evictions(self):
        cluster = CacheCluster(node_count=2, clock=ManualClock())
        membership = ClusterMembership(cluster)
        try:
            membership.evict("cache0")
            assert membership.stats.manual_evictions == 1
            assert membership.stats.failure_evictions == 0
            cluster.fail_node("cache1")
            assert membership.stats.failure_evictions == 1
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# Cluster API details
# ----------------------------------------------------------------------
class TestClusterApi:
    def test_remove_unknown_node_raises_key_error(self, transport_kind):
        cluster = CacheCluster(node_count=2, clock=ManualClock(), transport=transport_kind)
        try:
            with pytest.raises(KeyError):
                cluster.remove_node("no-such-node")
            assert cluster.node_count == 2
        finally:
            cluster.close()

    def test_adopt_ring_rejects_unknown_members(self):
        cluster = CacheCluster(node_count=2, clock=ManualClock())
        try:
            rogue = ConsistentHashRing(["cache0", "cache1", "ghost"])
            with pytest.raises(ValueError):
                cluster.adopt_ring(rogue)
        finally:
            cluster.close()

    def test_provision_node_receives_stream_but_no_traffic(self):
        bus = InvalidationBus()
        cluster = CacheCluster(node_count=2, clock=ManualClock(), invalidation_bus=bus)
        try:
            server = cluster.provision_node("warmup", capacity_bytes=1 << 20)
            assert "warmup" not in cluster.ring
            bus.publish(InvalidationMessage(timestamp=3, tags=()))
            assert server.last_invalidation_timestamp == 3
            # install directly, then join the ring via adopt.
            cluster.install_entries(
                "warmup", [EntryRecord(key="k", value=1, interval=Interval(0))]
            )
            ring = cluster.ring.copy()
            ring.add_node("warmup")
            cluster.adopt_ring(ring)
            assert cluster.node_count == 3
        finally:
            cluster.close()
