"""Tests for client statistics and miss classification bookkeeping."""

from __future__ import annotations

import pytest

from repro.core.stats import ClientStats, MissType


class TestRecording:
    def test_hits_and_misses(self):
        stats = ClientStats()
        stats.record_hit()
        stats.record_miss(MissType.COMPULSORY)
        stats.record_miss(MissType.CONSISTENCY)
        assert stats.cacheable_calls == 3
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.misses_by_type[MissType.COMPULSORY] == 1
        assert stats.misses_by_type[MissType.CONSISTENCY] == 1

    def test_bypass(self):
        stats = ClientStats()
        stats.record_bypass()
        assert stats.cache_bypassed_calls == 1
        assert stats.lookups == 0

    def test_hit_rate(self):
        stats = ClientStats()
        assert stats.hit_rate == 0.0
        stats.record_hit()
        stats.record_hit()
        stats.record_miss(MissType.COMPULSORY)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_miss_fractions(self):
        stats = ClientStats()
        assert sum(stats.miss_fractions().values()) == 0.0
        stats.record_miss(MissType.COMPULSORY)
        stats.record_miss(MissType.COMPULSORY)
        stats.record_miss(MissType.STALE_OR_CAPACITY)
        stats.record_miss(MissType.CONSISTENCY)
        fractions = stats.miss_fractions()
        assert fractions[MissType.COMPULSORY] == pytest.approx(0.5)
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestResetAndMerge:
    def test_reset(self):
        stats = ClientStats()
        stats.record_hit()
        stats.record_miss(MissType.COMPULSORY)
        stats.db_queries = 5
        stats.reset()
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.db_queries == 0
        assert all(v == 0 for v in stats.misses_by_type.values())

    def test_merge(self):
        a = ClientStats()
        b = ClientStats()
        a.record_hit()
        b.record_miss(MissType.CONSISTENCY)
        b.db_queries = 3
        a.merge(b)
        assert a.hits == 1
        assert a.misses == 1
        assert a.misses_by_type[MissType.CONSISTENCY] == 1
        assert a.db_queries == 3
