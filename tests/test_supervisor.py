"""Self-healing supervision: crash respawn, backoff, circuit breaker,
retry/deadline on the wire client, and housekeeping stage isolation.

The deterministic state-machine tests run on the in-process transport with
a manual clock (a crash is ``fail_node``; backoff and the breaker window
advance by hand).  The process tests SIGKILL real ``socket-process``
children and drive recovery solely through ``housekeeping()`` — the way a
deployment timer would — asserting the node returns to serving with its
working set re-warmed and the one-snapshot invariant intact throughout.
"""

from __future__ import annotations

import threading
import time

import pytest

from tests.helpers import ConsistencyHarness, FaultInjector, transports_under_test
from repro.cache.netserver import (
    CacheNodeConnectError,
    CacheNodeTimeoutError,
    CacheNodeUnreachableError,
    SocketTransport,
)
from repro.clock import ManualClock, SystemClock
from repro.comm.transport import (
    IDEMPOTENT_OPS,
    RetryPolicy,
    deadline_scope,
)
from repro.deployment import HousekeepingError, TxCacheDeployment
from repro.interval import Interval


def _supervised_deployment(clock=None, **overrides):
    settings = dict(
        clock=clock or ManualClock(),
        cache_nodes=3,
        transport="inprocess",
        replication_factor=2,
        supervision=True,
        supervisor_backoff_base_seconds=0.1,
    )
    settings.update(overrides)
    return TxCacheDeployment(**settings)


def _pump_until_serving(supervisor, clock, name, rounds=50, step=0.5):
    for _ in range(rounds):
        supervisor.pump()
        if supervisor.states.get(name) == "serving":
            return
        clock.advance(step)
    raise AssertionError(f"{name} never returned to serving: {supervisor.states}")


# ----------------------------------------------------------------------
# Supervisor state machine (deterministic, in-process, manual clock)
# ----------------------------------------------------------------------
class TestSupervisorStateMachine:
    def test_respawns_a_crashed_node_after_backoff(self):
        clock = ManualClock()
        with _supervised_deployment(clock) as deployment:
            supervisor = deployment.supervisor
            for i in range(40):
                deployment.cache.put(f"key{i}", f"value{i}", Interval(1, None))
            deployment.cache.fail_node("cache1")
            assert "cache1" not in deployment.cache.transports

            supervisor.pump()  # detects the eviction, enters backoff
            assert supervisor.states["cache1"] == "backoff"
            assert supervisor.stats.deaths_detected == 1
            assert "cache1" not in deployment.cache.transports

            clock.advance(1.0)
            assert supervisor.pump() == 1  # backoff elapsed: respawn
            assert supervisor.states["cache1"] == "serving"
            assert "cache1" in deployment.cache.transports
            assert supervisor.stats.respawns == 1
            # The rejoin re-warmed the node's share of the working set.
            assert deployment.membership.stats.rewarms == 1
            assert deployment.membership.stats.entries_rewarmed > 0
            assert len(deployment.cache.node_keys("cache1")) > 0

    def test_backoff_gates_the_respawn(self):
        clock = ManualClock()
        with _supervised_deployment(clock) as deployment:
            supervisor = deployment.supervisor
            deployment.cache.fail_node("cache1")
            supervisor.pump()
            # Backoff has not elapsed: pumping again must not respawn.
            assert supervisor.pump() == 0
            assert supervisor.states["cache1"] == "backoff"
            clock.advance(1.0)
            assert supervisor.pump() == 1

    def test_circuit_breaker_stops_a_crash_looping_node(self):
        """Pinned acceptance behaviour: a node that keeps dying is
        permanently given up on after max_restarts inside the window."""
        clock = ManualClock()
        with _supervised_deployment(
            clock,
            supervisor_max_restarts=3,
            supervisor_restart_window_seconds=1000.0,
        ) as deployment:
            supervisor = deployment.supervisor
            for _ in range(3):
                deployment.cache.fail_node("cache1")
                supervisor.pump()
                _pump_until_serving(supervisor, clock, "cache1")
            assert supervisor.stats.respawns == 3

            # The fourth death trips the breaker instead of respawning.
            deployment.cache.fail_node("cache1")
            supervisor.pump()
            clock.advance(100.0)
            assert supervisor.pump() == 0
            assert supervisor.states["cache1"] == "gave_up"
            assert supervisor.stats.circuit_breaker_trips == 1

            # Given up means given up: no amount of pumping resurrects it.
            for _ in range(5):
                clock.advance(100.0)
                assert supervisor.pump() == 0
            assert "cache1" not in deployment.cache.transports
            assert supervisor.stats.respawns == 3

            # ...until an operator intervenes.
            supervisor.reset("cache1")
            clock.advance(1.0)
            assert supervisor.pump() == 1
            assert supervisor.states["cache1"] == "serving"

    def test_breaker_window_forgives_old_restarts(self):
        clock = ManualClock()
        with _supervised_deployment(
            clock,
            supervisor_max_restarts=2,
            supervisor_restart_window_seconds=10.0,
        ) as deployment:
            supervisor = deployment.supervisor
            for round_index in range(4):
                deployment.cache.fail_node("cache1")
                supervisor.pump()
                _pump_until_serving(supervisor, clock, "cache1")
                # Space the crashes wider than the window: the breaker's
                # restart count never accumulates and never trips.
                clock.advance(11.0)
            assert supervisor.stats.respawns == 4
            assert supervisor.stats.circuit_breaker_trips == 0

    def test_planned_removal_is_not_resurrected(self):
        clock = ManualClock()
        with _supervised_deployment(clock) as deployment:
            supervisor = deployment.supervisor
            deployment.remove_cache_node("cache2")
            for _ in range(5):
                clock.advance(10.0)
                supervisor.pump()
            assert "cache2" not in deployment.cache.transports
            assert "cache2" not in supervisor.states

    def test_operator_add_is_adopted_not_double_spawned(self):
        clock = ManualClock()
        with _supervised_deployment(clock) as deployment:
            supervisor = deployment.supervisor
            deployment.cache.fail_node("cache1")
            supervisor.pump()
            # An operator beats the supervisor to it.
            deployment.add_cache_node("cache1")
            clock.advance(10.0)
            assert supervisor.pump() == 0
            assert supervisor.states["cache1"] == "serving"
            assert supervisor.stats.respawns == 0

    def test_respawn_failure_climbs_the_backoff_ladder(self):
        clock = ManualClock()
        with _supervised_deployment(clock) as deployment:
            supervisor = deployment.supervisor
            supervisor.jitter_fraction = 0.0
            deployment.cache.fail_node("cache1")
            supervisor.pump()

            real_rejoin = deployment.membership.rejoin
            boom = [2]

            def flaky_rejoin(name, **kwargs):
                if boom[0] > 0:
                    boom[0] -= 1
                    raise OSError("address in use")
                return real_rejoin(name, **kwargs)

            deployment.membership.rejoin = flaky_rejoin
            delays = []
            for _ in range(3):
                clock.advance(100.0)
                before = supervisor._nodes["cache1"].next_attempt_at
                supervisor.pump()
                after = supervisor._nodes["cache1"].next_attempt_at
                delays.append(after - clock.now())
                if supervisor.states["cache1"] == "serving":
                    break
            assert supervisor.states["cache1"] == "serving"
            assert supervisor.stats.respawn_failures == 2
            # Each failed spawn pushed the next attempt further out.
            assert delays[1] > delays[0] > 0

    def test_gossip_rejoin_beats_the_tombstone(self):
        clock = ManualClock()
        with _supervised_deployment(
            clock,
            gossip=True,
            gossip_suspect_seconds=0.5,
            gossip_confirm_seconds=1.0,
        ) as deployment:
            supervisor = deployment.supervisor
            deployment.cache.fail_node("cache1")
            # Let gossip notice, confirm, and tombstone the death.
            for _ in range(8):
                clock.advance(0.5)
                try:
                    deployment.housekeeping()
                except HousekeepingError:
                    pass
            _pump_until_serving(supervisor, clock, "cache1")
            # Gossip must not re-kill the reborn node: run several more
            # rounds and confirm it stays in the ring.
            for _ in range(8):
                clock.advance(0.5)
                deployment.housekeeping()
            assert "cache1" in deployment.cache.transports
            assert supervisor.states["cache1"] == "serving"


# ----------------------------------------------------------------------
# Housekeeping stage isolation (satellite b)
# ----------------------------------------------------------------------
class TestHousekeepingIsolation:
    def test_one_failing_stage_does_not_starve_the_rest(self):
        clock = ManualClock()
        with _supervised_deployment(clock) as deployment:
            ran = []

            def broken_expiry():
                ran.append("expiry")
                raise RuntimeError("pincushion on fire")

            vacuum = deployment.database.vacuum
            deployment.pincushion.expire_old_snapshots = broken_expiry
            deployment.database.vacuum = lambda: ran.append("vacuum") or vacuum()

            # Kill a node so the supervisor stage has real work to do.
            deployment.cache.fail_node("cache1")
            deployment.supervisor.pump()
            clock.advance(1.0)

            with pytest.raises(HousekeepingError) as excinfo:
                deployment.housekeeping()
            # The failure is reported...
            assert set(excinfo.value.failures) == {"expire_old_snapshots"}
            assert "pincushion on fire" in str(excinfo.value)
            # ...and every later stage still ran: vacuum executed and the
            # supervisor respawned the dead node in the same pass.
            assert ran == ["expiry", "vacuum"]
            assert "cache1" in deployment.cache.transports

    def test_multiple_failures_are_all_collected(self):
        with _supervised_deployment() as deployment:
            deployment.pincushion.expire_old_snapshots = _raise_runtime
            deployment.database.vacuum = _raise_runtime
            with pytest.raises(HousekeepingError) as excinfo:
                deployment.housekeeping()
            assert set(excinfo.value.failures) == {
                "expire_old_snapshots",
                "vacuum",
            }

    def test_clean_housekeeping_raises_nothing(self):
        with _supervised_deployment() as deployment:
            deployment.housekeeping()


def _raise_runtime():
    raise RuntimeError("boom")


# ----------------------------------------------------------------------
# Retry policy and deadline propagation
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_idempotent_read_retries_to_success(self):
        policy = RetryPolicy(max_attempts=3, base_backoff_seconds=0.0)
        attempts = [0]

        def flaky():
            attempts[0] += 1
            if attempts[0] < 3:
                raise CacheNodeUnreachableError("transient")
            return "value"

        import random as _random

        result = policy.run(
            "lookup",
            flaky,
            retry_on=(CacheNodeUnreachableError,),
            rng=_random.Random(0),
        )
        assert result == "value"
        assert attempts[0] == 3

    def test_non_idempotent_ops_never_retry(self):
        assert "put" not in IDEMPOTENT_OPS
        assert "invalidate_tags" not in IDEMPOTENT_OPS
        policy = RetryPolicy(max_attempts=5, base_backoff_seconds=0.0)
        attempts = [0]

        def failing():
            attempts[0] += 1
            raise CacheNodeUnreachableError("down")

        import random as _random

        with pytest.raises(CacheNodeUnreachableError):
            policy.run(
                "put",
                failing,
                retry_on=(CacheNodeUnreachableError,),
                rng=_random.Random(0),
            )
        assert attempts[0] == 1

    def test_retries_stop_at_the_propagated_deadline(self):
        policy = RetryPolicy(max_attempts=10, base_backoff_seconds=0.05)
        attempts = [0]

        def failing():
            attempts[0] += 1
            raise CacheNodeUnreachableError("down")

        import random as _random

        started = time.monotonic()
        with deadline_scope(started + 0.1):
            with pytest.raises(CacheNodeUnreachableError):
                policy.run(
                    "lookup",
                    failing,
                    retry_on=(CacheNodeUnreachableError,),
                    rng=_random.Random(0),
                )
        elapsed = time.monotonic() - started
        assert elapsed < 1.0  # nowhere near 10 full backoffs
        assert attempts[0] < 10

    def test_cluster_read_never_exceeds_its_deadline(self):
        """Acceptance: a routed read against dead replicas returns (as a
        degraded miss) within the per-op budget plus scheduling slop."""
        deployment = TxCacheDeployment(
            cache_nodes=2,
            transport="socket-pipelined",
            replication_factor=2,
            rpc_timeout_seconds=5.0,
            retry_policy=RetryPolicy(
                max_attempts=3, deadline_seconds=1.0, base_backoff_seconds=0.05
            ),
            clock=SystemClock(),
            failure_threshold=1000,  # keep the corpses routable
        )
        fault = FaultInjector(deployment.cache)
        try:
            deployment.cache.put("key", "value", Interval(1, None))
            for name in list(deployment.cache.transports):
                fault.partition(name)
            started = time.monotonic()
            result = deployment.cache.lookup("key", 1, 1)
            elapsed = time.monotonic() - started
            assert not result.hit and result.degraded
            assert elapsed < 2.5  # 1s budget + backoffs/slop, not 5s timeouts
        finally:
            deployment.shutdown()

    def test_flaky_node_is_healed_by_retry_not_evicted(self):
        """One transient failure per op stays below any eviction threshold
        because the retry succeeds and notes the node healthy again."""
        deployment = TxCacheDeployment(
            cache_nodes=2,
            transport="inprocess",
            replication_factor=1,
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_seconds=0.0),
        )
        try:
            cluster = deployment.cache
            cluster.put("key", "value", Interval(1, None))
            name = cluster.replicas_for("key")[0]
            inner = cluster._transports[name]

            class FlakyOnce:
                def __init__(self, inner):
                    self._inner = inner
                    self.failures_left = 1

                def lookup(self, *args, **kwargs):
                    if self.failures_left > 0:
                        self.failures_left -= 1
                        raise CacheNodeUnreachableError("transient blip")
                    return self._inner.lookup(*args, **kwargs)

                def __getattr__(self, attr):
                    return getattr(self._inner, attr)

            cluster._transports[name] = FlakyOnce(inner)
            result = cluster.lookup("key", 1, 1)
            assert result.hit and result.value == "value"
            assert cluster.health.nodes_evicted == 0
            assert name in cluster.transports
        finally:
            deployment.shutdown()


# ----------------------------------------------------------------------
# Error taxonomy (satellite a)
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_connect_refused_is_a_connect_error(self):
        import socket as _socket

        probe = _socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with pytest.raises(CacheNodeConnectError) as excinfo:
            # The transport dials eagerly; a refused port surfaces as the
            # connect-variant either here or on the first RPC.
            SocketTransport(
                ("127.0.0.1", port), name="ghost", connect_timeout_seconds=1.0
            ).watermark()
        # The taxonomy still is-a CacheNodeUnreachableError (old handlers
        # keep working) and names the address it was dialling.
        assert isinstance(excinfo.value, CacheNodeUnreachableError)
        assert excinfo.value.node is not None

    def test_expired_deadline_is_a_timeout_error(self):
        deployment = TxCacheDeployment(
            cache_nodes=1, transport="socket-pipelined", clock=SystemClock()
        )
        try:
            transport = deployment.cache._transports["cache0"]
            with deadline_scope(time.monotonic() - 1.0):
                with pytest.raises(CacheNodeTimeoutError) as excinfo:
                    transport.lookup("key", 1, 1)
            assert isinstance(excinfo.value, CacheNodeUnreachableError)
            assert excinfo.value.op == "lookup"
            # An expired deadline is the caller's condition, not the
            # node's: the connection must still work afterwards.
            assert transport.watermark() >= 0
        finally:
            deployment.shutdown()


# ----------------------------------------------------------------------
# Real SIGKILL against socket-process children
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    "socket-process" not in transports_under_test(),
    reason="socket-process transport not under test",
)
class TestProcessRecovery:
    def _deployment(self, **overrides):
        settings = dict(
            clock=SystemClock(),
            cache_nodes=3,
            transport="socket-process",
            replication_factor=2,
            failure_threshold=2,
            rpc_timeout_seconds=2.0,
            gossip=True,
            gossip_suspect_seconds=0.3,
            gossip_confirm_seconds=0.6,
            background_maintenance=True,
            maintenance_ops_per_interval=256,
            maintenance_bytes_per_interval=2 << 20,
            maintenance_interval_seconds=0.02,
            supervision=True,
            supervisor_backoff_base_seconds=0.05,
        )
        settings.update(overrides)
        return TxCacheDeployment(**settings)

    def _housekeep_until(self, deployment, predicate, timeout=30.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            try:
                deployment.housekeeping()
            except HousekeepingError:
                pass  # a stage tripping over the corpse is expected
            if predicate():
                return
            time.sleep(0.02)
        raise AssertionError("condition not reached before timeout")

    def test_sigkilled_node_returns_to_serving_with_its_keys(self):
        deployment = self._deployment()
        fault = FaultInjector(deployment.cache)
        try:
            keys = 60
            for i in range(keys):
                deployment.cache.put(f"key{i}", f"value{i}", Interval(1, None))
            victim = "cache1"
            fault.kill(victim)
            assert deployment.cache.processes[victim].exitcode is not None

            supervisor = deployment.supervisor
            self._housekeep_until(
                deployment,
                lambda: supervisor.states.get(victim) == "serving"
                and victim in deployment.cache.transports,
            )
            # Drain the budgeted re-warm, then the full working set must be
            # servable again — including from the reborn node.
            self._housekeep_until(
                deployment,
                lambda: deployment.membership.plane.idle,
            )
            hits = sum(
                1
                for i in range(keys)
                if deployment.cache.lookup(f"key{i}", 1, 1).hit
            )
            assert hits == keys
            assert deployment.membership.stats.entries_rewarmed > 0
            assert len(deployment.cache.node_keys(victim)) > 0
            assert supervisor.stats.respawns == 1
        finally:
            deployment.shutdown()

    def test_one_snapshot_invariant_across_kill_and_respawn(self):
        deployment = self._deployment()
        fault = FaultInjector(deployment.cache)
        try:
            harness = ConsistencyHarness(deployment, seed=7)
            harness.run(30)
            fault.kill("cache1")
            stop = threading.Event()

            def timer():
                while not stop.is_set():
                    try:
                        deployment.housekeeping()
                    except HousekeepingError:
                        pass
                    stop.wait(0.02)

            pumper = threading.Thread(target=timer)
            pumper.start()
            try:
                harness.run(120)  # crash, respawn, and re-warm mid-workload
            finally:
                stop.set()
                pumper.join(timeout=10)
            assert deployment.supervisor.stats.respawns >= 1
            assert "cache1" in deployment.cache.transports
            # R=2 zero-loss: no read ever degraded to a synthetic miss.
            assert deployment.cache.health.degraded_lookups == 0
        finally:
            deployment.shutdown()

    def test_sigkill_fails_inflight_pipelined_rpcs_promptly(self):
        """Satellite c: pending ResponseSlots on the mux connection are
        poisoned promptly (no rpc_timeout wait) and the routed read then
        recovers on the replica within the deadline."""
        deployment = self._deployment(
            simulated_rpc_latency_seconds=0.25,
            rpc_timeout_seconds=10.0,
            supervision=False,  # isolate the failure path from respawn
            gossip=False,
            background_maintenance=False,
        )
        try:
            cluster = deployment.cache
            for i in range(20):
                cluster.put(f"key{i}", f"value{i}", Interval(1, None))
            victim = "cache1"
            transport = cluster._transports[victim]

            results = []

            def inflight(index):
                started = time.monotonic()
                try:
                    transport.lookup(f"key{index}", 1, 1)
                    results.append(("ok", time.monotonic() - started))
                except CacheNodeUnreachableError as exc:
                    results.append((exc, time.monotonic() - started))

            workers = [
                threading.Thread(target=inflight, args=(i,)) for i in range(4)
            ]
            for worker in workers:
                worker.start()
            time.sleep(0.1)  # all four RPCs are now in flight (0.25s RTT)
            killed_at = time.monotonic()
            cluster.processes[victim].kill()
            for worker in workers:
                worker.join(timeout=8)
            assert len(results) == 4
            failures = [entry for entry in results if entry[0] != "ok"]
            # Every in-flight RPC failed, promptly: far sooner than the
            # 10s rpc timeout, because the dead socket poisons all slots.
            assert len(failures) == 4
            assert time.monotonic() - killed_at < 5.0
            for exc, elapsed in failures:
                assert isinstance(exc, CacheNodeUnreachableError)
                assert elapsed < 5.0

            # The routed path now recovers the same reads on the replica,
            # within one op deadline.
            started = time.monotonic()
            result = cluster.lookup("key0", 1, 1)
            assert result.hit and result.value == "value0"
            assert time.monotonic() - started < 5.0
            assert cluster.health.degraded_lookups == 0
        finally:
            deployment.shutdown()
