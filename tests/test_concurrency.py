"""Concurrency suite: the request path under real multi-threaded traffic.

Covers the thread-safety contract of every layer the concurrent request
path crosses — :class:`CacheServer` (one reentrant lock per server), the
:class:`InvalidationBus` (locked subscriber list and ordered delivery), the
:class:`Pincushion` (exact in-use counts), the pooled
:class:`SocketTransport`, and :class:`TxCacheDeployment` lifecycle — plus
the paper's one-snapshot invariant checked from eight threads at once via
:class:`tests.helpers.ConsistencyHarness` under both transports.

The stress tests are deliberately schedule-dependent (that is the point);
they assert invariants, never interleavings.  CI runs this file with
``pytest-timeout`` so a regression that deadlocks cannot hang a runner
silently.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time

import pytest

from repro.cache.netserver import (
    CacheNodeUnreachableError,
    CacheServerProcess,
    SocketTransport,
)
from repro.cache.server import CacheServer
from repro.clock import ManualClock
from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.core.api import ConsistencyMode
from repro.db.invalidation import InvalidationTag
from repro.deployment import TxCacheDeployment
from repro.interval import Interval
from repro.pincushion.pincushion import Pincushion
from tests.helpers import ConsistencyHarness, transports_under_test

THREADS = 8


def run_threads(worker, count=THREADS):
    """Run ``worker(index)`` on ``count`` threads; re-raise the first error."""
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,), name=f"stress-{i}")
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "stress worker wedged (possible deadlock)"
    if errors:
        raise errors[0]


# ----------------------------------------------------------------------
# CacheServer: 8-thread mixed get/put/invalidate over one node
# ----------------------------------------------------------------------
def test_cache_server_mixed_stress_preserves_invariants():
    server = CacheServer(name="stress", capacity_bytes=256 * 1024, clock=ManualClock())
    timestamps = itertools.count(1)
    tag = InvalidationTag("items", "id", "7")

    def worker(index):
        import random

        rng = random.Random(1000 + index)
        for step in range(300):
            key = f"key-{rng.randrange(64)}"
            action = rng.random()
            if action < 0.45:
                lo = rng.randrange(50)
                server.put(key, {"who": index, "step": step}, Interval(lo, lo + 10))
            elif action < 0.60:
                server.put(key, {"who": index}, Interval(rng.randrange(50), None),
                           tags=frozenset({tag}))
            elif action < 0.85:
                result = server.lookup(key, 0, 60)
                if result.hit:
                    assert result.value is not None
            elif action < 0.95:
                server.probe(key, 0, 60)
            else:
                server.process_invalidation(
                    InvalidationMessage(timestamp=next(timestamps), tags=(tag,))
                )

    run_threads(worker)

    # Structural invariants must hold exactly after arbitrary interleaving.
    stats = server.stats
    assert stats.lookups == stats.hits + stats.misses
    expected_bytes = sum(
        entry.size for key in server.keys() for entry in server.versions_of(key)
    )
    assert server.used_bytes == expected_bytes
    assert server.used_bytes <= server.capacity_bytes
    # Every put either inserted or was rejected — no third outcome.
    assert stats.insertions + stats.rejected_insertions > 0


# ----------------------------------------------------------------------
# Cluster: 8 threads x ConsistencyHarness, replicated, both transports
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", transports_under_test())
def test_cluster_stress_one_snapshot_invariant(transport):
    """The paper's core invariant, checked from every thread concurrently.

    Eight harnesses (one per thread, each with its own TxCacheClient and
    RNG) share one deployment and one ``state`` table over a replicated
    cluster.  Every read-only transaction must observe exactly one database
    state, whichever thread, replica, or transport served it; a single
    mixed-version read raises ConsistencyViolation and fails the test.
    """
    deployment = TxCacheDeployment(
        cache_nodes=3,
        cache_capacity_bytes_per_node=2 * 1024 * 1024,
        transport=transport,
        replication_factor=2,
        mode=ConsistencyMode.CONSISTENT,
    )
    try:
        harnesses = [
            ConsistencyHarness(deployment, seed=100 + i, create_table=(i == 0))
            for i in range(THREADS)
        ]

        def worker(index):
            harnesses[index].run(steps=40)

        run_threads(worker)
        total_reads = sum(h.reads for h in harnesses)
        total_writes = sum(h.writes for h in harnesses)
        assert total_reads > 0 and total_writes > 0
    finally:
        deployment.shutdown()


@pytest.mark.parametrize("transport", transports_under_test())
def test_single_server_cluster_stress(transport):
    """Same invariant with every key on one node (maximum lock contention)."""
    deployment = TxCacheDeployment(
        cache_nodes=1,
        cache_capacity_bytes_per_node=2 * 1024 * 1024,
        transport=transport,
    )
    try:
        harnesses = [
            ConsistencyHarness(deployment, seed=500 + i, create_table=(i == 0))
            for i in range(THREADS)
        ]
        run_threads(lambda index: harnesses[index].run(steps=30))
        assert sum(h.reads for h in harnesses) > 0
    finally:
        deployment.shutdown()


# ----------------------------------------------------------------------
# InvalidationBus: subscribe/unsubscribe racing an in-flight publish
# ----------------------------------------------------------------------
class _RecordingSubscriber:
    def __init__(self):
        self.received = []

    def process_invalidation(self, message):
        self.received.append(message.timestamp)


def test_bus_subscribe_unsubscribe_race_with_publish():
    """Regression: churning subscribers must never corrupt a delivery.

    Before the bus took a lock, a subscribe/unsubscribe landing between the
    subscriber-list snapshot and delivery could mutate the list mid-publish
    (or double-deliver through a stale snapshot).  A stable subscriber must
    see every message exactly once, in timestamp order, no matter how hard
    other threads churn the membership.
    """
    bus = InvalidationBus(synchronous=True)
    stable = _RecordingSubscriber()
    bus.subscribe(stable)
    total = 600
    stop = threading.Event()

    def churn(index):
        churner = _RecordingSubscriber()
        while not stop.is_set():
            bus.subscribe(churner)
            bus.unsubscribe(churner)

    churners = [
        threading.Thread(target=churn, args=(i,), daemon=True) for i in range(4)
    ]
    for thread in churners:
        thread.start()
    try:
        for timestamp in range(1, total + 1):
            bus.publish(InvalidationMessage(timestamp=timestamp))
    finally:
        stop.set()
        for thread in churners:
            thread.join(timeout=10)
            assert not thread.is_alive()

    assert stable.received == list(range(1, total + 1))


def test_bus_concurrent_publishers_stay_ordered():
    """Publishers racing for timestamps must serialize, never interleave."""
    bus = InvalidationBus(synchronous=True)
    subscriber = _RecordingSubscriber()
    bus.subscribe(subscriber)
    counter = itertools.count(1)
    publish_lock = threading.Lock()

    def worker(index):
        for _ in range(200):
            # Allocation and publish must be atomic together — exactly what
            # Database.commit does under its commit lock.
            with publish_lock:
                bus.publish(InvalidationMessage(timestamp=next(counter)))

    run_threads(worker, count=4)
    assert subscriber.received == sorted(subscriber.received)
    assert len(subscriber.received) == 800


# ----------------------------------------------------------------------
# Pincushion: exact reference counts under contention
# ----------------------------------------------------------------------
def test_pincushion_refcounts_exact_under_contention():
    clock = ManualClock()
    pincushion = Pincushion(clock=clock, expiry_seconds=0.0)
    pincushion.register(1, wallclock=clock.now(), in_use=False)

    def worker(index):
        for _ in range(500):
            pincushion.register(1, wallclock=0.0, in_use=True)
            pincushion.release([1])

    run_threads(worker)
    snapshot = pincushion.snapshot(1)
    assert snapshot is not None
    # Every register was balanced by a release; a lost update would strand
    # the count above zero and pin the snapshot forever.
    assert snapshot.in_use == 0
    clock.advance(10.0)
    assert pincushion.expire_old_snapshots() == [1]


# ----------------------------------------------------------------------
# SocketTransport pool
# ----------------------------------------------------------------------
def test_socket_transport_dials_lazily_and_caps_connections():
    server = CacheServer(name="pool", clock=ManualClock())
    with CacheServerProcess(server, simulated_latency_seconds=0.005) as process:
        transport = SocketTransport(process.address, pool_size=3)
        try:
            # Construction dials exactly one connection (the ping).
            assert len(transport._idle) == 1

            barrier = threading.Barrier(6)

            def worker(index):
                barrier.wait()
                for _ in range(5):
                    transport.probe(f"k{index}", 0, 10)

            run_threads(worker, count=6)
            # Six threads shared at most pool_size connections.
            with transport._lock:
                assert 1 <= len(transport._idle) <= 3
        finally:
            transport.close()


def test_socket_transport_sets_tcp_nodelay():
    server = CacheServer(name="nagle", clock=ManualClock())
    with CacheServerProcess(server) as process:
        transport = SocketTransport(process.address)
        try:
            sock = transport._idle[0]
            assert sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0
        finally:
            transport.close()


def test_socket_transport_read_timeout_surfaces_as_unreachable():
    """A hung node must fail the RPC within the timeout, not block forever."""
    listener = socket.create_server(("127.0.0.1", 0))
    try:
        address = listener.getsockname()[:2]
        # Nothing ever accepts/responds beyond the TCP handshake: the
        # connection succeeds, the read must time out.
        transport = SocketTransport.__new__(SocketTransport)
        transport.address = address
        transport.pool_size = 1
        transport.pipelined = False
        transport.timeout_seconds = 0.2
        transport.connect_timeout_seconds = 0.5
        transport._lock = threading.Lock()
        transport._slots = threading.BoundedSemaphore(1)
        transport._idle = []
        transport.mux_connections = 1
        transport._mux = [None]
        transport._closed = False
        transport.op_counts = {}
        transport._count_lock = threading.Lock()
        transport.name = "hung"
        started = time.perf_counter()
        with pytest.raises(CacheNodeUnreachableError):
            transport._call("ping")
        assert time.perf_counter() - started < 5.0
        transport.close()
    finally:
        listener.close()


def test_socket_transport_close_is_idempotent_and_fails_fast():
    server = CacheServer(name="closing", clock=ManualClock())
    with CacheServerProcess(server) as process:
        transport = SocketTransport(process.address)
        assert transport.probe("k", 0, 10) is False
        transport.close()
        transport.close()  # second close must be a no-op
        with pytest.raises(CacheNodeUnreachableError):
            transport.probe("k", 0, 10)


# ----------------------------------------------------------------------
# Deployment lifecycle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", transports_under_test())
def test_deployment_double_shutdown_is_idempotent(transport):
    deployment = TxCacheDeployment(cache_nodes=2, transport=transport)
    deployment.shutdown()
    deployment.shutdown()  # must not raise
    assert deployment.cache.node_count == 0


@pytest.mark.parametrize("transport", transports_under_test())
def test_shutdown_with_live_clients_does_not_raise(transport):
    """Tearing the cache tier down mid-traffic degrades, never crashes.

    Worker threads keep issuing read-only transactions while the main
    thread shuts the deployment down; a dead cache looks like an empty one
    (reads fall through to the database), so every interaction must still
    succeed.
    """
    from repro.db.query import Eq, Select
    from repro.db.schema import TableSchema

    deployment = TxCacheDeployment(
        cache_nodes=2, cache_capacity_bytes_per_node=1024 * 1024, transport=transport
    )
    deployment.database.create_table(
        TableSchema.build("state", ["id", "version"], primary_key="id")
    )
    deployment.database.bulk_load(
        "state", [{"id": i, "version": 0} for i in range(6)]
    )
    clients = [deployment.client() for _ in range(4)]

    readers_started = threading.Barrier(5)
    worker_errors = []

    def worker(index):
        client = clients[index]
        readers_started.wait()
        for _ in range(200):
            try:
                with client.read_only(staleness=30.0):
                    client.query(Select("state", Eq("id", index % 6)))
            except Exception as exc:  # noqa: BLE001
                worker_errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    readers_started.wait()
    deployment.shutdown()  # mid-traffic
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    deployment.shutdown()  # and again, after the dust settles
    assert worker_errors == []
