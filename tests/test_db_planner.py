"""Tests for access-method selection and its invalidation tags."""

from __future__ import annotations

from repro.db.invalidation import InvalidationTag
from repro.db.planner import IndexEqualityPath, IndexRangePath, SeqScanPath, plan_select
from repro.db.query import And, Eq, Func, In, Not, Or, Range, Select
from repro.db.table import Table
from tests.helpers import simple_schema


def table():
    return Table(simple_schema())


class TestPlanSelection:
    def test_eq_on_primary_key_uses_index(self):
        path = plan_select(Select("users", Eq("id", 3)), table())
        assert isinstance(path, IndexEqualityPath)
        assert path.column == "id"
        assert path.keys == (3,)

    def test_eq_on_secondary_index(self):
        path = plan_select(Select("users", Eq("name", "bob")), table())
        assert isinstance(path, IndexEqualityPath)
        assert path.column == "name"

    def test_eq_on_unindexed_column_seq_scans(self):
        path = plan_select(Select("users", Eq("score", 1.0)), table())
        assert isinstance(path, SeqScanPath)

    def test_in_on_indexed_column(self):
        path = plan_select(Select("users", In("id", [1, 2, 3])), table())
        assert isinstance(path, IndexEqualityPath)
        assert path.keys == (1, 2, 3)

    def test_range_on_ordered_index(self):
        path = plan_select(Select("users", Range("region", 1, 2)), table())
        assert isinstance(path, IndexRangePath)
        assert (path.lo, path.hi) == (1, 2)

    def test_range_on_hash_index_seq_scans(self):
        path = plan_select(Select("users", Range("name", "a", "b")), table())
        assert isinstance(path, SeqScanPath)

    def test_conjunction_prefers_equality(self):
        predicate = And(Range("region", 0, 2), Eq("id", 5))
        path = plan_select(Select("users", predicate), table())
        assert isinstance(path, IndexEqualityPath)

    def test_conjunction_falls_back_to_range(self):
        predicate = And(Range("region", 0, 2), Eq("score", 1.0))
        path = plan_select(Select("users", predicate), table())
        assert isinstance(path, IndexRangePath)

    def test_or_uses_seq_scan(self):
        path = plan_select(Select("users", Or(Eq("id", 1), Eq("id", 2))), table())
        assert isinstance(path, SeqScanPath)

    def test_not_uses_seq_scan(self):
        path = plan_select(Select("users", Not(Eq("id", 1))), table())
        assert isinstance(path, SeqScanPath)

    def test_func_uses_seq_scan(self):
        path = plan_select(Select("users", Func(lambda row: True)), table())
        assert isinstance(path, SeqScanPath)

    def test_no_predicate_uses_seq_scan(self):
        path = plan_select(Select("users"), table())
        assert isinstance(path, SeqScanPath)


class TestPlanTags:
    def test_equality_path_has_precise_tags(self):
        path = plan_select(Select("users", Eq("name", "alice")), table())
        assert path.tags() == frozenset({InvalidationTag.key("users", "name", "alice")})

    def test_in_path_has_one_tag_per_key(self):
        path = plan_select(Select("users", In("id", [1, 2])), table())
        assert path.tags() == frozenset(
            {InvalidationTag.key("users", "id", 1), InvalidationTag.key("users", "id", 2)}
        )

    def test_range_path_has_wildcard_tag(self):
        path = plan_select(Select("users", Range("region", 0, 5)), table())
        assert path.tags() == frozenset({InvalidationTag.wildcard("users")})

    def test_seq_scan_has_wildcard_tag(self):
        path = plan_select(Select("users"), table())
        assert path.tags() == frozenset({InvalidationTag.wildcard("users")})

    def test_kind_labels(self):
        t = table()
        assert plan_select(Select("users", Eq("id", 1)), t).kind == "index_eq"
        assert plan_select(Select("users", Range("region", 0, 1)), t).kind == "index_range"
        assert plan_select(Select("users"), t).kind == "seq_scan"
