"""Deterministic cluster simulation harness for the gossip membership plane.

Real multi-node gossip runs on wall clocks, sockets, and thread schedulers —
none of which a regression test can replay.  :class:`ClusterSimulator` runs N
in-process :class:`repro.cache.gossip.GossipAgent` instances on ONE virtual
:class:`repro.clock.ManualClock` and a discrete event heap:

* every node gossips on its own schedule (``gossip_interval`` with seeded
  start jitter), picking push-pull peers from one seeded RNG;
* each exchange is two *messages* (request and reply), and each message
  independently suffers the configured seeded delay distribution, loss
  probability, crash blackouts, and partition schedule;
* faults are declared up front — :meth:`crash_at`, :meth:`restart_at`,
  :meth:`partition_between` — and applied at virtual times, so a scenario
  is a pure function of ``(node count, seed, schedule)``.

Determinism is the point: the same constructor arguments produce the same
event order, the same record tables, and the same :meth:`fingerprint`, every
run, on every machine.  The simulator also keeps a human-readable
:attr:`trace` of every status transition each agent adopts
(``"t=12.50 cache1: cache3 alive->suspect"``), which doubles as the
determinism witness: two runs are identical iff their traces are.

This is test infrastructure (imported by ``tests/test_simulator.py``), not
shipped code — it lives next to the suites on purpose.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cache.gossip import DEAD, LEFT, GossipAgent
from repro.clock import ManualClock

__all__ = ["ClusterSimulator"]


class ClusterSimulator:
    """N gossiping nodes on a virtual clock with a seeded fault schedule."""

    def __init__(
        self,
        nodes: int = 5,
        seed: int = 0,
        gossip_interval: float = 0.5,
        suspect_timeout: float = 2.0,
        confirm_timeout: float = 4.0,
        fanout: int = 1,
        min_delay: float = 0.01,
        max_delay: float = 0.05,
        loss_rate: float = 0.0,
    ) -> None:
        if nodes < 2:
            raise ValueError("a cluster simulation needs at least 2 nodes")
        self.clock = ManualClock()
        self.rng = random.Random(seed)
        self.gossip_interval = gossip_interval
        self.suspect_timeout = suspect_timeout
        self.confirm_timeout = confirm_timeout
        self.fanout = fanout
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.loss_rate = loss_rate
        self.names = [f"node{i}" for i in range(nodes)]
        self.agents: Dict[str, GossipAgent] = {}
        #: Chronological status transitions, the determinism witness.
        self.trace: List[str] = []
        self.messages_sent = 0
        self.messages_dropped = 0
        self._crashed: Set[str] = set()
        #: (start, end, frozenset(group_a), frozenset(group_b)) partitions.
        self._partitions: List[Tuple[float, float, frozenset, frozenset]] = []
        self._events: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        for name in self.names:
            self._spawn_agent(name, incarnation=0)
            # Jittered start so rounds interleave instead of phase-locking.
            self._schedule(self.rng.uniform(0.0, gossip_interval), self._round_fn(name))

    # ------------------------------------------------------------------
    # Schedule declaration (call before run)
    # ------------------------------------------------------------------
    def crash_at(self, time: float, name: str) -> None:
        """Silence ``name`` from ``time`` on: no rounds, all messages lost."""
        self._schedule(time, lambda: self._crash(name))

    def restart_at(self, time: float, name: str) -> None:
        """Bring a crashed ``name`` back with a fresh agent (same identity).

        The reborn agent restarts at incarnation 0 and learns of its own
        suspicion/death from peers; the refutation rule bumps it above the
        tombstone, which is exactly how a rebooted node rejoins SWIM.
        """
        self._schedule(time, lambda: self._restart(name))

    def partition_between(self, start: float, end: float, group_a, group_b) -> None:
        """Drop every message crossing the two groups during [start, end)."""
        self._partitions.append((start, end, frozenset(group_a), frozenset(group_b)))

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_until(self, end_time: float) -> None:
        """Process events in virtual-time order up to ``end_time``."""
        while self._events and self._events[0][0] <= end_time:
            when, _seq, fn = heapq.heappop(self._events)
            if when > self.clock.now():
                self.clock.advance(when - self.clock.now())
            fn()
        if end_time > self.clock.now():
            self.clock.advance(end_time - self.clock.now())

    def live_agents(self) -> Dict[str, GossipAgent]:
        return {
            name: agent
            for name, agent in self.agents.items()
            if name not in self._crashed
        }

    def converged(self) -> bool:
        """Every live agent reports the same epoch token."""
        tokens = {agent.epoch_token() for agent in self.live_agents().values()}
        return len(tokens) == 1

    def epoch_tokens(self) -> Dict[str, str]:
        return {name: agent.epoch_token() for name, agent in self.live_agents().items()}

    def statuses(self, of: str) -> Dict[str, Optional[str]]:
        """How every live agent currently classifies node ``of``."""
        return {name: agent.status_of(of) for name, agent in self.live_agents().items()}

    def fingerprint(self) -> str:
        """A digest of the full run: trace plus final tables.

        Equal fingerprints mean the two runs adopted the same transitions in
        the same order *and* ended in the same state — the determinism
        contract the test suite pins across reruns.
        """
        import hashlib

        tail = sorted(
            (name, agent.view()) for name, agent in self.agents.items()
        )
        payload = "\n".join(self.trace) + "\n" + repr(tail)
        return hashlib.sha1(payload.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _spawn_agent(self, name: str, incarnation: int) -> GossipAgent:
        def on_transition(peer, old, new, observer=name):
            self.trace.append(
                f"t={self.clock.now():.2f} {observer}: {peer} {old or 'new'}->{new}"
            )

        agent = GossipAgent(
            name,
            self.clock,
            peers=[peer for peer in self.names if peer != name],
            suspect_timeout=self.suspect_timeout,
            confirm_timeout=self.confirm_timeout,
            initial_incarnation=incarnation,
            on_transition=on_transition,
        )
        self.agents[name] = agent
        return agent

    def _schedule(self, when: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._events, (when, next(self._seq), fn))

    def _round_fn(self, name: str) -> Callable[[], None]:
        def do_round() -> None:
            if name not in self._crashed:
                agent = self.agents[name]
                agent.tick()
                peers = [
                    peer
                    for peer in self.names
                    if peer != name and agent.status_of(peer) not in (DEAD, LEFT)
                ]
                for _ in range(min(self.fanout, len(peers))):
                    self._send(name, self.rng.choice(peers))
                self._schedule(
                    self.clock.now() + self.gossip_interval, self._round_fn(name)
                )

        return do_round

    def _send(self, src: str, dst: str) -> None:
        """One push-pull exchange: request now, reply after its own flight."""
        digest = self.agents[src].digest()
        self.messages_sent += 1
        if self._lost(src, dst):
            self.messages_dropped += 1
            return
        delay = self.rng.uniform(self.min_delay, self.max_delay)

        def deliver_request() -> None:
            if dst in self._crashed:
                return
            self.agents[dst].receive(digest)
            reply = self.agents[dst].digest()
            self.messages_sent += 1
            if self._lost(dst, src):
                self.messages_dropped += 1
                return
            reply_delay = self.rng.uniform(self.min_delay, self.max_delay)

            def deliver_reply() -> None:
                if src not in self._crashed:
                    self.agents[src].receive(reply)

            self._schedule(self.clock.now() + reply_delay, deliver_reply)

        self._schedule(self.clock.now() + delay, deliver_request)

    def _lost(self, src: str, dst: str) -> bool:
        # The loss draw is consumed unconditionally so that crash/partition
        # schedules do not shift the RNG stream of unrelated links.
        dropped = self.loss_rate > 0 and self.rng.random() < self.loss_rate
        if src in self._crashed or dst in self._crashed:
            return True
        now = self.clock.now()
        for start, end, group_a, group_b in self._partitions:
            if start <= now < end and (
                (src in group_a and dst in group_b)
                or (src in group_b and dst in group_a)
            ):
                return True
        return dropped

    def _crash(self, name: str) -> None:
        self._crashed.add(name)
        self.trace.append(f"t={self.clock.now():.2f} [fault] {name} crashed")

    def _restart(self, name: str) -> None:
        if name not in self._crashed:
            return
        self._crashed.discard(name)
        self.trace.append(f"t={self.clock.now():.2f} [fault] {name} restarted")
        self._spawn_agent(name, incarnation=0)
        self._schedule(self.clock.now() + self.gossip_interval, self._round_fn(name))
