"""Tests for the cache cluster (routing + aggregate behaviour)."""

from __future__ import annotations

import pytest

from repro.cache.cluster import CacheCluster
from repro.clock import ManualClock
from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval


@pytest.fixture
def cluster():
    return CacheCluster(node_count=3, capacity_bytes_per_node=256 * 1024, clock=ManualClock())


class TestRouting:
    def test_put_and_lookup_route_to_same_node(self, cluster):
        keys = [f"key-{i}" for i in range(100)]
        for key in keys:
            cluster.put(key, key.upper(), Interval(0))
        for key in keys:
            assert cluster.lookup(key, 0, 10).value == key.upper()

    def test_keys_spread_across_nodes(self, cluster):
        for i in range(300):
            cluster.put(f"key-{i}", i, Interval(0))
        populated = [s for s in cluster.servers.values() if s.entry_count > 0]
        assert len(populated) == 3

    def test_server_for_is_stable(self, cluster):
        assert cluster.server_for("abc") is cluster.server_for("abc")

    def test_probe_and_was_ever_stored(self, cluster):
        cluster.put("k", 1, Interval(0, 5))
        assert cluster.probe("k", 0, 4)
        assert not cluster.probe("k", 6, 9)
        assert cluster.was_ever_stored("k")
        assert not cluster.was_ever_stored("other")

    def test_add_and_remove_node(self, cluster):
        cluster.add_node("extra", capacity_bytes=1024)
        assert cluster.node_count == 4
        with pytest.raises(ValueError):
            cluster.add_node("extra", capacity_bytes=1024)
        cluster.remove_node("extra")
        assert cluster.node_count == 3


class TestInvalidationFanout:
    def test_all_nodes_receive_invalidations(self):
        bus = InvalidationBus()
        cluster = CacheCluster(node_count=3, clock=ManualClock(), invalidation_bus=bus)
        # Insert still-valid entries on every node.
        for i in range(60):
            cluster.put(f"key-{i}", i, Interval(0), frozenset({InvalidationTag.key("t", "id", i)}))
        bus.publish(InvalidationMessage(timestamp=5, tags=(InvalidationTag.wildcard("t"),)))
        for server in cluster.servers.values():
            assert server.last_invalidation_timestamp == 5
        stats = cluster.aggregate_stats()
        assert stats.entries_invalidated == 60


class TestAggregation:
    def test_aggregate_stats_sums_nodes(self, cluster):
        cluster.put("a", 1, Interval(0))
        cluster.put("b", 2, Interval(0))
        cluster.lookup("a", 0, 5)
        cluster.lookup("missing", 0, 5)
        stats = cluster.aggregate_stats()
        assert stats.insertions == 2
        assert stats.lookups == 2
        assert stats.hits == 1

    def test_capacity_and_usage(self, cluster):
        assert cluster.capacity_bytes == 3 * 256 * 1024
        cluster.put("a", "x" * 500, Interval(0))
        assert cluster.used_bytes > 0
        assert cluster.entry_count == 1

    def test_evict_stale_and_clear(self, cluster):
        cluster.put("a", 1, Interval(0, 3))
        cluster.put("b", 2, Interval(5, 9))
        assert cluster.evict_stale(4) == 1
        cluster.clear()
        assert cluster.entry_count == 0

    def test_reset_stats(self, cluster):
        cluster.put("a", 1, Interval(0))
        cluster.reset_stats()
        assert cluster.aggregate_stats().insertions == 0

    def test_key_distribution_reporting(self, cluster):
        keys = [f"key-{i}" for i in range(90)]
        distribution = cluster.key_distribution(keys)
        assert sum(distribution.values()) == 90
