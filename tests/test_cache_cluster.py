"""Tests for the cache cluster (routing + aggregate behaviour)."""

from __future__ import annotations

import pytest

from repro.cache.cluster import CacheCluster
from repro.cache.server import CacheServerStats
from repro.clock import ManualClock
from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval


@pytest.fixture
def cluster():
    return CacheCluster(node_count=3, capacity_bytes_per_node=256 * 1024, clock=ManualClock())


class TestRouting:
    def test_put_and_lookup_route_to_same_node(self, cluster):
        keys = [f"key-{i}" for i in range(100)]
        for key in keys:
            cluster.put(key, key.upper(), Interval(0))
        for key in keys:
            assert cluster.lookup(key, 0, 10).value == key.upper()

    def test_keys_spread_across_nodes(self, cluster):
        for i in range(300):
            cluster.put(f"key-{i}", i, Interval(0))
        populated = [s for s in cluster.servers.values() if s.entry_count > 0]
        assert len(populated) == 3

    def test_server_for_is_stable(self, cluster):
        assert cluster.server_for("abc") is cluster.server_for("abc")

    def test_probe_and_was_ever_stored(self, cluster):
        cluster.put("k", 1, Interval(0, 5))
        assert cluster.probe("k", 0, 4)
        assert not cluster.probe("k", 6, 9)
        assert cluster.was_ever_stored("k")
        assert not cluster.was_ever_stored("other")

    def test_add_and_remove_node(self, cluster):
        cluster.add_node("extra", capacity_bytes=1024)
        assert cluster.node_count == 4
        with pytest.raises(ValueError):
            cluster.add_node("extra", capacity_bytes=1024)
        cluster.remove_node("extra")
        assert cluster.node_count == 3

    def test_remove_unknown_node_raises(self, cluster):
        """Regression: remove_node used to pop-with-default and silently
        succeed on a typo'd name."""
        with pytest.raises(KeyError):
            cluster.remove_node("no-such-node")
        assert cluster.node_count == 3


class TestInvalidationFanout:
    def test_all_nodes_receive_invalidations(self):
        bus = InvalidationBus()
        cluster = CacheCluster(node_count=3, clock=ManualClock(), invalidation_bus=bus)
        # Insert still-valid entries on every node.
        for i in range(60):
            cluster.put(f"key-{i}", i, Interval(0), frozenset({InvalidationTag.key("t", "id", i)}))
        bus.publish(InvalidationMessage(timestamp=5, tags=(InvalidationTag.wildcard("t"),)))
        for server in cluster.servers.values():
            assert server.last_invalidation_timestamp == 5
        stats = cluster.aggregate_stats()
        assert stats.entries_invalidated == 60


class TestBusMembership:
    def test_remove_node_unsubscribes_from_invalidation_bus(self):
        """Regression: a removed node must stop consuming the stream.

        The cluster used to leave the removed server subscribed, so it kept
        processing every invalidation forever (and kept the object alive)."""
        bus = InvalidationBus()
        cluster = CacheCluster(node_count=3, clock=ManualClock(), invalidation_bus=bus)
        removed_server = cluster.servers["cache1"]
        assert len(bus.subscribers) == 3

        cluster.remove_node("cache1")
        assert len(bus.subscribers) == 2

        bus.publish(InvalidationMessage(timestamp=7, tags=(InvalidationTag.wildcard("t"),)))
        assert removed_server.last_invalidation_timestamp == 0
        assert removed_server.stats.invalidation_messages == 0
        for server in cluster.servers.values():
            assert server.last_invalidation_timestamp == 7

    def test_node_added_after_attach_is_subscribed(self):
        bus = InvalidationBus()
        cluster = CacheCluster(node_count=1, clock=ManualClock(), invalidation_bus=bus)
        extra = cluster.add_node("extra", capacity_bytes=1024)
        bus.publish(InvalidationMessage(timestamp=3, tags=()))
        assert extra.last_invalidation_timestamp == 3

    def test_remove_node_without_bus_is_fine(self, cluster):
        cluster.remove_node("cache0")
        assert cluster.node_count == 2


class TestStatsMerge:
    def test_merge_adds_every_counter(self):
        left = CacheServerStats(lookups=2, hits=1, misses=1, insertions=3)
        right = CacheServerStats(lookups=5, hits=4, misses=1, lru_evictions=2)
        result = left.merge(right)
        assert result is left
        assert left == CacheServerStats(
            lookups=7, hits=5, misses=2, insertions=3, lru_evictions=2
        )

    def test_iadd_is_merge(self):
        total = CacheServerStats()
        total += CacheServerStats(stale_evictions=4, entries_invalidated=2)
        total += CacheServerStats(stale_evictions=1, invalidation_messages=3)
        assert total.stale_evictions == 5
        assert total.entries_invalidated == 2
        assert total.invalidation_messages == 3


class TestAggregation:
    def test_aggregate_stats_sums_nodes(self, cluster):
        cluster.put("a", 1, Interval(0))
        cluster.put("b", 2, Interval(0))
        cluster.lookup("a", 0, 5)
        cluster.lookup("missing", 0, 5)
        stats = cluster.aggregate_stats()
        assert stats.insertions == 2
        assert stats.lookups == 2
        assert stats.hits == 1

    def test_capacity_and_usage(self, cluster):
        assert cluster.capacity_bytes == 3 * 256 * 1024
        cluster.put("a", "x" * 500, Interval(0))
        assert cluster.used_bytes > 0
        assert cluster.entry_count == 1

    def test_evict_stale_and_clear(self, cluster):
        cluster.put("a", 1, Interval(0, 3))
        cluster.put("b", 2, Interval(5, 9))
        assert cluster.evict_stale(4) == 1
        cluster.clear()
        assert cluster.entry_count == 0

    def test_reset_stats(self, cluster):
        cluster.put("a", 1, Interval(0))
        cluster.reset_stats()
        assert cluster.aggregate_stats().insertions == 0

    def test_key_distribution_reporting(self, cluster):
        keys = [f"key-{i}" for i in range(90)]
        distribution = cluster.key_distribution(keys)
        assert sum(distribution.values()) == 90
