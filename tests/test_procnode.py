"""Process-hosted cache nodes: lifecycle, crash supervision, invalidations.

The per-core execution mode (`transport="socket-process"`) runs each cache
node as its own OS process.  What that changes — and what this suite pins:

* **Lifecycle.**  :class:`CacheNodeHost` must hand back a serving address
  before its constructor returns (readiness handshake), shut down to exit
  code 0, surface a crash as a signal exit code, and never leave a zombie
  process or a bound port behind — whether the exit was graceful, SIGKILL,
  or a failed startup.
* **Supervision.**  A SIGKILLed child is indistinguishable from a dead
  network peer: routed reads degrade to misses, the failure counter climbs,
  and the cluster evicts the node through the same suspect → evict path a
  thread-hosted node takes.  With replication, reads fail over to a live
  replica and never degrade at all.
* **Invalidation delivery.**  The in-process ``InvalidationBus`` cannot call
  into another address space, so process-hosted nodes receive the stream
  over the wire (the ``invalidate_tags`` op).  Wire delivery — synchronous
  per message or batched behind ``invalidation_batching=True`` and flushed
  by housekeeping — must truncate exactly what in-process delivery
  truncates, watermark movement included.
"""

from __future__ import annotations

import os
import signal
import socket

import pytest

from repro.cache.cluster import CacheCluster
from repro.cache.netserver import CacheNodeUnreachableError, SocketTransport
from repro.cache.procnode import CacheNodeHost
from repro.clock import ManualClock
from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.db.invalidation import InvalidationTag
from repro.deployment import TxCacheDeployment
from repro.interval import Interval
from tests.helpers import node_views


def _port_refuses(address) -> bool:
    """True when nothing is listening at ``address`` any more."""
    with socket.socket() as probe:
        probe.settimeout(0.5)
        return probe.connect_ex(tuple(address)) != 0


# ----------------------------------------------------------------------
# Host lifecycle
# ----------------------------------------------------------------------
class TestHostLifecycle:
    def test_ready_handshake_then_serves_traffic(self):
        with CacheNodeHost("n0", capacity_bytes=1 << 20) as host:
            assert host.running
            assert host.pid is not None and host.pid != os.getpid()
            assert host.exitcode is None  # still up
            transport = SocketTransport(host.address, pipelined=True)
            try:
                assert transport.name == "n0"  # learned over the wire
                assert transport.put("k", {"v": 1}, Interval(0)) is True
                result = transport.lookup("k", 0, 5)
                assert result.hit and result.value == {"v": 1}
            finally:
                transport.close()

    def test_graceful_shutdown_exits_zero_and_frees_the_port(self):
        host = CacheNodeHost("n1", capacity_bytes=1 << 20)
        address = host.address
        host.shutdown()
        assert not host.running
        assert host.exitcode == 0
        assert _port_refuses(address)
        host.shutdown()  # idempotent
        assert host.exitcode == 0

    def test_kill_surfaces_the_signal_and_shutdown_reaps_the_corpse(self):
        host = CacheNodeHost("n2", capacity_bytes=1 << 20)
        pid = host.pid
        host.kill()
        assert host.exitcode == -signal.SIGKILL
        host.shutdown()  # reaping a corpse must not raise or hang
        assert host.exitcode == -signal.SIGKILL
        # The child was joined: its pid is gone from the process table.
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)

    def test_failed_bind_is_a_constructor_error_not_a_hung_dial(self):
        with socket.socket() as squatter:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            taken_port = squatter.getsockname()[1]
            with pytest.raises(CacheNodeUnreachableError, match="failed to start"):
                CacheNodeHost("n3", port=taken_port, capacity_bytes=1 << 20)


# ----------------------------------------------------------------------
# Cluster supervision: crash → degrade → evict, failover, clean teardown
# ----------------------------------------------------------------------
class TestClusterSupervision:
    def test_sigkill_mid_run_degrades_misses_then_evicts(self):
        cluster = CacheCluster(
            node_count=3,
            capacity_bytes_per_node=1 << 20,
            clock=ManualClock(),
            transport="socket-process",
            failure_threshold=2,
        )
        try:
            keys = [f"key-{i}" for i in range(30)]
            for i, key in enumerate(keys):
                cluster.put(key, i, Interval(0))
            victim = cluster.ring.node_for(keys[0])
            corpse = cluster.processes[victim]
            corpse.kill()  # SIGKILL, no warning: a real node crash
            assert corpse.exitcode == -signal.SIGKILL
            # Routed reads degrade to misses (never raise) until the failure
            # threshold evicts the dead node from the ring.
            while victim in cluster.ring:
                result = cluster.lookup(keys[0], 0, 5)
                assert not result.hit
            assert cluster.health.degraded_lookups > 0
            assert cluster.health.nodes_evicted == 1
            # Survivors serve the remapped slice again.
            cluster.put(keys[0], "rewarmed", Interval(0))
            assert cluster.lookup(keys[0], 0, 5).value == "rewarmed"
        finally:
            cluster.close()

    def test_replicated_reads_fail_over_a_killed_process(self):
        cluster = CacheCluster(
            node_count=3,
            capacity_bytes_per_node=1 << 20,
            clock=ManualClock(),
            transport="socket-process",
            replication_factor=2,
            failure_threshold=1000,  # keep the corpse in the ring: pure failover
        )
        try:
            keys = [f"key-{i}" for i in range(40)]
            for i, key in enumerate(keys):
                cluster.put(key, i, Interval(0))
            victim = cluster.ring.nodes[0]
            primaries = [k for k in keys if cluster.replicas_for(k)[0] == victim]
            assert primaries, "some key should route to the victim first"
            cluster.processes[victim].kill()
            for key in primaries:
                result = cluster.lookup(key, 0, 5)
                assert result.hit, key  # the replica answered
            assert cluster.health.replica_served_lookups >= len(primaries)
        finally:
            cluster.close()

    def test_close_reaps_every_child_no_leaked_process_or_port(self):
        cluster = CacheCluster(
            node_count=3,
            capacity_bytes_per_node=1 << 20,
            clock=ManualClock(),
            transport="socket-process",
        )
        hosts = dict(cluster.processes)
        assert len(hosts) == 3
        pids = {name: host.pid for name, host in hosts.items()}
        addresses = {name: host.address for name, host in hosts.items()}
        cluster.close()
        for name, host in hosts.items():
            assert not host.running, name
            assert host.exitcode == 0, name  # graceful, not escalated
            assert _port_refuses(addresses[name]), name
            with pytest.raises(ProcessLookupError):
                os.kill(pids[name], 0)

    def test_fail_node_stops_the_process_and_eviction_forgets_it(self):
        cluster = CacheCluster(
            node_count=2,
            capacity_bytes_per_node=1 << 20,
            clock=ManualClock(),
            transport="socket-process",
            failure_threshold=2,
        )
        try:
            victim = cluster.ring.nodes[0]
            host = cluster.processes[victim]
            cluster.fail_node(victim)
            # The process dies at once; routing still points at the corpse
            # (exactly like a real crash) until threshold eviction.
            assert not host.running
            assert host.exitcode == 0  # pipe shutdown, not an escalation
            assert victim in cluster.ring
            routed = next(
                f"key-{i}" for i in range(1000)
                if cluster.ring.node_for(f"key-{i}") == victim
            )
            while victim in cluster.ring:
                cluster.lookup(routed, 0, 5)
            assert victim not in cluster.processes
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# Wire-delivered invalidations: truncation parity with in-process delivery
# ----------------------------------------------------------------------
def _fill_tagged(cluster, count=40):
    keys = [f"key-{i}" for i in range(count)]
    for i, key in enumerate(keys):
        tags = frozenset({InvalidationTag.key("items", "id", i % 8)})
        cluster.put(key, {"i": i}, Interval(0), tags)
    return keys


def _invalidation_state(cluster, keys):
    """Every node's truncation outcome: entry intervals + watermark."""
    state = {}
    for name, view in node_views(cluster).items():
        entries = {
            key: [
                (entry.interval.lo, entry.interval.hi, entry.still_valid)
                for entry in view.versions_of(key)
            ]
            for key in keys
        }
        state[name] = (entries, view.last_invalidation_timestamp)
    return state


MESSAGES = [
    InvalidationMessage(timestamp=4, tags=(InvalidationTag.key("items", "id", 1),)),
    InvalidationMessage(timestamp=6, tags=()),  # watermark-only advance
    InvalidationMessage(timestamp=9, tags=(InvalidationTag.wildcard("items"),)),
]


class TestWireInvalidationParity:
    def _run(self, transport, batching=False):
        bus = InvalidationBus()
        cluster = CacheCluster(
            node_count=3,
            capacity_bytes_per_node=1 << 20,
            clock=ManualClock(),
            invalidation_bus=bus,
            transport=transport,
            replication_factor=2,
            invalidation_batching=batching,
        )
        try:
            keys = _fill_tagged(cluster)
            for message in MESSAGES:
                bus.publish(message)
            if batching:
                delivered = cluster.flush_invalidations()
                assert delivered == len(MESSAGES) * cluster.node_count
            return _invalidation_state(cluster, keys)
        finally:
            cluster.close()

    def test_synchronous_wire_delivery_matches_inprocess_truncation(self):
        assert self._run("socket-process") == self._run("inprocess")

    def test_batched_flush_matches_synchronous_delivery(self):
        # Batching buffers the stream (tag messages AND watermark advances,
        # in order) until the flush; afterwards every node must be in the
        # exact state synchronous delivery produces.
        assert self._run("socket-process", batching=True) == self._run("inprocess")

    def test_unflushed_batch_delivers_nothing(self):
        bus = InvalidationBus()
        cluster = CacheCluster(
            node_count=2,
            capacity_bytes_per_node=1 << 20,
            clock=ManualClock(),
            invalidation_bus=bus,
            transport="socket-process",
            invalidation_batching=True,
        )
        try:
            _fill_tagged(cluster, count=10)
            bus.publish(MESSAGES[-1])
            for view in node_views(cluster).values():
                assert view.last_invalidation_timestamp == 0
            assert cluster.flush_invalidations() == cluster.node_count
            for view in node_views(cluster).values():
                assert view.last_invalidation_timestamp == MESSAGES[-1].timestamp
            assert cluster.flush_invalidations() == 0  # drained
        finally:
            cluster.close()


def test_deployment_housekeeping_flushes_batched_invalidations():
    from repro.db.schema import TableSchema

    with TxCacheDeployment(
        cache_nodes=2, transport="socket-process", invalidation_batching=True
    ) as deployment:
        deployment.database.create_table(
            TableSchema.build("items", ["id", "value"], primary_key="id")
        )
        deployment.database.bulk_load("items", [{"id": 1, "value": "a"}])
        transaction = deployment.database.begin_rw()
        from repro.db.query import Eq

        transaction.update("items", Eq("id", 1), {"value": "b"})
        timestamp = transaction.commit()
        cluster = deployment.cache
        # The commit's invalidations are buffered, not yet delivered.
        assert all(
            cluster.watermark(name) < timestamp for name in cluster.transports
        )
        deployment.housekeeping()
        assert all(
            cluster.watermark(name) >= timestamp for name in cluster.transports
        )
