"""Tests for the database facade: pinning, vacuum, wall-clock mapping."""

from __future__ import annotations

import pytest

from repro.clock import ManualClock
from repro.db.database import Database
from repro.db.errors import SnapshotTooOldError, UnknownTableError
from repro.db.query import Eq, Select
from tests.helpers import build_database, simple_schema


@pytest.fixture
def db():
    return build_database(rows=5)


def update_user(db, user_id, **changes):
    tx = db.begin_rw()
    tx.update("users", Eq("id", user_id), changes)
    return tx.commit()


class TestSchemaManagement:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ValueError):
            db.create_table(simple_schema())

    def test_unknown_table_raises(self, db):
        with pytest.raises(UnknownTableError):
            db.table("missing")

    def test_bulk_load_counts_rows(self):
        db = Database(clock=ManualClock())
        db.create_table(simple_schema())
        loaded = db.bulk_load(
            "users", [{"id": i, "name": "x", "region": 0, "score": 0.0} for i in range(7)]
        )
        assert loaded == 7
        assert db.table("users").row_count() == 7

    def test_bulk_load_publishes_no_invalidations(self):
        db = Database(clock=ManualClock())
        db.create_table(simple_schema())
        db.bulk_load("users", [{"id": 1, "name": "x", "region": 0, "score": 0.0}])
        assert db.invalidation_bus.last_published_timestamp == -1


class TestTimestamps:
    def test_latest_timestamp_advances_with_commits(self, db):
        assert db.latest_timestamp == 0
        update_user(db, 1, score=1.0)
        assert db.latest_timestamp == 1
        update_user(db, 2, score=2.0)
        assert db.latest_timestamp == 2

    def test_wallclock_of_commit(self):
        clock = ManualClock()
        db = Database(clock=clock)
        db.create_table(simple_schema())
        db.bulk_load("users", [{"id": 1, "name": "x", "region": 0, "score": 0.0}])
        clock.advance(10.0)
        ts = update_user(db, 1, score=1.0)
        assert db.wallclock_of(ts) == pytest.approx(10.0)
        assert db.wallclock_of(0) == pytest.approx(0.0)

    def test_wallclock_of_unknown_timestamp_raises(self, db):
        with pytest.raises(SnapshotTooOldError):
            db.wallclock_of(999)

    def test_newest_timestamp_at_or_before(self):
        clock = ManualClock()
        db = Database(clock=clock)
        db.create_table(simple_schema())
        db.bulk_load("users", [{"id": i, "name": "x", "region": 0, "score": 0.0} for i in range(3)])
        clock.advance(5.0)
        t1 = update_user(db, 0, score=1.0)
        clock.advance(5.0)
        t2 = update_user(db, 1, score=2.0)
        assert db.newest_timestamp_at_or_before(4.0) == 0
        assert db.newest_timestamp_at_or_before(5.0) == t1
        assert db.newest_timestamp_at_or_before(100.0) == t2


class TestPinning:
    def test_pin_latest_returns_current_timestamp(self, db):
        update_user(db, 1, score=1.0)
        assert db.pin_latest() == db.latest_timestamp
        assert db.is_pinned(db.latest_timestamp)

    def test_pin_counts_are_reference_counted(self, db):
        ts = db.pin_latest()
        db.pin_latest()
        assert db.pinned_snapshots[ts] == 2
        db.unpin(ts)
        assert db.pinned_snapshots[ts] == 1
        db.unpin(ts)
        assert not db.is_pinned(ts)

    def test_begin_ro_at_pinned_snapshot(self, db):
        pinned = db.pin_latest()
        update_user(db, 1, name="changed")
        ro = db.begin_ro(snapshot_id=pinned)
        assert ro.query(Select("users", Eq("id", 1))).rows[0]["name"] == "user1"

    def test_begin_ro_future_snapshot_rejected(self, db):
        with pytest.raises(SnapshotTooOldError):
            db.begin_ro(snapshot_id=db.latest_timestamp + 5)

    def test_begin_ro_defaults_to_latest(self, db):
        update_user(db, 1, name="changed")
        ro = db.begin_ro()
        assert ro.snapshot_timestamp == db.latest_timestamp


class TestVacuum:
    def test_vacuum_removes_dead_versions(self, db):
        update_user(db, 1, name="v2")
        update_user(db, 1, name="v3")
        assert db.table("users").version_count() == 7  # 5 rows + 2 superseded
        removed = db.vacuum()
        assert removed == 2
        assert db.table("users").version_count() == 5

    def test_vacuum_respects_pinned_snapshots(self, db):
        pinned = db.pin_latest()  # pins timestamp 0
        update_user(db, 1, name="v2")
        removed = db.vacuum()
        assert removed == 0  # the old version is still visible to the pin
        db.unpin(pinned)
        assert db.vacuum() == 1

    def test_vacuumed_snapshot_no_longer_readable(self, db):
        update_user(db, 1, name="v2")
        db.vacuum()
        with pytest.raises(SnapshotTooOldError):
            db.begin_ro(snapshot_id=0)

    def test_vacuum_updates_stats(self, db):
        update_user(db, 1, name="v2")
        db.vacuum()
        assert db.stats.vacuum_runs == 1
        assert db.stats.versions_vacuumed == 1


class TestStats:
    def test_transaction_counters(self, db):
        db.begin_ro().commit()
        update_user(db, 1, score=3.0)
        assert db.stats.ro_transactions >= 1
        assert db.stats.rw_transactions >= 1
        assert db.stats.commits >= 1

    def test_invalidations_published_counter(self, db):
        before = db.stats.invalidations_published
        update_user(db, 1, score=3.0)
        assert db.stats.invalidations_published == before + 1

    def test_reset(self, db):
        update_user(db, 1, score=3.0)
        db.stats.reset()
        assert db.stats.commits == 0
        assert db.stats.rw_transactions == 0
