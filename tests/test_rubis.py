"""Tests for the RUBiS application: schema, data generation, app logic."""

from __future__ import annotations

import pytest

from repro.apps.rubis.app import RubisApp
from repro.apps.rubis.datagen import (
    DISK_BOUND_CONFIG,
    IN_MEMORY_CONFIG,
    RubisConfig,
    populate_database,
)
from repro.apps.rubis.schema import create_rubis_schema, rubis_schemas
from repro.deployment import TxCacheDeployment


@pytest.fixture(scope="module")
def rubis():
    """A small RUBiS deployment shared by the read-only tests in this module."""
    deployment = TxCacheDeployment(cache_capacity_bytes_per_node=4 * 1024 * 1024)
    create_rubis_schema(deployment.database)
    dataset = populate_database(deployment.database, IN_MEMORY_CONFIG.scaled(400), seed=7)
    client = deployment.client()
    app = RubisApp(client, dataset)
    return deployment, app, dataset


class TestSchema:
    def test_all_tables_created(self):
        deployment = TxCacheDeployment()
        schemas = create_rubis_schema(deployment.database)
        assert set(schemas) == {
            "regions",
            "categories",
            "users",
            "items",
            "old_items",
            "bids",
            "buy_now",
            "comments",
            "item_cat_reg",
        }

    def test_expected_indexes_exist(self):
        deployment = TxCacheDeployment()
        create_rubis_schema(deployment.database)
        items = deployment.database.table("items")
        assert items.has_index_on("seller")
        assert items.has_index_on("category")
        assert items.ordered_index_on("end_date") is not None
        users = deployment.database.table("users")
        assert users.has_index_on("nickname")
        cat_reg = deployment.database.table("item_cat_reg")
        assert cat_reg.has_index_on("region")
        assert cat_reg.has_index_on("category")

    def test_schema_list_is_stable(self):
        assert len(rubis_schemas()) == 9


class TestDataGeneration:
    def test_paper_configurations_have_paper_proportions(self):
        assert IN_MEMORY_CONFIG.users == 160_000
        assert IN_MEMORY_CONFIG.active_items == 35_000
        assert IN_MEMORY_CONFIG.old_items == 50_000
        assert DISK_BOUND_CONFIG.users == 1_350_000
        assert DISK_BOUND_CONFIG.disk_bound

    def test_scaling_preserves_ratios_roughly(self):
        scaled = IN_MEMORY_CONFIG.scaled(100)
        assert scaled.users == 1600
        assert scaled.active_items == 350
        assert scaled.old_items == 500
        assert not scaled.disk_bound

    def test_scaling_has_floors(self):
        tiny = RubisConfig(name="t", users=10, active_items=5, old_items=3).scaled(1000)
        assert tiny.users >= 50
        assert tiny.active_items >= 20

    def test_populate_loads_expected_row_counts(self, rubis):
        deployment, _app, dataset = rubis
        database = deployment.database
        config = dataset.config
        assert database.table("users").row_count() == config.users
        assert database.table("items").row_count() == config.active_items
        assert database.table("old_items").row_count() == config.old_items
        assert database.table("regions").row_count() == config.regions
        assert database.table("categories").row_count() == config.categories
        assert database.table("item_cat_reg").row_count() == config.active_items

    def test_item_bid_summaries_match_bid_table(self, rubis):
        deployment, _app, dataset = rubis
        from repro.db.query import Eq, Select

        ro = deployment.database.begin_ro()
        item = ro.query(Select("items", Eq("id", dataset.active_item_ids[0]))).rows[0]
        bids = ro.query(Select("bids", Eq("item_id", item["id"]))).rows
        assert item["nb_of_bids"] == len(bids)
        if bids:
            assert item["max_bid"] == pytest.approx(max(b["bid"] for b in bids))

    def test_generation_is_deterministic(self):
        first = TxCacheDeployment()
        second = TxCacheDeployment()
        create_rubis_schema(first.database)
        create_rubis_schema(second.database)
        config = IN_MEMORY_CONFIG.scaled(800)
        populate_database(first.database, config, seed=3)
        populate_database(second.database, config, seed=3)
        from repro.db.query import Eq, Select

        a = first.database.begin_ro().query(Select("users", Eq("id", 5))).rows
        b = second.database.begin_ro().query(Select("users", Eq("id", 5))).rows
        assert a == b


class TestApplicationPages:
    def test_home_and_browse_pages(self, rubis):
        _dep, app, _dataset = rubis
        home = app.run_read_only(app.home_page)
        assert home["category_count"] == 20
        categories = app.run_read_only(app.browse_categories_page)
        assert len(categories["categories"]) == 20
        regions = app.run_read_only(app.browse_regions_page)
        assert len(regions["regions"]) == 62

    def test_view_item_page(self, rubis):
        _dep, app, dataset = rubis
        item_id = dataset.active_item_ids[0]
        page = app.run_read_only(app.view_item_page, item_id)
        assert page["item"]["id"] == item_id
        assert page["price"] is not None
        assert page["seller_nickname"].startswith("user")

    def test_view_item_page_missing_item(self, rubis):
        _dep, app, _dataset = rubis
        page = app.run_read_only(app.view_item_page, 10**9)
        assert "error" in page

    def test_old_items_found_by_get_item(self, rubis):
        _dep, app, dataset = rubis
        with app.client.read_only():
            item = app.get_item(dataset.old_item_ids[0])
        assert item["closed"] is True

    def test_search_by_category(self, rubis):
        _dep, app, dataset = rubis
        page = app.run_read_only(app.search_items_by_category_page, dataset.category_ids[0], 0)
        for listing in page["listings"]:
            assert set(listing) == {"id", "name", "price", "end_date"}

    def test_search_by_region_uses_added_table(self, rubis):
        _dep, app, dataset = rubis
        page = app.run_read_only(
            app.search_items_by_region_page, dataset.category_ids[0], dataset.region_ids[0], 0
        )
        assert isinstance(page["listings"], list)

    def test_bid_history_and_user_pages(self, rubis):
        _dep, app, dataset = rubis
        item_id = dataset.active_item_ids[1]
        history = app.run_read_only(app.view_bid_history_page, item_id)
        assert isinstance(history["bids"], list)
        user_page = app.run_read_only(app.view_user_page, dataset.user_ids[0])
        assert user_page["user"]["id"] == dataset.user_ids[0]

    def test_about_me_page(self, rubis):
        _dep, app, dataset = rubis
        page = app.run_read_only(app.about_me_page, dataset.user_ids[0])
        assert "selling" in page and "bought" in page and "comments" in page

    def test_authentication(self, rubis):
        _dep, app, dataset = rubis
        user_id = dataset.user_ids[0]
        with app.client.read_only():
            assert app.authenticate(f"user{user_id}", f"password{user_id}") == user_id
            assert app.authenticate(f"user{user_id}", "wrong") is None


class TestWriteInteractions:
    @pytest.fixture()
    def fresh_rubis(self):
        deployment = TxCacheDeployment(cache_capacity_bytes_per_node=4 * 1024 * 1024)
        create_rubis_schema(deployment.database)
        dataset = populate_database(deployment.database, IN_MEMORY_CONFIG.scaled(800), seed=9)
        app = RubisApp(deployment.client(), dataset)
        return deployment, app, dataset

    def test_register_user(self, fresh_rubis):
        deployment, app, dataset = fresh_rubis
        new_id = app.register_user("brand_new", "secret", dataset.region_ids[0], now=1.0)
        deployment.advance(0.1)
        with app.client.read_only(staleness=0):
            user = app.get_user_by_nickname("brand_new")
        assert user["id"] == new_id

    def test_register_item_populates_cat_reg(self, fresh_rubis):
        deployment, app, dataset = fresh_rubis
        seller = dataset.user_ids[0]
        item_id = app.register_item(seller, dataset.category_ids[0], "Shiny", 10.0, now=1.0)
        from repro.db.query import Eq, Select

        ro = deployment.database.begin_ro()
        assert len(ro.query(Select("item_cat_reg", Eq("item_id", item_id))).rows) == 1

    def test_store_bid_updates_item_and_invalidate_page(self, fresh_rubis):
        deployment, app, dataset = fresh_rubis
        item_id = dataset.active_item_ids[0]
        page_before = app.run_read_only(app.view_item_page, item_id)
        app.store_bid(dataset.user_ids[0], item_id, amount=10_000.0, now=2.0)
        deployment.advance(0.1)
        page_after = app.run_read_only(app.view_item_page, item_id, staleness=0)
        assert page_after["bid_count"] == page_before["bid_count"] + 1
        assert page_after["price"] == 10_000.0

    def test_store_buy_now_decrements_quantity(self, fresh_rubis):
        deployment, app, dataset = fresh_rubis
        item_id = dataset.active_item_ids[2]
        from repro.db.query import Eq, Select

        before = deployment.database.begin_ro().query(Select("items", Eq("id", item_id))).rows[0]
        app.store_buy_now(dataset.user_ids[1], item_id, now=3.0)
        after = deployment.database.begin_ro().query(Select("items", Eq("id", item_id))).rows[0]
        assert after["quantity"] == max(0, before["quantity"] - 1)

    def test_store_comment_adjusts_rating(self, fresh_rubis):
        deployment, app, dataset = fresh_rubis
        target = dataset.user_ids[3]
        from repro.db.query import Eq, Select

        before = deployment.database.begin_ro().query(Select("users", Eq("id", target))).rows[0]
        app.store_comment(dataset.user_ids[0], target, dataset.active_item_ids[0], 4, "great", 5.0)
        after = deployment.database.begin_ro().query(Select("users", Eq("id", target))).rows[0]
        assert after["rating"] == before["rating"] + 4

    def test_caching_effective_for_repeated_pages(self, fresh_rubis):
        _deployment, app, dataset = fresh_rubis
        item_id = dataset.active_item_ids[0]
        app.run_read_only(app.view_item_page, item_id)
        stats_before = app.client.stats.hits
        app.run_read_only(app.view_item_page, item_id)
        assert app.client.stats.hits > stats_before
