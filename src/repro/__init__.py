"""TxCache reproduction: a transactional application data cache.

Reproduction of Ports, Clements, Zhang, Madden, Liskov — "Transactional
Consistency and Automatic Management in an Application Data Cache"
(OSDI 2010).

The top-level package re-exports the pieces a typical application needs:

* :class:`repro.deployment.TxCacheDeployment` — wires a database, cache
  cluster, pincushion, and invalidation stream together;
* :class:`repro.core.TxCacheClient` — the application-side library
  (transactions + cacheable functions);
* the query model of :mod:`repro.db` for talking to the database substrate.
"""

from repro.clock import Clock, ManualClock, SystemClock
from repro.core.api import ConsistencyMode, TxCacheClient
from repro.deployment import TxCacheDeployment
from repro.interval import Interval, IntervalSet

__version__ = "1.0.0"

__all__ = [
    "TxCacheDeployment",
    "TxCacheClient",
    "ConsistencyMode",
    "Interval",
    "IntervalSet",
    "Clock",
    "ManualClock",
    "SystemClock",
    "__version__",
]
