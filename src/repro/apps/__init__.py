"""Applications ported to TxCache (RUBiS auction site, wiki example)."""
