"""The RUBiS relational schema.

The schema follows the standard RUBiS layout: regions, categories, users,
active and old (completed) items, bids, buy-now purchases, and comments.
Two details follow the paper's port (section 7.1):

* items are split between ``items`` (active auctions) and ``old_items``
  (completed auctions), so looking up an item may require examining both;
* an extra ``item_cat_reg`` table maps items to their category and the
  seller's region, with indexes on both, replacing the sequential scan +
  join the stock benchmark needed for "browse items by category in region".
"""

from __future__ import annotations

from typing import Dict, List

from repro.db.database import Database
from repro.db.schema import IndexSpec, TableSchema

__all__ = ["rubis_schemas", "create_rubis_schema", "ITEM_COLUMNS"]

#: Columns shared by the ``items`` and ``old_items`` tables.
ITEM_COLUMNS = [
    "id",
    "name",
    "description",
    "initial_price",
    "quantity",
    "reserve_price",
    "buy_now",
    "nb_of_bids",
    "max_bid",
    "start_date",
    "end_date",
    "seller",
    "category",
]


def rubis_schemas() -> List[TableSchema]:
    """Return the table schemas making up the RUBiS database."""
    return [
        TableSchema.build(
            "regions",
            ["id", "name"],
            primary_key="id",
            indexes=["name"],
        ),
        TableSchema.build(
            "categories",
            ["id", "name"],
            primary_key="id",
            indexes=["name"],
        ),
        TableSchema.build(
            "users",
            [
                "id",
                "firstname",
                "lastname",
                "nickname",
                "password",
                "email",
                "rating",
                "balance",
                "creation_date",
                "region",
            ],
            primary_key="id",
            indexes=["nickname", "region"],
        ),
        TableSchema.build(
            "items",
            ITEM_COLUMNS,
            primary_key="id",
            indexes=["seller", "category", IndexSpec("end_date", ordered=True)],
        ),
        TableSchema.build(
            "old_items",
            ITEM_COLUMNS,
            primary_key="id",
            indexes=["seller", "category", IndexSpec("end_date", ordered=True)],
        ),
        TableSchema.build(
            "bids",
            ["id", "user_id", "item_id", "qty", "bid", "max_bid", "date"],
            primary_key="id",
            indexes=["user_id", "item_id"],
        ),
        TableSchema.build(
            "buy_now",
            ["id", "buyer_id", "item_id", "qty", "date"],
            primary_key="id",
            indexes=["buyer_id", "item_id"],
        ),
        TableSchema.build(
            "comments",
            ["id", "from_user_id", "to_user_id", "item_id", "rating", "date", "comment"],
            primary_key="id",
            indexes=["from_user_id", "to_user_id", "item_id"],
        ),
        # The paper's added table: category and region of every active item,
        # so region browsing uses index lookups instead of a sequential scan.
        TableSchema.build(
            "item_cat_reg",
            ["item_id", "category", "region"],
            primary_key="item_id",
            indexes=["category", "region"],
        ),
    ]


def create_rubis_schema(database: Database) -> Dict[str, TableSchema]:
    """Create every RUBiS table in ``database``; returns name -> schema."""
    schemas = rubis_schemas()
    for schema in schemas:
        database.create_table(schema)
    return {schema.name: schema for schema in schemas}
