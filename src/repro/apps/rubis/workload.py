"""The RUBiS client emulator: 26 interactions and the bidding mix.

RUBiS drives the auction site with emulated user sessions.  Each session is a
Markov chain over the site's 26 interactions (browsing categories and
regions, viewing items, bidding, buying, commenting, selling, and consulting
the "About Me" page), separated by an exponentially distributed think time
with a 7 second mean.  The standard *bidding mix* used in the paper is about
85% read-only interactions and 15% read/write interactions.

The emulator here reproduces that structure: a transition table defines the
probability of moving from one interaction to the next, each interaction
knows how to pick its parameters (favouring recently seen items so sessions
have realistic locality), and each interaction executes as exactly one
TxCache transaction (read-only or read/write).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.rubis.app import RubisApp
from repro.apps.rubis.datagen import RubisDataset

__all__ = [
    "Interaction",
    "WorkloadMix",
    "BIDDING_MIX",
    "BROWSING_MIX",
    "RubisClientSession",
    "INTERACTION_NAMES",
]

#: Mean think time between interactions, in seconds (RUBiS default).
DEFAULT_THINK_TIME = 7.0


@dataclass(frozen=True)
class Interaction:
    """One of the 26 RUBiS user interactions."""

    name: str
    read_only: bool
    #: Executes the interaction; returns a short description of the result.
    run: Callable[["RubisClientSession"], object]


@dataclass(frozen=True)
class WorkloadMix:
    """A named workload: interaction transition table + think time."""

    name: str
    #: interaction name -> list of (next interaction name, probability).
    transitions: Dict[str, List[Tuple[str, float]]]
    initial_state: str = "home"
    think_time_mean: float = DEFAULT_THINK_TIME

    def next_state(self, current: str, rng: random.Random) -> str:
        """Sample the next interaction after ``current``."""
        choices = self.transitions.get(current)
        if not choices:
            return self.initial_state
        roll = rng.random()
        cumulative = 0.0
        for name, probability in choices:
            cumulative += probability
            if roll <= cumulative:
                return name
        return choices[-1][0]

    def read_write_fraction(self, steps: int = 20_000, seed: int = 7) -> float:
        """Estimate the stationary fraction of read/write interactions."""
        rng = random.Random(seed)
        state = self.initial_state
        writes = 0
        for _ in range(steps):
            state = self.next_state(state, rng)
            if state in _READ_WRITE_INTERACTIONS:
                writes += 1
        return writes / steps


# ----------------------------------------------------------------------
# Interaction implementations
# ----------------------------------------------------------------------
class RubisClientSession:
    """One emulated user: logged-in identity, navigation state, locality."""

    def __init__(
        self,
        app: RubisApp,
        mix: "WorkloadMix",
        seed: int = 0,
        staleness: float = 30.0,
        now_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.app = app
        self.dataset: RubisDataset = app.dataset
        self.mix = mix
        self.rng = random.Random(seed)
        self.staleness = staleness
        self._now_fn = now_fn or (lambda: 0.0)
        self.state = mix.initial_state
        self.user_id = self.rng.choice(self.dataset.user_ids)
        #: item currently being viewed, for bid/buy/comment locality.
        self.current_item: Optional[int] = None
        self.current_category: Optional[int] = None
        self.current_region: Optional[int] = None
        self.interactions_run: Dict[str, int] = {}
        self.read_write_count = 0
        self.read_only_count = 0

    # ------------------------------------------------------------------
    # Session driving
    # ------------------------------------------------------------------
    def think_time(self) -> float:
        """Sample an exponential think time (seconds)."""
        return self.rng.expovariate(1.0 / self.mix.think_time_mean)

    def step(self) -> str:
        """Advance the Markov chain one step and execute the interaction."""
        self.state = self.mix.next_state(self.state, self.rng)
        self.execute(self.state)
        return self.state

    def execute(self, name: str) -> object:
        """Execute one named interaction as a single transaction."""
        interaction = INTERACTIONS[name]
        result = interaction.run(self)
        self.interactions_run[name] = self.interactions_run.get(name, 0) + 1
        if interaction.read_only:
            self.read_only_count += 1
        else:
            self.read_write_count += 1
        return result

    # ------------------------------------------------------------------
    # Parameter selection helpers
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._now_fn()

    def pick_item(self) -> int:
        """Pick an item id, skewed towards a popular subset (Zipf-like).

        Real auction traffic concentrates on a hot subset of auctions; the
        skew gives cacheable per-item results a realistic re-reference rate.
        """
        items = self.dataset.active_item_ids
        if self.current_item is not None and self.rng.random() < 0.4:
            return self.current_item
        if self.rng.random() < 0.7:
            hot = max(1, len(items) // 10)
            return items[self.rng.randrange(hot)]
        return self.rng.choice(items)

    def pick_category(self) -> int:
        if self.current_category is not None and self.rng.random() < 0.5:
            return self.current_category
        return self.rng.choice(self.dataset.category_ids)

    def pick_region(self) -> int:
        if self.current_region is not None and self.rng.random() < 0.5:
            return self.current_region
        return self.rng.choice(self.dataset.region_ids)

    def pick_user(self) -> int:
        if self.rng.random() < 0.3:
            return self.user_id
        return self.rng.choice(self.dataset.user_ids)

    # ------------------------------------------------------------------
    # Read-only interactions
    # ------------------------------------------------------------------
    def _ro(self, page_function, *args) -> object:
        return self.app.run_read_only(page_function, *args, staleness=self.staleness)

    def do_home(self):
        return self._ro(self.app.home_page)

    def do_register_form(self):
        # Static registration form: still a (trivial) read-only transaction.
        return self._ro(self.app.browse_regions_page)

    def do_browse(self):
        return self._ro(self.app.home_page)

    def do_browse_categories(self):
        return self._ro(self.app.browse_categories_page)

    def do_search_items_in_category(self):
        self.current_category = self.pick_category()
        page = self.rng.randrange(3)
        result = self._ro(self.app.search_items_by_category_page, self.current_category, page)
        self._remember_listing(result)
        return result

    def do_browse_regions(self):
        return self._ro(self.app.browse_regions_page)

    def do_browse_categories_in_region(self):
        self.current_region = self.pick_region()
        return self._ro(self.app.browse_categories_page)

    def do_search_items_in_region(self):
        self.current_category = self.pick_category()
        self.current_region = self.pick_region()
        page = self.rng.randrange(2)
        result = self._ro(
            self.app.search_items_by_region_page,
            self.current_category,
            self.current_region,
            page,
        )
        self._remember_listing(result)
        return result

    def do_view_item(self):
        self.current_item = self.pick_item()
        return self._ro(self.app.view_item_page, self.current_item)

    def do_view_user_info(self):
        return self._ro(self.app.view_user_page, self.pick_user())

    def do_view_bid_history(self):
        item = self.current_item or self.pick_item()
        return self._ro(self.app.view_bid_history_page, item)

    def do_buy_now_auth(self):
        return self._ro(self.app.home_page)

    def do_buy_now(self):
        item = self.current_item or self.pick_item()
        return self._ro(self.app.buy_now_page, item, self.user_id)

    def do_put_bid_auth(self):
        return self._ro(self.app.home_page)

    def do_put_bid(self):
        item = self.current_item or self.pick_item()
        self.current_item = item
        return self._ro(self.app.put_bid_page, item, self.user_id)

    def do_put_comment_auth(self):
        return self._ro(self.app.home_page)

    def do_put_comment(self):
        item = self.current_item or self.pick_item()
        return self._ro(self.app.put_comment_page, item, self.pick_user())

    def do_sell(self):
        return self._ro(self.app.browse_categories_page)

    def do_select_category_to_sell_item(self):
        return self._ro(self.app.browse_categories_page)

    def do_sell_item_form(self):
        self.current_category = self.pick_category()
        return self._ro(self.app.sell_item_form_page, self.current_category)

    def do_about_me(self):
        return self._ro(self.app.about_me_page, self.user_id)

    # ------------------------------------------------------------------
    # Read/write interactions
    # ------------------------------------------------------------------
    def do_register_user(self):
        suffix = f"{self.rng.randrange(10**9)}"
        return self.app.register_user(
            nickname=f"newuser{suffix}",
            password=f"pw{suffix}",
            region_id=self.pick_region(),
            now=self.now(),
        )

    def do_store_bid(self):
        item = self.current_item or self.pick_item()
        amount = float(self.rng.randint(1, 1000))
        return self.app.store_bid(self.user_id, item, amount, self.now())

    def do_store_buy_now(self):
        item = self.current_item or self.pick_item()
        return self.app.store_buy_now(self.user_id, item, self.now())

    def do_store_comment(self):
        item = self.current_item or self.pick_item()
        return self.app.store_comment(
            from_user_id=self.user_id,
            to_user_id=self.pick_user(),
            item_id=item,
            rating=self.rng.randint(-5, 5),
            text="great seller",
            now=self.now(),
        )

    def do_register_item(self):
        return self.app.register_item(
            seller_id=self.user_id,
            category_id=self.pick_category(),
            name=f"New item {self.rng.randrange(10**9)}",
            initial_price=float(self.rng.randint(1, 100)),
            now=self.now(),
        )

    # ------------------------------------------------------------------
    def _remember_listing(self, result) -> None:
        listings = result.get("listings") if isinstance(result, dict) else None
        if listings:
            self.current_item = self.rng.choice(listings)["id"]


# ----------------------------------------------------------------------
# The 26 interactions
# ----------------------------------------------------------------------
INTERACTIONS: Dict[str, Interaction] = {
    "home": Interaction("home", True, RubisClientSession.do_home),
    "register_form": Interaction("register_form", True, RubisClientSession.do_register_form),
    "register_user": Interaction("register_user", False, RubisClientSession.do_register_user),
    "browse": Interaction("browse", True, RubisClientSession.do_browse),
    "browse_categories": Interaction(
        "browse_categories", True, RubisClientSession.do_browse_categories
    ),
    "search_items_in_category": Interaction(
        "search_items_in_category", True, RubisClientSession.do_search_items_in_category
    ),
    "browse_regions": Interaction("browse_regions", True, RubisClientSession.do_browse_regions),
    "browse_categories_in_region": Interaction(
        "browse_categories_in_region", True, RubisClientSession.do_browse_categories_in_region
    ),
    "search_items_in_region": Interaction(
        "search_items_in_region", True, RubisClientSession.do_search_items_in_region
    ),
    "view_item": Interaction("view_item", True, RubisClientSession.do_view_item),
    "view_user_info": Interaction("view_user_info", True, RubisClientSession.do_view_user_info),
    "view_bid_history": Interaction(
        "view_bid_history", True, RubisClientSession.do_view_bid_history
    ),
    "buy_now_auth": Interaction("buy_now_auth", True, RubisClientSession.do_buy_now_auth),
    "buy_now": Interaction("buy_now", True, RubisClientSession.do_buy_now),
    "store_buy_now": Interaction("store_buy_now", False, RubisClientSession.do_store_buy_now),
    "put_bid_auth": Interaction("put_bid_auth", True, RubisClientSession.do_put_bid_auth),
    "put_bid": Interaction("put_bid", True, RubisClientSession.do_put_bid),
    "store_bid": Interaction("store_bid", False, RubisClientSession.do_store_bid),
    "put_comment_auth": Interaction(
        "put_comment_auth", True, RubisClientSession.do_put_comment_auth
    ),
    "put_comment": Interaction("put_comment", True, RubisClientSession.do_put_comment),
    "store_comment": Interaction("store_comment", False, RubisClientSession.do_store_comment),
    "sell": Interaction("sell", True, RubisClientSession.do_sell),
    "select_category_to_sell_item": Interaction(
        "select_category_to_sell_item", True, RubisClientSession.do_select_category_to_sell_item
    ),
    "sell_item_form": Interaction("sell_item_form", True, RubisClientSession.do_sell_item_form),
    "register_item": Interaction("register_item", False, RubisClientSession.do_register_item),
    "about_me": Interaction("about_me", True, RubisClientSession.do_about_me),
}

INTERACTION_NAMES = list(INTERACTIONS)

_READ_WRITE_INTERACTIONS = {
    name for name, interaction in INTERACTIONS.items() if not interaction.read_only
}


def _bidding_transitions() -> Dict[str, List[Tuple[str, float]]]:
    """Transition table approximating the RUBiS bidding mix.

    Browsing dominates; bidding sequences (put_bid_auth -> put_bid ->
    store_bid) and the other write paths occur often enough that roughly 15%
    of interactions are read/write, matching the paper's workload.
    """
    return {
        "home": [
            ("browse", 0.26),
            ("browse_categories", 0.12),
            ("browse_regions", 0.08),
            ("about_me", 0.10),
            ("sell", 0.16),
            ("register_form", 0.08),
            ("view_item", 0.20),
        ],
        "register_form": [("register_user", 0.85), ("home", 0.15)],
        "register_user": [("home", 0.6), ("browse", 0.4)],
        "browse": [
            ("browse_categories", 0.55),
            ("browse_regions", 0.35),
            ("home", 0.10),
        ],
        "browse_categories": [
            ("search_items_in_category", 0.88),
            ("browse", 0.08),
            ("home", 0.04),
        ],
        "search_items_in_category": [
            ("view_item", 0.78),
            ("search_items_in_category", 0.12),
            ("browse_categories", 0.05),
            ("home", 0.05),
        ],
        "browse_regions": [
            ("browse_categories_in_region", 0.85),
            ("browse", 0.10),
            ("home", 0.05),
        ],
        "browse_categories_in_region": [
            ("search_items_in_region", 0.88),
            ("browse_regions", 0.08),
            ("home", 0.04),
        ],
        "search_items_in_region": [
            ("view_item", 0.76),
            ("search_items_in_region", 0.12),
            ("browse_categories_in_region", 0.07),
            ("home", 0.05),
        ],
        "view_item": [
            ("put_bid_auth", 0.56),
            ("view_bid_history", 0.08),
            ("view_user_info", 0.06),
            ("buy_now_auth", 0.13),
            ("search_items_in_category", 0.08),
            ("home", 0.09),
        ],
        "view_user_info": [
            ("put_comment_auth", 0.40),
            ("view_item", 0.26),
            ("search_items_in_category", 0.18),
            ("home", 0.16),
        ],
        "view_bid_history": [
            ("view_item", 0.36),
            ("put_bid_auth", 0.36),
            ("search_items_in_category", 0.18),
            ("home", 0.10),
        ],
        "buy_now_auth": [("buy_now", 0.92), ("home", 0.08)],
        "buy_now": [("store_buy_now", 0.86), ("view_item", 0.08), ("home", 0.06)],
        "store_buy_now": [("home", 0.55), ("about_me", 0.25), ("browse", 0.20)],
        "put_bid_auth": [("put_bid", 0.92), ("view_item", 0.08)],
        "put_bid": [("store_bid", 0.88), ("view_item", 0.07), ("home", 0.05)],
        "store_bid": [
            ("view_item", 0.26),
            ("put_bid_auth", 0.20),
            ("search_items_in_category", 0.24),
            ("home", 0.16),
            ("about_me", 0.14),
        ],
        "put_comment_auth": [("put_comment", 0.92), ("home", 0.08)],
        "put_comment": [("store_comment", 0.88), ("view_user_info", 0.06), ("home", 0.06)],
        "store_comment": [("home", 0.5), ("about_me", 0.3), ("browse", 0.2)],
        "sell": [("select_category_to_sell_item", 0.88), ("home", 0.12)],
        "select_category_to_sell_item": [("sell_item_form", 0.92), ("home", 0.08)],
        "sell_item_form": [("register_item", 0.85), ("home", 0.15)],
        "register_item": [("about_me", 0.40), ("home", 0.35), ("browse", 0.25)],
        "about_me": [
            ("view_item", 0.42),
            ("home", 0.30),
            ("browse", 0.18),
            ("view_user_info", 0.10),
        ],
    }


def _browsing_transitions() -> Dict[str, List[Tuple[str, float]]]:
    """A read-only browsing mix (no write interactions), for comparison runs."""
    transitions = {}
    for state, choices in _bidding_transitions().items():
        if state in _READ_WRITE_INTERACTIONS:
            continue
        filtered = [(name, p) for name, p in choices if name not in _READ_WRITE_INTERACTIONS]
        # Redirect the probability mass of write targets back to browsing.
        lost = 1.0 - sum(p for _name, p in filtered)
        if lost > 0:
            filtered.append(("search_items_in_category", lost))
        transitions[state] = filtered
    return transitions


#: The paper's workload: ~85% read-only browsing, ~15% read/write.
BIDDING_MIX = WorkloadMix(name="bidding", transitions=_bidding_transitions())

#: A purely read-only variant (not used by the paper's headline numbers, but
#: useful for ablations).
BROWSING_MIX = WorkloadMix(name="browsing", transitions=_browsing_transitions())
