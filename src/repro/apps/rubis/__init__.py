"""RUBiS: the auction-site benchmark application (paper sections 7.1 and 8).

RUBiS models an eBay-like auction site: users register items for sale, browse
listings by category and region, place bids, buy items outright, and leave
comments.  The paper ports its PHP implementation to TxCache and drives it
with the standard "bidding" workload (85% read-only browsing interactions,
15% read/write interactions).

This package reproduces that application in Python on top of the TxCache
client library:

* :mod:`repro.apps.rubis.schema` — the relational schema, including the
  extra ``item_cat_reg`` table the paper added to avoid a sequential scan
  when browsing by region and category;
* :mod:`repro.apps.rubis.datagen` — data generation for the paper's two
  database configurations (in-memory and disk-bound), scaled by a factor so
  experiments run quickly;
* :mod:`repro.apps.rubis.app` — the application layer: cacheable functions
  at two granularities (full page results and fine-grained object lookups)
  plus the read/write interactions;
* :mod:`repro.apps.rubis.workload` — the 26 user interactions and the
  Markov-chain client emulator implementing the bidding mix.
"""

from repro.apps.rubis.app import RubisApp
from repro.apps.rubis.datagen import (
    DISK_BOUND_CONFIG,
    IN_MEMORY_CONFIG,
    RubisConfig,
    RubisDataset,
    populate_database,
)
from repro.apps.rubis.schema import create_rubis_schema
from repro.apps.rubis.workload import (
    BIDDING_MIX,
    Interaction,
    RubisClientSession,
    WorkloadMix,
)

__all__ = [
    "RubisApp",
    "RubisConfig",
    "RubisDataset",
    "IN_MEMORY_CONFIG",
    "DISK_BOUND_CONFIG",
    "populate_database",
    "create_rubis_schema",
    "Interaction",
    "WorkloadMix",
    "BIDDING_MIX",
    "RubisClientSession",
]
