"""RUBiS data generation.

The paper evaluates two database configurations (section 8):

* an **in-memory** configuration — about 35,000 active auctions, 50,000
  completed auctions and 160,000 registered users (~850 MB), sized so the
  working set fits the database server's buffer cache;
* a **disk-bound** configuration — 225,000 active auctions, 1,000,000
  completed auctions and 1,350,000 users (~6 GB).

Re-creating those row counts in pure Python would make every experiment take
hours without changing the *shape* of any result, so the configurations are
expressed with the paper's proportions and scaled down by a constant factor
(1/100 by default).  The benchmark cost model compensates by charging
disk-configuration queries a higher per-tuple cost (see
:mod:`repro.bench.costmodel`), which preserves the in-memory vs disk-bound
contrast the paper reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.db.database import Database

__all__ = [
    "RubisConfig",
    "RubisDataset",
    "IN_MEMORY_CONFIG",
    "DISK_BOUND_CONFIG",
    "populate_database",
]

#: Default scale-down factor applied to the paper's row counts.
DEFAULT_SCALE = 100


@dataclass(frozen=True)
class RubisConfig:
    """Sizing of one RUBiS database configuration."""

    name: str
    users: int
    active_items: int
    old_items: int
    categories: int = 20
    regions: int = 62
    bids_per_item: int = 5
    comments_per_user: int = 1
    description_bytes: int = 256
    #: True if the configuration is meant to exceed the buffer cache; the
    #: benchmark cost model charges disk-priced queries for it.
    disk_bound: bool = False

    def scaled(self, scale: int) -> "RubisConfig":
        """Return a copy with the large row counts divided by ``scale``."""
        return RubisConfig(
            name=self.name,
            users=max(50, self.users // scale),
            active_items=max(20, self.active_items // scale),
            old_items=max(20, self.old_items // scale),
            categories=self.categories,
            regions=self.regions,
            bids_per_item=self.bids_per_item,
            comments_per_user=self.comments_per_user,
            description_bytes=self.description_bytes,
            disk_bound=self.disk_bound,
        )


#: The paper's in-memory configuration (pre-scaling).
IN_MEMORY_CONFIG = RubisConfig(
    name="in-memory",
    users=160_000,
    active_items=35_000,
    old_items=50_000,
    disk_bound=False,
)

#: The paper's disk-bound configuration (pre-scaling).
DISK_BOUND_CONFIG = RubisConfig(
    name="disk-bound",
    users=1_350_000,
    active_items=225_000,
    old_items=1_000_000,
    disk_bound=True,
)

_CATEGORY_NAMES = [
    "Antiques", "Art", "Books", "Business", "Clothing", "Coins", "Collectibles",
    "Computers", "Dolls", "Electronics", "Home", "Jewelry", "Movies", "Music",
    "Photo", "Pottery", "Sports", "Stamps", "Tickets", "Toys",
]


@dataclass
class RubisDataset:
    """Identifiers of the generated data, used by the workload generator."""

    config: RubisConfig
    user_ids: List[int] = field(default_factory=list)
    active_item_ids: List[int] = field(default_factory=list)
    old_item_ids: List[int] = field(default_factory=list)
    category_ids: List[int] = field(default_factory=list)
    region_ids: List[int] = field(default_factory=list)
    #: monotonically increasing id allocators for rows created at run time.
    next_item_id: int = 0
    next_bid_id: int = 0
    next_user_id: int = 0
    next_comment_id: int = 0
    next_buy_now_id: int = 0

    def allocate_item_id(self) -> int:
        self.next_item_id += 1
        return self.next_item_id

    def allocate_bid_id(self) -> int:
        self.next_bid_id += 1
        return self.next_bid_id

    def allocate_user_id(self) -> int:
        self.next_user_id += 1
        return self.next_user_id

    def allocate_comment_id(self) -> int:
        self.next_comment_id += 1
        return self.next_comment_id

    def allocate_buy_now_id(self) -> int:
        self.next_buy_now_id += 1
        return self.next_buy_now_id


def populate_database(
    database: Database,
    config: RubisConfig,
    seed: int = 42,
    base_date: float = 0.0,
) -> RubisDataset:
    """Fill ``database`` with a RUBiS dataset matching ``config``.

    Data is bulk-loaded as the initial state (visible at timestamp 0, no
    invalidations), mirroring the paper's practice of restoring a database
    snapshot before each run.  Returns a :class:`RubisDataset` describing the
    generated identifiers.
    """
    rng = random.Random(seed)
    dataset = RubisDataset(config=config)

    # Regions and categories -------------------------------------------------
    regions = [
        {"id": region_id, "name": f"Region-{region_id}"}
        for region_id in range(1, config.regions + 1)
    ]
    database.bulk_load("regions", regions)
    dataset.region_ids = [row["id"] for row in regions]

    categories = [
        {
            "id": category_id,
            "name": _CATEGORY_NAMES[(category_id - 1) % len(_CATEGORY_NAMES)]
            + (f"-{category_id}" if category_id > len(_CATEGORY_NAMES) else ""),
        }
        for category_id in range(1, config.categories + 1)
    ]
    database.bulk_load("categories", categories)
    dataset.category_ids = [row["id"] for row in categories]

    # Users ------------------------------------------------------------------
    users = []
    for user_id in range(1, config.users + 1):
        users.append(
            {
                "id": user_id,
                "firstname": f"First{user_id}",
                "lastname": f"Last{user_id}",
                "nickname": f"user{user_id}",
                "password": f"password{user_id}",
                "email": f"user{user_id}@rubis.example",
                "rating": rng.randint(0, 5),
                "balance": float(rng.randint(0, 1000)),
                "creation_date": base_date - rng.uniform(0, 365 * 86400),
                "region": rng.choice(dataset.region_ids),
            }
        )
    database.bulk_load("users", users)
    dataset.user_ids = [row["id"] for row in users]
    dataset.next_user_id = config.users

    # Items (active and completed) -------------------------------------------
    description_filler = "x" * config.description_bytes
    item_id = 0
    active_rows, old_rows, cat_reg_rows = [], [], []
    users_by_id = {row["id"]: row for row in users}
    for _ in range(config.active_items):
        item_id += 1
        seller = rng.choice(dataset.user_ids)
        category = rng.choice(dataset.category_ids)
        initial_price = float(rng.randint(1, 500))
        row = _item_row(
            item_id, seller, category, initial_price, description_filler,
            start=base_date - rng.uniform(0, 7 * 86400),
            end=base_date + rng.uniform(1 * 86400, 7 * 86400),
            rng=rng,
        )
        active_rows.append(row)
        cat_reg_rows.append(
            {
                "item_id": item_id,
                "category": category,
                "region": users_by_id[seller]["region"],
            }
        )
    for _ in range(config.old_items):
        item_id += 1
        seller = rng.choice(dataset.user_ids)
        category = rng.choice(dataset.category_ids)
        initial_price = float(rng.randint(1, 500))
        row = _item_row(
            item_id, seller, category, initial_price, description_filler,
            start=base_date - rng.uniform(30 * 86400, 60 * 86400),
            end=base_date - rng.uniform(1 * 86400, 29 * 86400),
            rng=rng,
        )
        old_rows.append(row)
    dataset.active_item_ids = [row["id"] for row in active_rows]
    dataset.old_item_ids = [row["id"] for row in old_rows]
    dataset.next_item_id = item_id

    # Bids (generated before loading items so per-item bid summaries are
    # reflected in the stored item rows) --------------------------------------
    bid_rows = []
    bid_id = 0
    for row in active_rows:
        bids = rng.randint(0, config.bids_per_item * 2)
        price = row["initial_price"]
        for _ in range(bids):
            bid_id += 1
            price += float(rng.randint(1, 10))
            bid_rows.append(
                {
                    "id": bid_id,
                    "user_id": rng.choice(dataset.user_ids),
                    "item_id": row["id"],
                    "qty": 1,
                    "bid": price,
                    "max_bid": price + float(rng.randint(0, 5)),
                    "date": base_date - rng.uniform(0, 86400),
                }
            )
        row["nb_of_bids"] = bids
        row["max_bid"] = price if bids else None

    database.bulk_load("items", active_rows)
    database.bulk_load("old_items", old_rows)
    database.bulk_load("item_cat_reg", cat_reg_rows)
    database.bulk_load("bids", bid_rows)
    dataset.next_bid_id = bid_id

    # Comments ----------------------------------------------------------------
    comment_rows = []
    comment_id = 0
    total_comments = config.users * config.comments_per_user
    for _ in range(total_comments):
        comment_id += 1
        comment_rows.append(
            {
                "id": comment_id,
                "from_user_id": rng.choice(dataset.user_ids),
                "to_user_id": rng.choice(dataset.user_ids),
                "item_id": rng.choice(dataset.active_item_ids + dataset.old_item_ids),
                "rating": rng.randint(-5, 5),
                "date": base_date - rng.uniform(0, 30 * 86400),
                "comment": "A fine transaction.",
            }
        )
    database.bulk_load("comments", comment_rows)
    dataset.next_comment_id = comment_id

    return dataset


def _item_row(
    item_id: int,
    seller: int,
    category: int,
    initial_price: float,
    description: str,
    start: float,
    end: float,
    rng: random.Random,
) -> Dict[str, object]:
    return {
        "id": item_id,
        "name": f"Item {item_id}",
        "description": description,
        "initial_price": initial_price,
        "quantity": rng.randint(1, 5),
        "reserve_price": initial_price + float(rng.randint(0, 50)),
        "buy_now": initial_price + float(rng.randint(50, 200)),
        "nb_of_bids": 0,
        "max_bid": None,
        "start_date": start,
        "end_date": end,
        "seller": seller,
        "category": category,
    }
