"""The RUBiS application layer on top of the TxCache library.

Following the paper's port (section 7.1), results are cached at two
granularities:

* **coarse**: the generated "page" for each read-only interaction (browse
  listings, view an item, a user's profile, bid history, ...), so two clients
  viewing the same page with the same arguments share the previous result;
* **fine**: common helper functions — authenticating a user, looking up a
  user or item by id, computing an item's current price — which can be shared
  across different pages.  Looking up an item examines both the active and
  the completed item tables, so even this "fine-grained" function spans
  multiple queries.

Read/write interactions (registering users and items, placing bids, buy-now
purchases, storing comments) bypass the cache and run directly against the
database inside ``BEGIN-RW`` transactions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.rubis.datagen import RubisDataset
from repro.core.api import TxCacheClient
from repro.db.query import Aggregate, And, Eq, Select

__all__ = ["RubisApp"]

#: Number of items displayed per browse/search page.
PAGE_SIZE = 20


class RubisApp:
    """One application-server instance of the RUBiS auction site."""

    def __init__(self, client: TxCacheClient, dataset: RubisDataset) -> None:
        self.client = client
        self.dataset = dataset
        cacheable = client.make_cacheable
        # Fine-grained cacheable functions (shared across pages).
        self.get_region = cacheable(self._get_region, name="rubis.get_region")
        self.get_category = cacheable(self._get_category, name="rubis.get_category")
        self.get_regions = cacheable(self._get_regions, name="rubis.get_regions")
        self.get_categories = cacheable(self._get_categories, name="rubis.get_categories")
        self.get_user = cacheable(self._get_user, name="rubis.get_user")
        self.get_user_by_nickname = cacheable(
            self._get_user_by_nickname, name="rubis.get_user_by_nickname"
        )
        self.authenticate = cacheable(self._authenticate, name="rubis.authenticate")
        self.get_item = cacheable(self._get_item, name="rubis.get_item")
        self.get_item_current_price = cacheable(
            self._get_item_current_price, name="rubis.get_item_current_price"
        )
        self.get_item_bid_count = cacheable(
            self._get_item_bid_count, name="rubis.get_item_bid_count"
        )
        self.get_user_comments = cacheable(
            self._get_user_comments, name="rubis.get_user_comments"
        )
        # Coarse-grained cacheable functions (whole page bodies).
        self.home_page = cacheable(self._home_page, name="rubis.page.home")
        self.browse_categories_page = cacheable(
            self._browse_categories_page, name="rubis.page.browse_categories"
        )
        self.browse_regions_page = cacheable(
            self._browse_regions_page, name="rubis.page.browse_regions"
        )
        self.search_items_by_category_page = cacheable(
            self._search_items_by_category_page, name="rubis.page.search_by_category"
        )
        self.search_items_by_region_page = cacheable(
            self._search_items_by_region_page, name="rubis.page.search_by_region"
        )
        self.view_item_page = cacheable(self._view_item_page, name="rubis.page.view_item")
        self.view_user_page = cacheable(self._view_user_page, name="rubis.page.view_user")
        self.view_bid_history_page = cacheable(
            self._view_bid_history_page, name="rubis.page.bid_history"
        )
        self.buy_now_page = cacheable(self._buy_now_page, name="rubis.page.buy_now")
        self.put_bid_page = cacheable(self._put_bid_page, name="rubis.page.put_bid")
        self.put_comment_page = cacheable(
            self._put_comment_page, name="rubis.page.put_comment"
        )
        self.sell_item_form_page = cacheable(
            self._sell_item_form_page, name="rubis.page.sell_item_form"
        )
        self.about_me_page = cacheable(self._about_me_page, name="rubis.page.about_me")

    # ==================================================================
    # Fine-grained cacheable function implementations
    # ==================================================================
    def _get_region(self, region_id: int) -> Optional[Dict[str, Any]]:
        rows = self.client.query(Select("regions", Eq("id", region_id))).rows
        return rows[0] if rows else None

    def _get_category(self, category_id: int) -> Optional[Dict[str, Any]]:
        rows = self.client.query(Select("categories", Eq("id", category_id))).rows
        return rows[0] if rows else None

    def _get_regions(self) -> List[Dict[str, Any]]:
        return self.client.query(Select("regions", order_by="id")).rows

    def _get_categories(self) -> List[Dict[str, Any]]:
        return self.client.query(Select("categories", order_by="id")).rows

    def _get_user(self, user_id: int) -> Optional[Dict[str, Any]]:
        rows = self.client.query(Select("users", Eq("id", user_id))).rows
        return rows[0] if rows else None

    def _get_user_by_nickname(self, nickname: str) -> Optional[Dict[str, Any]]:
        rows = self.client.query(Select("users", Eq("nickname", nickname))).rows
        return rows[0] if rows else None

    def _authenticate(self, nickname: str, password: str) -> Optional[int]:
        """Return the user id if the credentials are valid."""
        rows = self.client.query(Select("users", Eq("nickname", nickname))).rows
        if rows and rows[0]["password"] == password:
            return rows[0]["id"]
        return None

    def _get_item(self, item_id: int) -> Optional[Dict[str, Any]]:
        """Look up an item in the active table, falling back to old items."""
        rows = self.client.query(Select("items", Eq("id", item_id))).rows
        if rows:
            item = dict(rows[0])
            item["closed"] = False
            return item
        rows = self.client.query(Select("old_items", Eq("id", item_id))).rows
        if rows:
            item = dict(rows[0])
            item["closed"] = True
            return item
        return None

    def _get_item_current_price(self, item_id: int) -> Optional[float]:
        result = self.client.query(
            Aggregate(Select("bids", Eq("item_id", item_id)), "max", "bid")
        )
        max_bid = result.scalar()
        if max_bid is not None:
            return max_bid
        item = self.get_item(item_id)
        return item["initial_price"] if item else None

    def _get_item_bid_count(self, item_id: int) -> int:
        result = self.client.query(
            Aggregate(Select("bids", Eq("item_id", item_id)), "count")
        )
        return result.scalar()

    def _get_user_comments(self, user_id: int) -> List[Dict[str, Any]]:
        return self.client.query(
            Select("comments", Eq("to_user_id", user_id), order_by="date", descending=True)
        ).rows

    # ==================================================================
    # Coarse-grained page implementations (read-only interactions)
    # ==================================================================
    def _home_page(self) -> Dict[str, Any]:
        categories = self.get_categories()
        regions = self.get_regions()
        return {
            "title": "RUBiS auction site",
            "category_count": len(categories),
            "region_count": len(regions),
            "html": _render("home", categories=len(categories), regions=len(regions)),
        }

    def _browse_categories_page(self) -> Dict[str, Any]:
        categories = self.get_categories()
        return {
            "categories": categories,
            "html": _render("browse_categories", names=[c["name"] for c in categories]),
        }

    def _browse_regions_page(self) -> Dict[str, Any]:
        regions = self.get_regions()
        return {
            "regions": regions,
            "html": _render("browse_regions", names=[r["name"] for r in regions]),
        }

    def _search_items_by_category_page(self, category_id: int, page: int = 0) -> Dict[str, Any]:
        items = self.client.query(
            Select(
                "items",
                Eq("category", category_id),
                order_by="end_date",
                limit=PAGE_SIZE * (page + 1),
            )
        ).rows
        items = items[page * PAGE_SIZE : (page + 1) * PAGE_SIZE]
        listings = [self._listing_for(item) for item in items]
        return {
            "category": category_id,
            "page": page,
            "listings": listings,
            "html": _render("search_category", category=category_id, count=len(listings)),
        }

    def _search_items_by_region_page(
        self, category_id: int, region_id: int, page: int = 0
    ) -> Dict[str, Any]:
        # Uses the item_cat_reg table the paper added, so this is an index
        # lookup rather than a scan+join over every active auction.
        mappings = self.client.query(
            Select("item_cat_reg", And(Eq("region", region_id), Eq("category", category_id)))
        ).rows
        item_ids = [m["item_id"] for m in mappings]
        item_ids = item_ids[page * PAGE_SIZE : (page + 1) * PAGE_SIZE]
        listings = []
        for item_id in item_ids:
            item = self.get_item(item_id)
            if item is not None and not item["closed"]:
                listings.append(self._listing_for(item))
        return {
            "category": category_id,
            "region": region_id,
            "page": page,
            "listings": listings,
            "html": _render(
                "search_region", category=category_id, region=region_id, count=len(listings)
            ),
        }

    def _view_item_page(self, item_id: int) -> Dict[str, Any]:
        item = self.get_item(item_id)
        if item is None:
            return {"error": "item not found", "item_id": item_id, "html": _render("missing")}
        price = self.get_item_current_price(item_id)
        bid_count = self.get_item_bid_count(item_id)
        seller = self.get_user(item["seller"])
        return {
            "item": item,
            "price": price,
            "bid_count": bid_count,
            "seller_nickname": seller["nickname"] if seller else None,
            "html": _render("view_item", item=item["name"], price=price, bids=bid_count),
        }

    def _view_user_page(self, user_id: int) -> Dict[str, Any]:
        user = self.get_user(user_id)
        if user is None:
            return {"error": "user not found", "user_id": user_id, "html": _render("missing")}
        comments = self.get_user_comments(user_id)
        return {
            "user": user,
            "comments": comments,
            "rating": user["rating"],
            "html": _render("view_user", nickname=user["nickname"], comments=len(comments)),
        }

    def _view_bid_history_page(self, item_id: int) -> Dict[str, Any]:
        item = self.get_item(item_id)
        bids = self.client.query(
            Select("bids", Eq("item_id", item_id), order_by="bid", descending=True)
        ).rows
        entries = []
        for bid in bids:
            bidder = self.get_user(bid["user_id"])
            entries.append(
                {
                    "bid": bid["bid"],
                    "qty": bid["qty"],
                    "bidder": bidder["nickname"] if bidder else None,
                    "date": bid["date"],
                }
            )
        return {
            "item": item["name"] if item else None,
            "bids": entries,
            "html": _render("bid_history", item=item_id, count=len(entries)),
        }

    def _buy_now_page(self, item_id: int, user_id: int) -> Dict[str, Any]:
        item = self.get_item(item_id)
        user = self.get_user(user_id)
        return {
            "item": item,
            "buyer": user["nickname"] if user else None,
            "html": _render("buy_now", item=item_id),
        }

    def _put_bid_page(self, item_id: int, user_id: int) -> Dict[str, Any]:
        item = self.get_item(item_id)
        price = self.get_item_current_price(item_id)
        user = self.get_user(user_id)
        return {
            "item": item,
            "current_price": price,
            "bidder": user["nickname"] if user else None,
            "html": _render("put_bid", item=item_id, price=price),
        }

    def _put_comment_page(self, item_id: int, to_user_id: int) -> Dict[str, Any]:
        item = self.get_item(item_id)
        user = self.get_user(to_user_id)
        return {
            "item": item,
            "to_user": user["nickname"] if user else None,
            "html": _render("put_comment", item=item_id, user=to_user_id),
        }

    def _sell_item_form_page(self, category_id: int) -> Dict[str, Any]:
        category = self.get_category(category_id)
        return {
            "category": category,
            "html": _render("sell_item_form", category=category_id),
        }

    def _about_me_page(self, user_id: int) -> Dict[str, Any]:
        user = self.get_user(user_id)
        if user is None:
            return {"error": "user not found", "user_id": user_id, "html": _render("missing")}
        selling = self.client.query(Select("items", Eq("seller", user_id))).rows
        sold = self.client.query(Select("old_items", Eq("seller", user_id))).rows
        bids = self.client.query(Select("bids", Eq("user_id", user_id))).rows
        bid_items = []
        for bid in bids[:PAGE_SIZE]:
            item = self.get_item(bid["item_id"])
            if item is not None:
                bid_items.append(self._listing_for(item))
        bought = self.client.query(Select("buy_now", Eq("buyer_id", user_id))).rows
        comments = self.get_user_comments(user_id)
        return {
            "user": user,
            "selling": [self._listing_for(item) for item in selling],
            "sold": [self._listing_for(item) for item in sold],
            "bid_items": bid_items,
            "bought": bought,
            "comments": comments,
            "html": _render(
                "about_me",
                nickname=user["nickname"],
                selling=len(selling),
                sold=len(sold),
                bids=len(bids),
            ),
        }

    # ==================================================================
    # Read-only interaction entry points (each runs one RO transaction)
    # ==================================================================
    def run_read_only(self, page_function, *args, staleness: Optional[float] = None):
        """Run one coarse page function inside a read-only transaction."""
        with self.client.read_only(staleness):
            return page_function(*args)

    # ==================================================================
    # Read/write interactions (bypass the cache)
    # ==================================================================
    def register_user(
        self, nickname: str, password: str, region_id: int, now: float
    ) -> int:
        """RegisterUser: create a new account, returns the new user id."""
        user_id = self.dataset.allocate_user_id()
        with self.client.read_write():
            self.client.insert(
                "users",
                {
                    "id": user_id,
                    "firstname": f"First{user_id}",
                    "lastname": f"Last{user_id}",
                    "nickname": nickname,
                    "password": password,
                    "email": f"{nickname}@rubis.example",
                    "rating": 0,
                    "balance": 0.0,
                    "creation_date": now,
                    "region": region_id,
                },
            )
        self.dataset.user_ids.append(user_id)
        return user_id

    def register_item(
        self,
        seller_id: int,
        category_id: int,
        name: str,
        initial_price: float,
        now: float,
        duration: float = 7 * 86400,
    ) -> int:
        """RegisterItem: put a new item up for auction."""
        item_id = self.dataset.allocate_item_id()
        with self.client.read_write():
            seller_rows = self.client.query(Select("users", Eq("id", seller_id))).rows
            region = seller_rows[0]["region"] if seller_rows else None
            self.client.insert(
                "items",
                {
                    "id": item_id,
                    "name": name,
                    "description": "freshly listed",
                    "initial_price": initial_price,
                    "quantity": 1,
                    "reserve_price": initial_price,
                    "buy_now": initial_price * 2,
                    "nb_of_bids": 0,
                    "max_bid": None,
                    "start_date": now,
                    "end_date": now + duration,
                    "seller": seller_id,
                    "category": category_id,
                },
            )
            self.client.insert(
                "item_cat_reg",
                {"item_id": item_id, "category": category_id, "region": region},
            )
        self.dataset.active_item_ids.append(item_id)
        return item_id

    def store_bid(self, user_id: int, item_id: int, amount: float, now: float) -> int:
        """StoreBid: record a bid and update the item's bid summary."""
        bid_id = self.dataset.allocate_bid_id()
        with self.client.read_write():
            item_rows = self.client.query(Select("items", Eq("id", item_id))).rows
            self.client.insert(
                "bids",
                {
                    "id": bid_id,
                    "user_id": user_id,
                    "item_id": item_id,
                    "qty": 1,
                    "bid": amount,
                    "max_bid": amount,
                    "date": now,
                },
            )
            if item_rows:
                item = item_rows[0]
                new_max = amount if item["max_bid"] is None else max(item["max_bid"], amount)
                self.client.update(
                    "items",
                    Eq("id", item_id),
                    {"nb_of_bids": item["nb_of_bids"] + 1, "max_bid": new_max},
                )
        return bid_id

    def store_buy_now(self, user_id: int, item_id: int, now: float) -> int:
        """StoreBuyNow: record an outright purchase and reduce the quantity."""
        buy_id = self.dataset.allocate_buy_now_id()
        with self.client.read_write():
            item_rows = self.client.query(Select("items", Eq("id", item_id))).rows
            self.client.insert(
                "buy_now",
                {"id": buy_id, "buyer_id": user_id, "item_id": item_id, "qty": 1, "date": now},
            )
            if item_rows:
                remaining = max(0, item_rows[0]["quantity"] - 1)
                self.client.update("items", Eq("id", item_id), {"quantity": remaining})
        return buy_id

    def store_comment(
        self, from_user_id: int, to_user_id: int, item_id: int, rating: int, text: str, now: float
    ) -> int:
        """StoreComment: leave feedback and adjust the target's rating."""
        comment_id = self.dataset.allocate_comment_id()
        with self.client.read_write():
            self.client.insert(
                "comments",
                {
                    "id": comment_id,
                    "from_user_id": from_user_id,
                    "to_user_id": to_user_id,
                    "item_id": item_id,
                    "rating": rating,
                    "date": now,
                    "comment": text,
                },
            )
            user_rows = self.client.query(Select("users", Eq("id", to_user_id))).rows
            if user_rows:
                self.client.update(
                    "users", Eq("id", to_user_id), {"rating": user_rows[0]["rating"] + rating}
                )
        return comment_id

    # ==================================================================
    # Helpers
    # ==================================================================
    def _listing_for(self, item: Dict[str, Any]) -> Dict[str, Any]:
        """A compact listing entry, using the fine-grained price function."""
        price = self.get_item_current_price(item["id"])
        return {
            "id": item["id"],
            "name": item["name"],
            "price": price,
            "end_date": item["end_date"],
        }


def _render(template: str, **values: Any) -> str:
    """A stand-in for the PHP templating work: produce an HTML-ish string.

    Real RUBiS spends part of its time formatting HTML; representing the
    output as a string keeps cached values realistically sized and gives the
    web-server cost model something to account for.
    """
    body = " ".join(f'{key}="{value}"' for key, value in sorted(values.items()))
    return f"<page template={template!r} {body}>"
