"""The versioned cache server (paper section 4).

Unlike a plain hash table, the cache is *versioned*: each entry is tagged
with the validity interval over which its value was current, and several
entries with the same key but disjoint intervals may coexist.  Lookups ask
for a key *and* a range of acceptable timestamps; the server returns the most
recent entry whose interval intersects the range.

Still-valid entries (unbounded interval) carry invalidation tags.  The server
consumes the database's invalidation stream in commit-timestamp order and
truncates the interval of every affected still-valid entry at the
invalidating transaction's timestamp.  Ordering cache contents and
invalidations by the same commit timestamps eliminates the classic
insert/invalidate race: if an entry is inserted *after* the invalidation that
affects it has already been processed, the server truncates it immediately on
insert.

Eviction uses least-recently-used ordering over a byte budget, plus eager
removal of entries too stale to satisfy any transaction's staleness limit.

Thread safety
-------------
:class:`CacheServer` is fully thread-safe: one reentrant lock per server
serializes every public operation, so the in-process transport (many client
threads calling directly) and the netserver's thread-per-connection handlers
may hit the same server concurrently.  A single per-server lock was chosen
over per-key lock striping after measuring both: the LRU ordering, the byte
budget, and the statistics are whole-server state that every operation
touches, so striping still needs a server-wide lock around exactly the
contended part, and under CPython's GIL the striped variant measured within
noise of the single lock while adding a second acquire per operation (see
README "Concurrency").  Batched operations (:meth:`multi_lookup`,
:meth:`install_entries`) hold the lock for the whole batch, so a batch is
atomic with respect to concurrent invalidations.
"""

from __future__ import annotations

import bisect
import functools
import heapq
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cache.entry import (
    CacheEntry,
    EntryRecord,
    LookupRequest,
    LookupResult,
    estimate_size,
)
from repro.cache.hashring import HASH_SPACE, _hash as _ring_hash
from repro.clock import Clock, SystemClock
from repro.comm.multicast import InvalidationMessage
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

__all__ = ["CacheServer", "CacheServerStats"]


def _locked(method):
    """Run ``method`` under the server's reentrant lock (thread safety)."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


def _index_arcs(arcs: Sequence[Tuple[int, int]]):
    """Prepare hash-space arcs for point location by bisect.

    Wrapping arcs split into two flat segments; ``lo == hi`` (the full
    circle) is kept aside and matches every point.  Returns
    ``(segments, starts, full_circle)`` where ``segments`` is sorted
    ``(lo, hi, original_index)`` and ``starts`` the parallel ``lo`` list.
    """
    segments: List[Tuple[int, int, int]] = []
    full_circle: List[int] = []
    for index, (lo, hi) in enumerate(arcs):
        if lo == hi:
            full_circle.append(index)
        elif lo < hi:
            segments.append((lo, hi, index))
        else:
            segments.append((lo, HASH_SPACE, index))
            segments.append((0, hi, index))
    segments.sort()
    return segments, [segment[0] for segment in segments], tuple(full_circle)


def _locate_arc(segments, starts, point: int) -> Optional[int]:
    """The original arc index containing ``point`` (arcs are disjoint)."""
    index = bisect.bisect_right(starts, point) - 1
    if index >= 0 and point < segments[index][1]:
        return segments[index][2]
    return None


@dataclass
class CacheServerStats:
    """Counters exposed by a cache server."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    rejected_insertions: int = 0
    lru_evictions: int = 0
    stale_evictions: int = 0
    invalidation_messages: int = 0
    entries_invalidated: int = 0
    #: Key-migration traffic (cluster elasticity): entry versions shipped out
    #: of this node, installed onto it, and discarded after a handoff.
    entries_extracted: int = 0
    entries_installed: int = 0
    entries_discarded: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when there were none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def merge(self, other: "CacheServerStats") -> "CacheServerStats":
        """Add another node's counters into this one; returns ``self``.

        This is the one place cross-node stats aggregation lives: the
        cluster (and anything else summing per-node counters) goes through
        ``merge`` / ``+=`` instead of open-coding a field loop.  Like
        :meth:`reset`, it covers every dataclass field so a counter added
        later cannot silently drop out of aggregation.
        """
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def __iadd__(self, other: "CacheServerStats") -> "CacheServerStats":
        return self.merge(other)


class CacheServer:
    """One cache node: a versioned, invalidation-aware, bounded store."""

    def __init__(
        self,
        name: str = "cache0",
        capacity_bytes: int = 64 * 1024 * 1024,
        clock: Optional[Clock] = None,
    ) -> None:
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.clock = clock or SystemClock()
        self.stats = CacheServerStats()
        #: Serializes every public operation (see "Thread safety" above).
        #: Reentrant so composite operations (install_entries -> put) nest.
        self._lock = threading.RLock()
        #: key -> versions of that key, kept sorted by interval lower bound.
        self._entries: Dict[str, List[CacheEntry]] = {}
        #: LRU ordering over keys (most recently used last).
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        #: precise tag -> keys of still-valid entries depending on it.
        self._tag_index: Dict[InvalidationTag, Set[str]] = {}
        #: table name -> keys of still-valid entries with any tag on it
        #: (needed to resolve wildcard invalidations).
        self._table_index: Dict[str, Set[str]] = {}
        #: every key ever stored (for compulsory-miss classification).
        self._keys_ever_stored: Set[str] = set()
        #: highest invalidation timestamp processed so far.
        self.last_invalidation_timestamp = 0
        #: ascending invalidation timestamps seen per precise tag / table,
        #: used to truncate entries inserted after an invalidation that
        #: affects them already arrived.  A *history* rather than just the
        #: latest timestamp: with concurrent writers, several invalidations
        #: of the same tag can land between a transaction's query and its
        #: cache insert, and the truncation point must be the *first* one
        #: after the entry's birth (the latest would overclaim validity for
        #: every intermediate version).  ``evict_stale`` prunes the prefixes
        #: no lookup can reach.
        self._tag_invalidations: Dict[InvalidationTag, List[int]] = {}
        self._table_invalidations: Dict[str, List[int]] = {}
        self._used_bytes = 0
        #: Resident gossip-membership agent (attached by the deployment's
        #: GossipRunner; None on nodes not participating in gossip).  The
        #: ``gossip`` wire op delegates to it, which is how membership
        #: digests piggyback on the cache transport under every deployment
        #: style.  The agent carries its own lock — digest exchange never
        #: takes the server lock, so gossip keeps flowing while a
        #: maintenance scan holds it.
        self.gossip_agent = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently charged against the capacity."""
        return self._used_bytes

    @property
    def entry_count(self) -> int:
        """Total number of stored entry versions."""
        with self._lock:
            return sum(len(versions) for versions in self._entries.values())

    @property
    def key_count(self) -> int:
        """Number of distinct keys with at least one stored version."""
        return len(self._entries)

    def versions_of(self, key: str) -> List[CacheEntry]:
        """All stored versions of ``key`` (oldest validity first)."""
        with self._lock:
            return list(self._entries.get(key, ()))

    def keys(self) -> List[str]:
        """The keys with at least one stored version, sorted.

        Used by replica-placement checks (does every replica of a key hold a
        copy?) and the anti-entropy repair tests; like :meth:`probe` it
        touches neither statistics nor LRU ordering.
        """
        with self._lock:
            return sorted(self._entries)

    @_locked
    def key_digest(self, arcs: Sequence[Tuple[int, int]]) -> List[Tuple[int, int, int]]:
        """Per-arc interval-set digests of the stored keys (anti-entropy).

        For each hash-space arc ``[lo, hi)`` (wrapping allowed; ``lo == hi``
        is the full circle) this folds every stored key whose ring point
        falls inside the arc into an order-independent triple
        ``(count, xor, sum mod 2^64)`` of the keys' 64-bit ring hashes — a
        Merkle-style leaf digest over the arc's key *set*.  Two replicas of
        an arc that hold the same key set report the same triple, so repair
        planning can prove an arc clean from one small round trip per node
        instead of shipping full ``keys()`` inventories.  Reconciliation
        stays key-granular (matching :meth:`install_entries` semantics), so
        keys — not values or versions — are what the digest covers.

        Arcs within one call must be disjoint (ring segments are); a key on
        an arc boundary belongs to the arc it opens, mirroring
        :func:`repro.cache.hashring.range_contains`.
        """
        segments, starts, full_circle = _index_arcs(arcs)
        digests = [[0, 0, 0] for _ in arcs]
        for key in self._entries:
            point = _ring_hash(key)
            index = _locate_arc(segments, starts, point)
            for target in full_circle if index is None else (*full_circle, index):
                bucket = digests[target]
                bucket[0] += 1
                bucket[1] ^= point
                bucket[2] = (bucket[2] + point) % HASH_SPACE
        return [tuple(bucket) for bucket in digests]

    @_locked
    def keys_in_range(self, arcs: Sequence[Tuple[int, int]]) -> List[str]:
        """The stored keys whose ring points fall inside the given arcs.

        The targeted follow-up to :meth:`key_digest`: once a digest
        mismatch marks an arc dirty, repair fetches only that arc's keys —
        never the whole store.  Sorted, stats-free, LRU-free.
        """
        segments, starts, full_circle = _index_arcs(arcs)
        if full_circle:
            return sorted(self._entries)
        return sorted(
            key
            for key in self._entries
            if _locate_arc(segments, starts, _ring_hash(key)) is not None
        )

    def gossip_exchange(self, digest: dict) -> dict:
        """Merge a membership digest into the resident agent; answer with ours.

        Deliberately *not* ``@_locked``: the agent synchronizes itself, so
        membership traffic is never queued behind a store scan — a wedged
        maintenance op must not stall failure detection.  Returns an empty
        digest when no agent is attached (gossip disabled), which merges as
        a no-op on the caller.
        """
        agent = self.gossip_agent
        if agent is None:
            return {}
        return agent.exchange(digest)

    @_locked
    def was_ever_stored(self, key: str) -> bool:
        """True if ``key`` has ever been inserted on this server."""
        return key in self._keys_ever_stored

    @_locked
    def stats_snapshot(self) -> CacheServerStats:
        """A consistent copy of the counters, taken under the server lock.

        Reading the live :attr:`stats` object field-by-field while another
        thread is inside a locked operation can observe a torn update (e.g.
        a lookup counted but its hit not yet); transports serve this
        snapshot instead.
        """
        return CacheServerStats().merge(self.stats)

    @_locked
    def reset_stats(self) -> None:
        """Zero the counters without racing in-flight operations."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @_locked
    def lookup(self, key: str, lo: int, hi: int) -> LookupResult:
        """Find a version of ``key`` valid somewhere in ``[lo, hi]``.

        ``lo`` and ``hi`` are inclusive timestamp bounds (the bounds of the
        requesting transaction's pin set).  Returns the most recent matching
        version together with its *effective* interval — for a still-valid
        entry, the upper bound reflects only invalidations processed so far.
        """
        self.stats.lookups += 1
        request = Interval(lo, hi + 1)
        versions = self._entries.get(key, [])
        best: Optional[CacheEntry] = None
        best_interval: Optional[Interval] = None
        for entry in versions:
            effective = entry.effective_interval(self.last_invalidation_timestamp)
            if effective.intersects(request):
                if best_interval is None or effective.lo > best_interval.lo:
                    best = entry
                    best_interval = effective
        if best is not None:
            self.stats.hits += 1
            best.last_access = self.clock.now()
            self._touch(key)
            return LookupResult(
                hit=True,
                key=key,
                value=best.value,
                interval=best_interval,
                raw_interval=best.interval,
                tags=best.tags,
                key_ever_stored=True,
            )

        self.stats.misses += 1
        return LookupResult(
            hit=False,
            key=key,
            key_ever_stored=key in self._keys_ever_stored,
            fresh_version_exists=bool(versions),
        )

    @_locked
    def multi_lookup(self, requests: Sequence[LookupRequest]) -> List[LookupResult]:
        """Answer a batch of lookups/probes in one call, in request order.

        Each :class:`LookupRequest` is served exactly as the corresponding
        single-key operation would be (:meth:`lookup` for ``probe=False``,
        :meth:`probe` for ``probe=True``), so batching never changes results
        or statistics — it only saves round trips on a networked transport.
        """
        results: List[LookupResult] = []
        for request in requests:
            if request.probe:
                results.append(
                    LookupResult(
                        hit=self.probe(request.key, request.lo, request.hi),
                        key=request.key,
                        key_ever_stored=request.key in self._keys_ever_stored,
                    )
                )
            else:
                results.append(self.lookup(request.key, request.lo, request.hi))
        return results

    @_locked
    def probe(self, key: str, lo: int, hi: int) -> bool:
        """Check whether a lookup over ``[lo, hi]`` would hit.

        Unlike :meth:`lookup`, a probe does not count towards hit/miss
        statistics and does not touch LRU ordering.  The client library uses
        it to classify consistency misses: a miss is a consistency miss if a
        sufficiently fresh version existed (a probe over the transaction's
        original staleness window hits) but the transaction's narrowed pin
        set could not use it.
        """
        request = Interval(lo, hi + 1)
        for entry in self._entries.get(key, ()):
            if entry.effective_interval(self.last_invalidation_timestamp).intersects(request):
                return True
        return False

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    @_locked
    def put(
        self,
        key: str,
        value: object,
        interval: Interval,
        tags: FrozenSet[InvalidationTag] = frozenset(),
    ) -> bool:
        """Insert one version of ``key``.

        Returns True if the entry was stored.  Entries whose interval is
        already covered by an existing version are rejected (they add no
        information).  A still-valid entry whose tags were already
        invalidated at a timestamp inside its interval is truncated on
        insert, which closes the insert/invalidate race window.
        """
        if interval.empty:
            self.stats.rejected_insertions += 1
            return False

        if interval.unbounded and tags:
            # The insert/invalidate race: this still-valid entry was read
            # before an invalidation of its tags that the server has already
            # processed.  Truncate at the *first* invalidation at or after
            # the entry's birth — truncating at the latest one would claim
            # validity for every intermediate version, which concurrent
            # writers (several commits between a transaction's query and its
            # cache insert) turn into observable mixed-snapshot reads.
            first = self._first_invalidation_at_or_after(tags, interval.lo)
            if first is not None:
                interval = Interval(interval.lo, max(first, interval.lo + 1))

        versions = self._entries.setdefault(key, [])
        for existing in versions:
            if existing.interval.contains_interval(interval):
                self.stats.rejected_insertions += 1
                if not self._entries[key]:
                    del self._entries[key]
                return False

        entry = CacheEntry(
            key=key,
            value=value,
            interval=interval,
            tags=tags if interval.unbounded else frozenset(),
            size=estimate_size(key, value),
            last_access=self.clock.now(),
        )
        versions.append(entry)
        versions.sort(key=lambda e: e.interval.lo)
        self._used_bytes += entry.size
        self._keys_ever_stored.add(key)
        self._touch(key)
        if entry.still_valid:
            self._index_tags(key, entry.tags)
        self.stats.insertions += 1
        self._enforce_capacity()
        return True

    # ------------------------------------------------------------------
    # Key migration (cluster elasticity)
    # ------------------------------------------------------------------
    @_locked
    def extract_entries(
        self, cursor: Optional[str] = None, limit: int = 64
    ) -> Tuple[List[EntryRecord], Optional[str]]:
        """Page through this node's entries for migration.

        Returns up to ``limit`` *keys'* worth of entry versions (all versions
        of a key travel in the same chunk so a key is never half-migrated)
        as :class:`EntryRecord` objects, plus a cursor: pass it back to
        resume after the last returned key, or ``None`` when the scan is
        complete.  Extraction is non-destructive — entries stay on this node
        until the coordinator explicitly discards them — and does not touch
        hit/miss statistics or LRU ordering.
        """
        if limit < 1:
            raise ValueError("limit must be positive")
        # One linear scan + a bounded heap per page instead of re-sorting the
        # whole key set; paging stays stateless across calls (no server-side
        # scan handle to leak or invalidate), which a migration coordinator
        # retrying against a live node depends on.
        candidates = (
            key for key in self._entries if cursor is None or key > cursor
        )
        chunk = heapq.nsmallest(limit + 1, candidates)
        more = len(chunk) > limit
        chunk = chunk[:limit]
        records = [
            EntryRecord(key=key, value=entry.value, interval=entry.interval, tags=entry.tags)
            for key in chunk
            for entry in self._entries[key]
        ]
        self.stats.entries_extracted += len(records)
        next_cursor = chunk[-1] if more else None
        return records, next_cursor

    @_locked
    def install_entries(self, records: Sequence[EntryRecord]) -> int:
        """Install migrated entry versions; returns how many were stored.

        Installation goes through :meth:`put`, so all of its semantics apply:
        interval-covered duplicates are rejected, and a still-valid record
        whose tags this node has already seen invalidated is truncated on
        insert (the same mechanism that closes the insert/invalidate race
        protects a record that crossed the wire during a migration).
        """
        installed = 0
        for record in records:
            if self.put(record.key, record.value, record.interval, record.tags):
                installed += 1
        self.stats.entries_installed += installed
        return installed

    @_locked
    def discard_keys(self, keys: Sequence[str]) -> int:
        """Drop every version of the given keys (post-migration cleanup).

        Used by the migration coordinator after the new owner confirmed the
        install, so the old owner's capacity is not wasted on entries the
        ring will never route to it again.  Returns the number of entry
        versions removed.  The keys remain in the ever-stored set: the node
        *did* store them, and routing never consults this node for them
        again anyway.
        """
        removed = 0
        for key in keys:
            entries = self._entries.pop(key, None)
            if entries is None:
                continue
            for entry in entries:
                self._drop_entry(entry)
            removed += len(entries)
            self._lru.pop(key, None)
        self.stats.entries_discarded += removed
        return removed

    # ------------------------------------------------------------------
    # Invalidation stream
    # ------------------------------------------------------------------
    @_locked
    def process_invalidation(self, message: InvalidationMessage) -> None:
        """Apply one invalidation message from the database's stream."""
        self.stats.invalidation_messages += 1
        timestamp = message.timestamp
        affected_keys: Set[str] = set()
        for tag in message.tags:
            self._record_tag_invalidation(tag, timestamp)
            if tag.is_wildcard:
                affected_keys.update(self._table_index.get(tag.table, ()))
            else:
                affected_keys.update(self._tag_index.get(tag, ()))
                # A precise update also affects entries that depend on a
                # wildcard (scan) of the same table.
                affected_keys.update(
                    key
                    for key in self._table_index.get(tag.table, ())
                    if self._has_wildcard_dependency(key, tag.table)
                )
        for key in affected_keys:
            self._truncate_still_valid(key, timestamp)
        if timestamp > self.last_invalidation_timestamp:
            self.last_invalidation_timestamp = timestamp

    @_locked
    def note_timestamp(self, timestamp: int) -> None:
        """Advance the last-invalidation watermark without any tags.

        The benchmark driver uses this to model update transactions whose
        invalidation message carried no tags relevant to this node; the
        watermark still moves so still-valid entries can be relied on through
        the new timestamp.
        """
        if timestamp > self.last_invalidation_timestamp:
            self.last_invalidation_timestamp = timestamp

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    @_locked
    def evict_stale(self, oldest_useful_timestamp: int) -> int:
        """Drop entries that ended before ``oldest_useful_timestamp``.

        Such entries cannot satisfy any transaction within the staleness
        limit and are eagerly removed (paper section 4.1).  Returns the
        number of entries removed.
        """
        removed = 0
        for key in list(self._entries.keys()):
            keep: List[CacheEntry] = []
            for entry in self._entries[key]:
                hi = entry.interval.hi
                if hi is not None and hi <= oldest_useful_timestamp:
                    self._drop_entry(entry)
                    removed += 1
                else:
                    keep.append(entry)
            if keep:
                self._entries[key] = keep
            else:
                del self._entries[key]
                self._lru.pop(key, None)
        self._prune_invalidation_histories(oldest_useful_timestamp)
        self.stats.stale_evictions += removed
        return removed

    @_locked
    def clear(self) -> None:
        """Remove every entry (used between benchmark configurations)."""
        self._entries.clear()
        self._lru.clear()
        self._tag_index.clear()
        self._table_index.clear()
        self._used_bytes = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _touch(self, key: str) -> None:
        self._lru.pop(key, None)
        self._lru[key] = None

    def _enforce_capacity(self) -> None:
        while self._used_bytes > self.capacity_bytes and self._lru:
            victim_key, _ = self._lru.popitem(last=False)
            for entry in self._entries.pop(victim_key, []):
                self._drop_entry(entry)
                self.stats.lru_evictions += 1

    def _drop_entry(self, entry: CacheEntry) -> None:
        self._used_bytes -= entry.size
        if self._used_bytes < 0:
            self._used_bytes = 0
        self._unindex_tags(entry.key, entry.tags)

    def _index_tags(self, key: str, tags: FrozenSet[InvalidationTag]) -> None:
        for tag in tags:
            self._tag_index.setdefault(tag, set()).add(key)
            self._table_index.setdefault(tag.table, set()).add(key)

    def _unindex_tags(self, key: str, tags: FrozenSet[InvalidationTag]) -> None:
        for tag in tags:
            keys = self._tag_index.get(tag)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._tag_index[tag]
            table_keys = self._table_index.get(tag.table)
            if table_keys is not None:
                table_keys.discard(key)
                if not table_keys:
                    del self._table_index[tag.table]

    def _has_wildcard_dependency(self, key: str, table: str) -> bool:
        for entry in self._entries.get(key, ()):
            if entry.still_valid and any(
                tag.is_wildcard and tag.table == table for tag in entry.tags
            ):
                return True
        return False

    def _truncate_still_valid(self, key: str, timestamp: int) -> None:
        for entry in self._entries.get(key, ()):
            if entry.still_valid:
                self._unindex_tags(key, entry.tags)
                entry.interval = entry.interval.truncate(timestamp)
                entry.tags = frozenset()
                self.stats.entries_invalidated += 1

    def _first_invalidation_at_or_after(
        self, tags: FrozenSet[InvalidationTag], lo: int
    ) -> Optional[int]:
        """Earliest processed invalidation at/after ``lo`` affecting ``tags``.

        This is the exact truncation point for a late insert: the entry was
        definitely valid at ``lo`` (the database computed that) and stopped
        being current no later than the first subsequent invalidation of any
        of its dependencies.  Returns ``None`` when no such invalidation has
        been processed (the entry is genuinely still valid here).
        """
        first: Optional[int] = None
        for tag in tags:
            histories = []
            if tag.is_wildcard:
                # Any invalidation on the table affects a wildcard dependency.
                histories.extend(
                    history
                    for other, history in self._tag_invalidations.items()
                    if other.table == tag.table
                )
                if tag.table in self._table_invalidations:
                    histories.append(self._table_invalidations[tag.table])
            else:
                if tag in self._tag_invalidations:
                    histories.append(self._tag_invalidations[tag])
                if tag.table in self._table_invalidations:
                    histories.append(self._table_invalidations[tag.table])
            for history in histories:
                index = bisect.bisect_left(history, lo)
                if index < len(history) and (first is None or history[index] < first):
                    first = history[index]
        return first

    def _record_tag_invalidation(self, tag: InvalidationTag, timestamp: int) -> None:
        if tag.is_wildcard:
            history = self._table_invalidations.setdefault(tag.table, [])
        else:
            history = self._tag_invalidations.setdefault(tag, [])
        # The stream is timestamp-ordered, so this is almost always a plain
        # append; the bisect covers a message replayed or re-delivered late
        # (inserted once, O(log n) dedup — the history is sorted).
        if not history or timestamp > history[-1]:
            history.append(timestamp)
        else:
            index = bisect.bisect_left(history, timestamp)
            if index == len(history) or history[index] != timestamp:
                history.insert(index, timestamp)

    def _prune_invalidation_histories(self, oldest_useful_timestamp: int) -> None:
        """Drop history prefixes no lookup can reach (called by evict_stale).

        The largest pruned timestamp is kept as each history's head: a late
        insert born before the horizon then truncates to at most that
        timestamp — i.e. to an interval that is itself entirely below the
        horizon and unreachable — instead of overclaiming up to the next
        retained invalidation.
        """
        for histories in (self._tag_invalidations, self._table_invalidations):
            for history in histories.values():
                index = bisect.bisect_right(history, oldest_useful_timestamp)
                if index > 1:
                    del history[: index - 1]
