"""Cache nodes as real networked servers (TCP, framed wire protocol).

The paper deploys cache nodes as standalone servers that application servers
reach over a gigabit LAN.  This module provides that topology for the
reproduction:

* :class:`CacheServerProcess` serves one :class:`CacheServer` over TCP, with
  a choice of two engines.  ``style="threaded"`` (the default) dedicates one
  handler thread to each accepted connection — simple, debuggable, and how
  the server has always run.  ``style="eventloop"`` serves *every*
  connection from one ``selectors``-based loop thread: sockets are
  non-blocking, partial frames are reassembled per connection, decoded
  requests are dispatched to a small worker pool, and responses are written
  back **as they finish** — a slow ``extract_entries`` never head-of-line
  blocks a ``lookup`` pipelined on the same connection.  Per-connection
  backpressure bounds the number of requests in flight: a connection that
  exceeds ``max_queued_per_connection`` stops being read until its backlog
  drains, so one firehose client cannot swamp the worker pool.
* :class:`SocketTransport` is the client side, in two generations.  The
  *pooled* mode (``pipelined=False``) keeps up to ``pool_size`` legacy
  one-request-in-flight connections.  The *pipelined* mode
  (``pipelined=True``) multiplexes any number of outstanding RPCs over
  ``mux_connections`` (default 1) sockets: each caller registers a
  per-request :class:`repro.comm.wire.ResponseSlot`, one reader thread per
  connection demultiplexes responses by ``request_id``, and the socket
  count stays constant no matter how many client threads share the
  transport.

Both engines of the server accept both client generations on the same port:
the framing is detected from the first byte of each connection (see
:mod:`repro.comm.wire`).

Wire protocol
-------------
Legacy frames are a 4-byte big-endian length plus a pickled payload; a
request payload decodes to ``(op, args)`` and a response to ``("ok", value)``
or ``("err", message)``.  Multiplexed frames carry a struct-packed
``(request_id, opcode, length)`` header (``!QBI``); the opcode names the
operation numerically on requests and carries ``OP_OK``/``OP_ERR`` on
responses, whose body is the bare result (or error string).  Payloads are
pickled (protocol 5) because cached values are arbitrary Python objects that
must round-trip exactly; both endpoints of the simulated deployment are
trusted, the standard caveat for pickle-based RPC.  No path concatenates a
header onto a payload: frames are written as buffer vectors with ``sendmsg``
gather I/O (:func:`repro.comm.wire.send_buffers`).

``CacheServerProcess(simulated_latency_seconds=...)`` models the LAN round
trip of the paper's gigabit testbed.  The threaded engine sleeps in the
handler thread before serving (concurrent connections overlap their modelled
latency, one thread each); the event-loop engine instead *delays the
response* on a timer wheel inside the loop, so a thousand in-flight modelled
round trips cost zero threads — the same modelling decision an asynchronous
server would force in production.
"""

from __future__ import annotations

import heapq
import itertools
import pickle
import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cache.entry import EntryRecord, LookupRequest, LookupResult
from repro.cache.server import CacheServer, CacheServerStats
from repro.comm import wire
from repro.comm.multicast import InvalidationMessage
from repro.comm.wire import (
    BINARY_ACK,
    BINARY_NAK,
    BINARY_OPCODES,
    LEGACY_HEADER,
    MAX_FRAME_BYTES,
    MUX_HEADER,
    MUX_MAGIC,
    MUX_MAGIC_BINARY,
    OP_ERR,
    OP_NAMES,
    OP_OK,
    OPCODES,
    OPCODE_MASK,
    FLAG_BIN,
    FLAG_OOB,
    FrameAssembler,
    ResponseSlot,
    recv_exactly,
)
from repro.comm.transport import current_deadline, remaining_deadline
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

__all__ = [
    "CacheServerProcess",
    "SocketTransport",
    "CacheTransportError",
    "CacheNodeUnreachableError",
    "CacheNodeConnectError",
    "CacheNodeTimeoutError",
    "CacheNodeStreamPoisonedError",
    "WireCodecMismatchError",
    "DEFAULT_POOL_SIZE",
    "DEFAULT_WORKER_THREADS",
    "DEFAULT_MAX_QUEUED_PER_CONNECTION",
    "SERVER_STYLES",
]

#: Frame header of the legacy protocol (kept under its historical name; the
#: multiplexed header lives in :mod:`repro.comm.wire`).
_HEADER = LEGACY_HEADER

#: Default size of a pooled :class:`SocketTransport` connection pool: how
#: many legacy one-in-flight RPCs one application server keeps going to one
#: cache node.  Ignored in pipelined mode, where one socket multiplexes.
DEFAULT_POOL_SIZE = 4

#: Worker threads of the event-loop engine's dispatch pool.
DEFAULT_WORKER_THREADS = 4

#: Per-connection backpressure bound of the event-loop engine: a connection
#: with this many requests in flight stops being read until responses drain.
DEFAULT_MAX_QUEUED_PER_CONNECTION = 32

#: Supported values of ``CacheServerProcess(style=...)``.
SERVER_STYLES = ("threaded", "eventloop")

#: The multi-lookup opcode gets the reusable-scratch encode path on the
#: pipelined binary client (see :class:`repro.comm.wire.EncodeScratch`).
_MULTI_LOOKUP_OPCODE = OPCODES["multi_lookup"]


def _set_nodelay(sock: socket.socket) -> None:
    """Disable Nagle's algorithm (frames are tiny; latency matters)."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - non-TCP sockets in exotic setups
        pass


class CacheTransportError(RuntimeError):
    """A cache RPC failed (connection lost or server-side error)."""


class CacheNodeUnreachableError(CacheTransportError):
    """The node could not be reached at all (connection-level I/O failure).

    Distinguished from a server-side error response so failure-aware routing
    (:class:`repro.cache.cluster.CacheCluster`) degrades only on genuine
    connectivity loss, never on an application-level error that would
    otherwise be masked.

    The common base of a small taxonomy — :class:`CacheNodeConnectError`,
    :class:`CacheNodeTimeoutError`, :class:`CacheNodeStreamPoisonedError` —
    so retry decisions and health accounting can branch on *how* the node
    was unreachable without string-matching messages.  Every instance
    carries ``node`` (the node name or address label, when known) and
    ``op`` (the operation in flight, when there was one).
    """

    def __init__(
        self,
        message: str,
        *,
        node: Optional[str] = None,
        op: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.node = node
        self.op = op


class CacheNodeConnectError(CacheNodeUnreachableError):
    """Dialling the node failed outright (refused, unresolvable, no route).

    The cheapest failure mode: no request was ever sent, so a retry risks
    nothing, and a refused connect returns in microseconds — the signature
    of a crashed process whose port is gone.
    """


class CacheNodeTimeoutError(CacheNodeUnreachableError):
    """The node accepted the connection but a wait ran out of time.

    Raised both for a per-attempt RPC timeout and for a propagated per-op
    deadline (:func:`repro.comm.transport.deadline_scope`) expiring before
    the attempt could start.  Unlike a connect failure, time already spent
    is gone — retry logic must check the remaining deadline budget.
    """


class CacheNodeStreamPoisonedError(CacheNodeUnreachableError):
    """The connection died mid-stream with requests outstanding.

    The request/response stream can no longer be trusted (a response may
    have been half-read, or may land after the caller stopped waiting), so
    the whole connection was poisoned and every pending call failed.  The
    request *may have executed* server-side: safe to retry only for
    idempotent operations.
    """


class WireCodecMismatchError(CacheTransportError):
    """The two endpoints do not speak the same wire body codec.

    Raised when a binary-codec client dials a server that answers the
    codec handshake with :data:`repro.comm.wire.BINARY_NAK` (or not at
    all — a server predating the handshake closes or stalls, which the
    client treats the same way).  Deliberately *not* a
    :class:`CacheNodeUnreachableError`: the node is reachable, the
    deployment is misconfigured, and failure-aware routing must not paper
    over that by degrading lookups.
    """


def _classify_unreachable(
    message: str,
    cause: BaseException,
    *,
    node: Optional[str] = None,
    op: Optional[str] = None,
) -> CacheNodeUnreachableError:
    """Wrap a connection-level failure in the matching taxonomy class.

    A cause that already carries a taxonomy (a poisoning exception fanned
    out to every pending slot) keeps its class, so the caller that timed
    out and the callers it poisoned report consistently; a bare socket
    timeout becomes :class:`CacheNodeTimeoutError`; anything else is a
    mid-stream loss, :class:`CacheNodeStreamPoisonedError`.
    """
    if isinstance(cause, CacheNodeUnreachableError):
        cls = type(cause)
    elif isinstance(cause, socket.timeout):
        cls = CacheNodeTimeoutError
    else:
        cls = CacheNodeStreamPoisonedError
    return cls(message, node=node, op=op)


# ----------------------------------------------------------------------
# Legacy framing helpers (shared by both endpoints)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: object) -> None:
    """Serialize ``payload`` and write it as one legacy frame.

    The header and body go out as two gathered buffers (``sendmsg``), never
    concatenated — the old ``header + data`` copied every payload twice.
    """
    wire.send_buffers(sock, wire.encode_legacy_frame(payload))


def recv_frame(sock: socket.socket) -> object:
    """Read one legacy frame and deserialize its payload.

    Raises :class:`ConnectionError` on EOF (orderly shutdown of the peer).
    """
    header = recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CacheTransportError(f"oversized frame: {length} bytes")
    return pickle.loads(recv_exactly(sock, length))


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------
class CacheServerProcess:
    """One cache node served over TCP in its own thread(s).

    Wraps a :class:`CacheServer` and exposes it at a TCP endpoint.  Dispatch
    takes no process-level lock — concurrent requests are synchronized by
    the :class:`CacheServer`'s own reentrant lock, so the socket path has
    exactly the same thread-safety contract as in-process callers.  The
    wrapped server object remains reachable via :attr:`server` for tests and
    introspection, but live traffic goes through the socket.

    ``style`` selects the serving engine (see the module docstring):
    ``"threaded"`` is one handler thread per connection; ``"eventloop"`` is
    one selector loop plus a ``worker_threads``-wide dispatch pool, with
    out-of-order response completion and per-connection backpressure
    (``max_queued_per_connection``).  Both speak both wire framings.
    """

    def __init__(
        self,
        server: CacheServer,
        host: str = "127.0.0.1",
        port: int = 0,
        simulated_latency_seconds: float = 0.0,
        style: str = "threaded",
        worker_threads: int = DEFAULT_WORKER_THREADS,
        max_queued_per_connection: int = DEFAULT_MAX_QUEUED_PER_CONNECTION,
        wire_codec: Optional[str] = None,
        write_coalescing: bool = True,
    ) -> None:
        if style not in SERVER_STYLES:
            raise ValueError(f"unknown server style {style!r}; expected one of {SERVER_STYLES}")
        if worker_threads < 1:
            raise ValueError("worker_threads must be positive")
        if max_queued_per_connection < 1:
            raise ValueError("max_queued_per_connection must be positive")
        self.server = server
        self.style = style
        #: "binary" (the default): this server answers the binary-codec
        #: handshake with ACK and serves both codecs.  "pickle": a
        #: pickle-only server — binary-codec clients are NAKed at the
        #: handshake (the mixed-version deployment the fail-fast test pins).
        self.wire_codec = wire.resolve_wire_codec(wire_codec)
        self.simulated_latency_seconds = simulated_latency_seconds
        self._listener = socket.create_server((host, port))
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._running = True
        self._engine: Optional[_EventLoopEngine] = None
        if style == "eventloop":
            self._engine = _EventLoopEngine(
                self, self._listener, worker_threads, max_queued_per_connection,
                write_coalescing,
            )
            return
        #: Guards the connection/handler registries (mutated by the accept
        #: loop, read by shutdown).
        self._registry_lock = threading.Lock()
        self._connections: List[socket.socket] = []
        self._handler_threads: List[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"cache-node-{server.name}", daemon=True
        )
        self._accept_thread.start()

    @property
    def running(self) -> bool:
        """True until :meth:`shutdown` completes."""
        return self._running

    @property
    def backpressure_pauses(self) -> int:
        """Times the event-loop engine paused reading a connection (0 when threaded)."""
        return self._engine.backpressure_pauses if self._engine is not None else 0

    @property
    def max_in_flight_per_connection(self) -> int:
        """High-water mark of queued requests on any one connection (event loop)."""
        return self._engine.max_in_flight if self._engine is not None else 0

    @property
    def sendmsg_calls(self) -> int:
        """``sendmsg`` syscalls issued by the event-loop engine (0 when threaded).

        The write-coalescing benchmark compares this against the response
        count: with coalescing on, one readiness event writes every drained
        response of a connection in one gather.
        """
        return self._engine.sendmsg_calls if self._engine is not None else 0

    # ------------------------------------------------------------------
    # Threaded engine
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            _set_nodelay(connection)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name=f"cache-conn-{self.server.name}",
                daemon=True,
            )
            with self._registry_lock:
                if not self._running:
                    # shutdown() ran between accept() and registration; it
                    # will not see this socket, so close it here.
                    _close_quietly(connection)
                    continue
                self._connections.append(connection)
                self._handler_threads.append(handler)
            handler.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            # The first byte tells the two client generations apart: the
            # multiplexed protocol opens with MUX_MAGIC, which can never
            # begin a sane legacy length header.
            try:
                first = connection.recv(1)
            except OSError:
                return
            if not first:
                return
            if first[0] == MUX_MAGIC_BINARY:
                # Binary-codec handshake: the client will not send a frame
                # until it sees the ACK, and a pickle-only server NAKs so
                # the client fails fast instead of mis-decoding.
                try:
                    if self.wire_codec != "binary":
                        connection.send(bytes([BINARY_NAK]))
                        return
                    connection.send(bytes([BINARY_ACK]))
                except OSError:
                    return
                self._serve_mux_connection(connection)
            elif first[0] == MUX_MAGIC:
                self._serve_mux_connection(connection)
            else:
                self._serve_legacy_connection(connection, first)
        finally:
            _close_quietly(connection)
            # Drop this connection from the registries so a client pool
            # dropping and re-dialling connections (timeouts, failures)
            # cannot grow them without bound over the process lifetime.
            with self._registry_lock:
                if connection in self._connections:
                    self._connections.remove(connection)
                current = threading.current_thread()
                if current in self._handler_threads:
                    self._handler_threads.remove(current)

    def _serve_legacy_connection(
        self, connection: socket.socket, prefix: Optional[bytes]
    ) -> None:
        while self._running:
            try:
                if prefix is not None:
                    header = prefix + recv_exactly(connection, _HEADER.size - len(prefix))
                    prefix = None
                else:
                    header = recv_exactly(connection, _HEADER.size)
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    return  # corrupt frame header: the stream cannot resync
                body = recv_exactly(connection, length)
            except (ConnectionError, OSError):
                return  # client went away or shutdown closed the socket
            try:
                request = pickle.loads(body)
            except Exception as exc:
                # Undecodable payload; the frame was consumed in full, so
                # the stream is still in sync — report and keep serving.
                try:
                    send_frame(connection, ("err", f"bad request frame: {exc}"))
                except OSError:
                    return
                continue
            if self.simulated_latency_seconds > 0.0:
                # Lock-free by construction: concurrent requests overlap
                # their modelled network time like real round trips.
                time.sleep(self.simulated_latency_seconds)
            try:
                op, args = request
                result = self._dispatch(op, args)
                response = ("ok", result)
            except Exception as exc:  # server must survive bad requests
                response = ("err", f"{type(exc).__name__}: {exc}")
            try:
                send_frame(connection, response)
            except OSError:
                return

    def _serve_mux_connection(self, connection: socket.socket) -> None:
        """Multiplexed framing on the threaded engine.

        Requests are served in arrival order on this connection (the
        event-loop engine is the one that completes out of order); the
        response still carries the request id, so a pipelined client works
        against either engine.
        """
        while self._running:
            try:
                header = recv_exactly(connection, MUX_HEADER.size)
                request_id, opcode, length = MUX_HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    return
                body = recv_exactly(connection, length)
            except (ConnectionError, OSError):
                return
            if self.simulated_latency_seconds > 0.0:
                time.sleep(self.simulated_latency_seconds)
            buffers = self._execute_mux(request_id, opcode, memoryview(body))
            try:
                wire.send_buffers(connection, buffers)
            except OSError:
                return

    # ------------------------------------------------------------------
    # Dispatch (shared by both engines)
    # ------------------------------------------------------------------
    def _execute_mux(
        self, request_id: int, opcode: int, body: memoryview
    ) -> List[wire.Buffer]:
        """Serve one multiplexed request; returns the response frame buffers.

        The response uses the request's codec (``FLAG_BIN`` on the opcode):
        the server keeps no per-connection codec state, so binary and pickle
        frames can interleave freely on one connection — which is exactly
        what a binary client does, pickling only the maintenance ops.
        """
        binary = opcode & FLAG_BIN
        try:
            op = OP_NAMES.get(opcode & OPCODE_MASK)
            if op is None:
                raise ValueError(f"unknown cache operation opcode {opcode & OPCODE_MASK}")
            if binary:
                args = wire.decode_binary_args(opcode & OPCODE_MASK, body)
            else:
                args = wire.decode_body(opcode & FLAG_OOB, body)
            result = self._dispatch(op, args)
            if binary:
                return wire.encode_binary_mux_frame(request_id, OP_OK, result)
            return wire.encode_mux_frame(request_id, OP_OK, result)
        except Exception as exc:  # server must survive bad requests
            message = f"{type(exc).__name__}: {exc}"
            if binary:
                return wire.encode_binary_mux_frame(request_id, OP_ERR, message)
            return wire.encode_mux_frame(request_id, OP_ERR, message)

    def _execute_legacy(self, body: memoryview) -> List[wire.Buffer]:
        """Serve one legacy request (event-loop path); returns frame buffers."""
        try:
            request = pickle.loads(body)
        except Exception as exc:
            return wire.encode_legacy_frame(("err", f"bad request frame: {exc}"))
        try:
            op, args = request
            result = self._dispatch(op, args)
            response = ("ok", result)
        except Exception as exc:
            response = ("err", f"{type(exc).__name__}: {exc}")
        return wire.encode_legacy_frame(response)

    def _dispatch(self, op: str, args: tuple) -> object:
        server = self.server
        if op == "lookup":
            return server.lookup(*args)
        if op == "multi_lookup":
            return server.multi_lookup(*args)
        if op == "put":
            return server.put(*args)
        if op == "probe":
            return server.probe(*args)
        if op == "was_ever_stored":
            return server.was_ever_stored(*args)
        if op == "evict_stale":
            return server.evict_stale(*args)
        if op == "clear":
            return server.clear()
        if op == "stats":
            # A locked snapshot, so the client sees a stable copy of the
            # counters even while other handler threads mutate them.
            return server.stats_snapshot()
        if op == "reset_stats":
            return server.reset_stats()
        if op == "extract_entries":
            return server.extract_entries(*args)
        if op == "install_entries":
            return server.install_entries(*args)
        if op == "discard_keys":
            return server.discard_keys(*args)
        if op == "keys":
            return server.keys()
        if op == "watermark":
            return server.last_invalidation_timestamp
        if op == "invalidate":
            return server.process_invalidation(*args)
        if op == "invalidate_tags":
            # Wire-delivered invalidation stream: a batch of (timestamp,
            # tags) pairs, applied in order.  This is how out-of-process
            # nodes subscribe to the InvalidationBus — the bus cannot call
            # into another address space, so the guard ships the stream
            # here instead.  Returns the batch size so the flush path can
            # account delivered messages.
            (batch,) = args
            for timestamp, tags in batch:
                server.process_invalidation(
                    InvalidationMessage(timestamp=timestamp, tags=tuple(tags))
                )
            return len(batch)
        if op == "note_timestamp":
            return server.note_timestamp(*args)
        if op == "versions_of":
            return server.versions_of(*args)
        if op == "ping":
            return server.name
        if op == "gossip":
            return server.gossip_exchange(*args)
        if op == "key_digest":
            return server.key_digest(*args)
        if op == "keys_in_range":
            return server.keys_in_range(*args)
        raise ValueError(f"unknown cache operation {op!r}")

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop serving: close the listener and every connection, join threads.

        Idempotent, and safe to call while handler threads are mid-request:
        closing a connection wakes its handler out of ``recv``.
        """
        if self._engine is not None:
            if self._running:
                self._running = False
                self._engine.shutdown()
            return
        with self._registry_lock:
            if not self._running:
                return
            self._running = False
            connections = list(self._connections)
            handlers = list(self._handler_threads)
        _close_quietly(self._listener)
        for connection in connections:
            _close_quietly(connection)
        for handler in handlers:
            handler.join(timeout=2.0)
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "CacheServerProcess":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.address
        return f"CacheServerProcess({self.server.name!r} @ {host}:{port}, {self.style})"


# ----------------------------------------------------------------------
# Event-loop engine
# ----------------------------------------------------------------------
class _EventLoopConnection:
    """Per-connection state of the event-loop engine."""

    __slots__ = (
        "sock",
        "assembler",
        "pending",
        "outgoing",
        "in_flight",
        "paused",
        "closed",
        "want_write",
        "greeted",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.assembler = FrameAssembler()
        #: True once the codec handshake reply (if any) has been sent; the
        #: binary-codec client blocks on the ACK before its first frame.
        self.greeted = False
        #: Parsed frames not yet handed to the worker pool (they queue here
        #: while the connection is over its backpressure bound).
        self.pending: deque = deque()
        #: Encoded-but-unwritten response buffers (memoryviews mid-write).
        self.outgoing: deque = deque()
        #: Requests dispatched off this connection whose responses have not
        #: been fully written yet — the quantity backpressure bounds.
        self.in_flight = 0
        self.paused = False
        self.closed = False
        self.want_write = False


class _EventLoopEngine:
    """A ``selectors`` loop serving every connection of one cache node.

    One thread owns the selector: it accepts, reads, reassembles frames,
    and writes responses.  Decoded requests are dispatched on a small
    :class:`ThreadPoolExecutor` (CPython threads; the cache server work is
    lock-synchronized anyway) and completed responses come back to the loop
    through a thread-safe outbox plus a socketpair wakeup, so responses are
    written strictly by the loop thread, in completion order — **not**
    arrival order.  Modelled latency is a timer heap inside the loop: a
    delayed response occupies no thread while it "travels".

    Backpressure: when a connection's :attr:`_EventLoopConnection.in_flight`
    reaches ``max_queued_per_connection``, its read interest is dropped —
    the kernel socket buffer then fills and the client's sends stall, which
    is TCP doing the flow control — and reading resumes once the backlog
    drains below the bound.
    """

    #: How much to ask the kernel for per readable event.
    _RECV_SIZE = 256 * 1024

    #: Operations dispatched to the worker pool instead of running inline
    #: on the loop thread.  The request path (lookups, puts, probes, the
    #: invalidation stream) is microseconds of lock-synchronized work — a
    #: pool handoff costs more than the op — so it normally runs inline,
    #: reactor style.  Maintenance ops can touch the whole store (an
    #: eviction sweep scans everything under the server lock), so they go
    #: to the pool — and while any is in flight the request path detours to
    #: the pool too (see ``_dispatch_pending``), so the loop thread never
    #: queues on a lock a whole-store scan is holding.  This split is what
    #: lets a fast lookup overtake a slow extract pipelined on the same
    #: connection.
    _POOLED_OPS = frozenset(
        {"extract_entries", "install_entries", "discard_keys", "keys", "clear",
         "evict_stale", "key_digest", "keys_in_range"}
    )
    _POOLED_OPCODES = frozenset(OPCODES[op] for op in _POOLED_OPS)

    def __init__(
        self,
        process: CacheServerProcess,
        listener: socket.socket,
        worker_threads: int,
        max_queued_per_connection: int,
        write_coalescing: bool = True,
    ) -> None:
        self._process = process
        self._listener = listener
        self._max_queued = max_queued_per_connection
        #: With coalescing on, completed responses are *queued* per
        #: connection and flushed once per loop iteration — every response
        #: that completed in the same readiness batch rides one ``sendmsg``
        #: gather instead of one syscall each.  Touched only by the loop
        #: thread (workers post via the outbox), so no lock is needed.
        self._coalesce = write_coalescing
        self._dirty: set = set()
        self.sendmsg_calls = 0
        self._selector = selectors.DefaultSelector()
        listener.setblocking(False)
        self._selector.register(listener, selectors.EVENT_READ, None)
        #: Loop wakeup channel: workers write one byte after posting to the
        #: outbox; the loop drains it and the outbox together.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, None)
        self._outbox_lock = threading.Lock()
        self._outbox: deque = deque()  # (connection, response_buffers)
        #: (deliver_at, seq, connection, buffers) — modelled-latency timers.
        self._timers: list = []
        self._timer_seq = itertools.count()
        self._pool = ThreadPoolExecutor(
            max_workers=worker_threads,
            thread_name_prefix=f"cache-worker-{process.server.name}",
        )
        #: Maintenance ops currently on the pool.  While nonzero, the
        #: request path detours to the pool as well: a whole-store op may
        #: be holding the CacheServer lock, and the loop thread must never
        #: wait on it (a blocked reactor stalls *every* connection).
        self._pooled_active = 0
        self._pooled_lock = threading.Lock()
        self.backpressure_pauses = 0
        self.max_in_flight = 0
        self._thread = threading.Thread(
            target=self._run, name=f"cache-loop-{process.server.name}", daemon=True
        )
        self._thread.start()

    # -- loop ------------------------------------------------------------
    def _run(self) -> None:
        try:
            while self._process._running:
                self._flush_dirty()
                if self._timers:
                    remaining = self._timers[0][0] - time.monotonic()
                    if remaining <= 0.0:
                        self._fire_timers()
                        continue
                    if remaining < 0.002:
                        # epoll rounds its timeout up to whole milliseconds,
                        # which would stretch a sub-millisecond modelled RTT
                        # to 1 ms+: poll for I/O, then park briefly.
                        events = self._selector.select(0)
                        if not events:
                            time.sleep(min(remaining, 2.5e-4))
                            continue
                    else:
                        events = self._selector.select(remaining)
                else:
                    events = self._selector.select(None)
                for key, mask in events:
                    if key.fileobj is self._listener:
                        self._accept()
                    elif key.fileobj is self._wake_recv:
                        self._drain_wakeups()
                    else:
                        self._service(key.data, mask)
                self._fire_timers()
        finally:
            self._teardown()

    def _accept(self) -> None:
        while True:
            try:
                sock, _peer = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            _set_nodelay(sock)
            sock.setblocking(False)
            connection = _EventLoopConnection(sock)
            self._selector.register(sock, selectors.EVENT_READ, connection)

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            return
        while True:
            with self._outbox_lock:
                if not self._outbox:
                    return
                connection, buffers = self._outbox.popleft()
            self._queue_response(connection, buffers)

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except (BlockingIOError, InterruptedError):
            pass  # a wakeup is already pending; that is enough
        except OSError:
            pass  # shutting down

    def _fire_timers(self) -> None:
        now = time.monotonic()
        while self._timers and self._timers[0][0] <= now:
            _at, _seq, connection, buffers = heapq.heappop(self._timers)
            self._write_or_queue(connection, buffers)

    # -- per-connection I/O ---------------------------------------------
    def _service(self, connection: _EventLoopConnection, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            self._flush(connection)
        if connection.closed:
            return
        if mask & selectors.EVENT_READ:
            self._read(connection)

    def _read(self, connection: _EventLoopConnection) -> None:
        try:
            data = connection.sock.recv(self._RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_connection(connection)
            return
        if not data:
            self._close_connection(connection)
            return
        try:
            frames = connection.assembler.feed(data)
        except ValueError:
            # Oversized/corrupt header: the stream cannot resync.
            self._close_connection(connection)
            return
        if not connection.greeted and connection.assembler.codec is not None:
            connection.greeted = True
            if connection.assembler.codec == "binary":
                # ACK (or NAK) the binary-codec handshake before serving:
                # the client sends no frames until it hears back, so this
                # one blocking byte cannot stall behind request traffic.
                reply = (
                    BINARY_ACK
                    if self._process.wire_codec == "binary"
                    else BINARY_NAK
                )
                try:
                    connection.sock.send(bytes([reply]))
                except OSError:
                    self._close_connection(connection)
                    return
                if reply == BINARY_NAK:
                    self._close_connection(connection)
                    return
        connection.pending.extend(frames)
        self._dispatch_pending(connection)

    def _dispatch_pending(self, connection: _EventLoopConnection) -> None:
        """Serve queued frames, up to the backpressure bound.

        The request path runs inline on the loop thread (the op is cheaper
        than a pool handoff); maintenance ops and oversized payloads go to
        the worker pool so they cannot stall the reactor, and while one is
        in flight the request path follows it there (it may be holding the
        server lock; the loop must stay free to read, write, and accept) —
        that split is what lets a fast lookup overtake a slow extract on
        one connection.
        Frames beyond the bound stay in ``connection.pending`` and the
        connection stops being read; response completions re-enter here, so
        the backlog drains in arrival order as capacity frees up.
        """
        mode = connection.assembler.mode
        while connection.pending and connection.in_flight < self._max_queued:
            request_id, opcode, body = connection.pending.popleft()
            connection.in_flight += 1
            if connection.in_flight > self.max_in_flight:
                self.max_in_flight = connection.in_flight
            pooled_op = self._should_pool(mode, opcode, body)
            if pooled_op or self._pooled_active:
                # Inline-class ops also detour to the pool while any
                # maintenance op is in flight: it may hold the server lock,
                # and the loop must never block on it.
                if pooled_op:
                    with self._pooled_lock:
                        self._pooled_active += 1
                self._pool.submit(
                    self._work, connection, mode, request_id, opcode, body, pooled_op
                )
            elif mode == "mux":
                self._queue_response(
                    connection, self._process._execute_mux(request_id or 0, opcode, body)
                )
            else:
                self._queue_response(connection, self._process._execute_legacy(body))
        should_pause = bool(connection.pending) or connection.in_flight >= self._max_queued
        if should_pause and not connection.paused:
            connection.paused = True
            self.backpressure_pauses += 1
            self._update_interest(connection)

    #: Bodies above this size are decoded and served on the pool regardless
    #: of op (a huge install/put payload must not stall the loop).
    _INLINE_BODY_LIMIT = 64 * 1024

    #: Op-name byte tags used to sniff pooled ops out of a legacy frame
    #: (the mux header names the op; a legacy frame buries it in pickle —
    #: the tuple's first element, always within the first few dozen bytes).
    _LEGACY_POOL_TAGS = tuple(op.encode() for op in sorted(_POOLED_OPS))

    def _should_pool(self, mode: str, opcode: int, body: memoryview) -> bool:
        if len(body) > self._INLINE_BODY_LIMIT:
            return True
        if mode == "mux":
            return (opcode & OPCODE_MASK) in self._POOLED_OPCODES
        head = bytes(body[:64])
        return any(tag in head for tag in self._LEGACY_POOL_TAGS)

    def _work(
        self,
        connection: _EventLoopConnection,
        mode: str,
        request_id: Optional[int],
        opcode: int,
        body: memoryview,
        tracked: bool = False,
    ) -> None:
        """Worker-pool entry: serve one request, post the response."""
        try:
            process = self._process
            if mode == "mux":
                buffers = process._execute_mux(request_id or 0, opcode, body)
            else:
                buffers = process._execute_legacy(body)
            with self._outbox_lock:
                self._outbox.append((connection, buffers))
            self._wake()
        finally:
            if tracked:
                with self._pooled_lock:
                    self._pooled_active -= 1

    def _queue_response(
        self, connection: _EventLoopConnection, buffers: List[wire.Buffer]
    ) -> None:
        """Route one completed response: deliver now, or after modelled RTT."""
        latency = self._process.simulated_latency_seconds
        if latency > 0.0:
            heapq.heappush(
                self._timers,
                (time.monotonic() + latency, next(self._timer_seq), connection, buffers),
            )
            return
        self._write_or_queue(connection, buffers)

    def _write_or_queue(
        self, connection: _EventLoopConnection, buffers: List[wire.Buffer]
    ) -> None:
        if connection.closed:
            self._response_done(connection)
            return
        connection.outgoing.extend(memoryview(b).cast("B") for b in buffers if len(b))
        connection.outgoing.append(None)  # response boundary marker
        if self._coalesce:
            # Defer the write: every response completing in this loop
            # iteration (inline dispatches, drained outbox, fired timers)
            # joins the same sendmsg gather in _flush_dirty.
            self._dirty.add(connection)
            return
        self._flush(connection)

    def _flush_dirty(self) -> None:
        """Flush every connection that gained output this loop iteration.

        Runs at the top of the loop body, which every ``continue`` path
        re-enters — no response can sit unflushed across a ``select``.
        Flushing can complete responses, which can dispatch queued frames
        and dirty connections again, hence the drain loop; backpressure
        (``max_queued_per_connection``) bounds the work per connection.
        """
        while self._dirty:
            dirty, self._dirty = self._dirty, set()
            for connection in dirty:
                if not connection.closed:
                    self._flush(connection)

    def _flush(self, connection: _EventLoopConnection) -> None:
        """Write as much queued output as the socket accepts right now."""
        out = connection.outgoing
        coalesce = self._coalesce
        while out:
            views: List[memoryview] = []
            for item in out:
                if item is None:
                    if coalesce or not views:
                        # Coalescing: a boundary marker does not end the
                        # gather — one sendmsg spans every queued response.
                        continue
                    break
                views.append(item)
                if len(views) >= 32:
                    break
            if not views:
                # Only boundary markers left: account them and stop.
                while out and out[0] is None:
                    out.popleft()
                    self._response_done(connection)
                continue
            try:
                sent = connection.sock.sendmsg(views)
                self.sendmsg_calls += 1
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_connection(connection)
                return
            while out and sent:
                item = out[0]
                if item is None:
                    out.popleft()
                    self._response_done(connection)
                    continue
                if sent >= len(item):
                    sent -= len(item)
                    out.popleft()
                else:
                    out[0] = item[sent:]
                    sent = 0
            if out and out[0] is not None:
                break  # socket is full
        while out and out[0] is None:
            out.popleft()
            self._response_done(connection)
        want_write = bool(out)
        if want_write != connection.want_write:
            connection.want_write = want_write
            self._update_interest(connection)

    def _response_done(self, connection: _EventLoopConnection) -> None:
        connection.in_flight -= 1
        if connection.closed:
            return
        if connection.pending:
            self._dispatch_pending(connection)
        if (
            connection.paused
            and not connection.pending
            and connection.in_flight < self._max_queued
        ):
            connection.paused = False
            self._update_interest(connection)

    def _update_interest(self, connection: _EventLoopConnection) -> None:
        events = 0
        if not connection.paused:
            events |= selectors.EVENT_READ
        if connection.want_write:
            events |= selectors.EVENT_WRITE
        try:
            if events:
                self._selector.modify(connection.sock, events, connection)
            else:
                # Fully quiescent (paused, nothing to write): deregister
                # until a response completion changes the picture.
                self._selector.unregister(connection.sock)
        except (KeyError, ValueError):
            if events:
                try:
                    self._selector.register(connection.sock, events, connection)
                except (KeyError, ValueError, OSError):
                    pass
        except OSError:
            self._close_connection(connection)

    def _close_connection(self, connection: _EventLoopConnection) -> None:
        if connection.closed:
            return
        connection.closed = True
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError, OSError):
            pass
        _close_quietly(connection.sock)
        connection.outgoing.clear()
        connection.pending.clear()

    # -- lifecycle -------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the loop (called with ``process._running`` already False)."""
        self._wake()
        self._thread.join(timeout=5.0)
        self._pool.shutdown(wait=True)

    def _teardown(self) -> None:
        """Loop-thread exit path: close every socket and the selector."""
        self._flush_dirty()  # best-effort: drain coalesced responses first
        for key in list(self._selector.get_map().values()):
            fileobj = key.fileobj
            if isinstance(key.data, _EventLoopConnection):
                self._close_connection(key.data)
            else:
                try:
                    self._selector.unregister(fileobj)
                except (KeyError, ValueError):
                    pass
        _close_quietly(self._listener)
        for sock in (self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
class _MuxConnection:
    """One multiplexed client connection: many RPCs in flight, one socket.

    Callers register a :class:`ResponseSlot` under a fresh ``request_id``,
    write their frame (sends serialized by a per-connection lock; the
    payloads themselves are encoded outside it), and block on their slot.
    Responses are demultiplexed by ``request_id`` in one of two ways:

    * ``read_lease=True`` (the default): whichever caller gets there first
      takes the *read lease* and reads frames off the socket itself,
      resolving every slot it sees, until its own response lands.  At low
      concurrency this removes the reader-thread rendezvous entirely — the
      calling thread parks in ``recv`` and wakes with its own bytes, no
      cross-thread handoff.  Releasing the lease kicks one waiting caller
      (without settling its slot) so the lease is never orphaned while
      requests are outstanding.
    * ``read_lease=False``: the PR-5 arrangement — a dedicated reader
      thread owns ``recv`` and callers only send and block on their slot.

    ``codec="binary"`` performs the binary-codec handshake on construction
    (send :data:`MUX_MAGIC_BINARY`, require :data:`BINARY_ACK` back) and
    then encodes hot ops (:data:`repro.comm.wire.BINARY_OPS`) with the
    compact binary codec; everything else stays pickled.  A server that
    NAKs, closes, or stalls at the handshake raises
    :class:`WireCodecMismatchError` — fail fast, never mis-decode.

    Any I/O failure — including a caller's wait timing out — poisons the
    whole connection: every pending slot fails with
    :class:`CacheNodeUnreachableError` and the owner dials a fresh
    connection on the next call (a stream that lost a response can never
    be trusted again, exactly like the pooled transport's discipline).
    """

    def __init__(
        self,
        sock: socket.socket,
        label: str,
        timeout: Optional[float],
        codec: str = "pickle",
        read_lease: bool = True,
    ) -> None:
        self._sock = sock
        self._label = label
        self._timeout = timeout
        self._binary = codec == "binary"
        self._read_lease = read_lease
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        #: Reusable encode buffer for the multi-lookup batch path (binary
        #: codec only).  Shared per connection: encode + send + view
        #: release all happen under ``_send_lock``.
        self.scratch = wire.EncodeScratch() if self._binary else None
        self._pending: Dict[int, ResponseSlot] = {}
        self._ids = itertools.count(1)
        self._dead: Optional[BaseException] = None
        #: True while some caller is reading the socket (guarded by _lock).
        self._lease_held = False
        if self._binary:
            # Handshake under the dial timeout (still set on the socket): a
            # pickle-only server NAKs; a server predating the handshake
            # closes or stalls (it reads 0xA8 as a legacy length byte and
            # waits for a header that never comes) — every one of those is
            # a codec mismatch, reported as such instead of a hang.
            try:
                sock.sendall(bytes([MUX_MAGIC_BINARY]))
                reply = recv_exactly(sock, 1)
            except (ConnectionError, OSError) as exc:
                _close_quietly(sock)
                raise WireCodecMismatchError(
                    f"cache node {label} did not complete the binary-codec "
                    f"handshake ({exc}); it is likely a pickle-only server — "
                    f"use wire_codec='pickle' to talk to it"
                ) from exc
            if reply[0] != BINARY_ACK:
                _close_quietly(sock)
                raise WireCodecMismatchError(
                    f"cache node {label} refused the binary wire codec "
                    f"(handshake reply 0x{reply[0]:02x}); use "
                    f"wire_codec='pickle' to talk to this server"
                )
        else:
            sock.sendall(bytes([MUX_MAGIC]))
        # recv has no standing socket timeout (an idle connection is fine);
        # caller timeouts are enforced on the slot wait, and a leased
        # reader applies its own deadline per recv.
        sock.settimeout(None)
        self._reader: Optional[threading.Thread] = None
        if not read_lease:
            self._reader = threading.Thread(
                target=self._read_loop, name=f"mux-reader-{label}", daemon=True
            )
            self._reader.start()

    @property
    def dead(self) -> bool:
        return self._dead is not None

    def call(self, op: str, args: tuple) -> Tuple[bool, object]:
        """One RPC: returns ``(ok, value_or_error_message)``."""
        opcode = OPCODES.get(op)
        if opcode is None:
            # Fail fast, naming the op — no point paying a round trip for a
            # request the server can only reject.  Same error class and
            # message shape as the server-side rejection of the legacy path.
            raise CacheTransportError(
                f"cache node {self._label}: unknown cache operation {op!r}"
            )
        remaining = remaining_deadline()
        if remaining is not None and remaining <= 0:
            # The op's deadline budget is already spent (dial, earlier
            # retries, or earlier replicas consumed it): fail before any
            # I/O.  The connection itself is fine — no poisoning.
            raise CacheNodeTimeoutError(
                f"cache node {self._label}: deadline expired before {op!r}",
                node=self._label,
                op=op,
            )
        slot = ResponseSlot()
        with self._lock:
            if self._dead is not None:
                raise _classify_unreachable(
                    f"connection to {self._label} is dead: {self._dead}",
                    self._dead,
                    node=self._label,
                    op=op,
                )
            request_id = next(self._ids)
            self._pending[request_id] = slot
        try:
            if self._binary and opcode == _MULTI_LOOKUP_OPCODE:
                # Batch requests encode into the connection's reusable
                # scratch buffer instead of a fresh bytearray per call.
                # Encode must happen under the send lock: the scratch is
                # shared, and the memoryview handed to sendmsg must be
                # released before the next request appends (a live export
                # blocks the bytearray resize).
                with self._send_lock:
                    header, body = self.scratch.encode_request_frame(
                        request_id, opcode, args
                    )
                    try:
                        wire.send_buffers(self._sock, (header, body))
                    finally:
                        body.release()
            else:
                if self._binary and opcode in BINARY_OPCODES:
                    buffers = wire.encode_binary_request_frame(request_id, opcode, args)
                else:
                    buffers = wire.encode_mux_frame(request_id, opcode, args)
                with self._send_lock:
                    wire.send_buffers(self._sock, buffers)
        except (ConnectionError, OSError) as exc:
            self.fail(exc)
            raise CacheNodeStreamPoisonedError(
                f"cache node {self._label} unreachable: {exc}",
                node=self._label,
                op=op,
            ) from exc
        if self._read_lease:
            self._await_leased(slot, op=op)
        else:
            wait = self._effective_deadline()
            if not slot.wait(None if wait is None else wait - time.monotonic()):
                # The response stream is now untrustworthy (the reply may
                # land after we stop waiting): poison the connection.
                self._timeout_poison(op=op)
        if slot.error is not None:
            raise _classify_unreachable(
                f"cache node {self._label} unreachable: {slot.error}",
                slot.error,
                node=self._label,
                op=op,
            ) from slot.error
        return slot.value  # type: ignore[return-value]

    def _effective_deadline(self) -> Optional[float]:
        """This call's absolute deadline: per-attempt timeout capped by the
        propagated per-op deadline scope (whichever expires first)."""
        local = None if self._timeout is None else time.monotonic() + self._timeout
        scoped = current_deadline()
        if scoped is None:
            return local
        if local is None:
            return scoped
        return min(local, scoped)

    # -- read lease ------------------------------------------------------
    def _await_leased(self, slot: ResponseSlot, op: Optional[str] = None) -> None:
        """Wait for ``slot`` by reading the socket, or by following a leader.

        The contender that finds the lease free takes it and reads frames
        until its own response lands; everyone else blocks on their slot.
        A follower woken without a result was *kicked* (the lease was
        released before its response arrived): it loops to contend again.
        """
        deadline = self._effective_deadline()
        while True:
            with self._lock:
                # Re-arm *before* the settled check: a resolve landing
                # after the clear sets the event again, so the check-then-
                # wait sequence can never lose that wakeup.
                slot.clear()
                if slot.settled:
                    return
                if self._dead is not None:
                    slot.fail(self._dead)
                    return
                leader = not self._lease_held
                if leader:
                    self._lease_held = True
            if leader:
                try:
                    self._read_as_leader(slot, deadline)
                finally:
                    self._release_lease()
                if slot.settled:
                    return
                # The leader only returns unsettled when its deadline
                # passed mid-wait; the stream may hold a half-read frame
                # and can no longer be trusted.
                self._timeout_poison(op=op)
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                self._timeout_poison(op=op)
            slot.wait(remaining)
            # Woken — settled, failed, or merely kicked: the loop top
            # distinguishes the three under the lock.

    def _read_as_leader(self, slot: ResponseSlot, deadline: Optional[float]) -> None:
        """Read and resolve frames until ``slot`` settles or ``deadline``.

        Frames for *other* requests are resolved along the way (their
        callers wake directly off this thread's ``recv``).  A deadline is
        enforced with a per-read socket timeout; hitting it returns with
        the slot unsettled and the caller poisons the connection.  Any
        other failure poisons it here.
        """
        sock = self._sock
        try:
            while not slot.settled:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return
                    sock.settimeout(remaining)
                header = recv_exactly(sock, MUX_HEADER.size)
                request_id, opcode, length = MUX_HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise ConnectionError(f"oversized frame: {length} bytes")
                body = recv_exactly(sock, length)
                self._resolve_frame(request_id, opcode, body)
        except socket.timeout:
            return  # deadline hit mid-read; the caller poisons
        except BaseException as exc:  # noqa: BLE001 - fanned out to callers
            self.fail(exc)
        finally:
            if deadline is not None:
                try:
                    sock.settimeout(None)
                except OSError:
                    pass  # poisoned: the socket is already closed

    def _release_lease(self) -> None:
        """Free the lease and kick one waiting caller to contend for it.

        Without the kick a follower could block on its slot with no one
        reading the socket — its response would sit in the kernel buffer
        until its timeout.  Kicking exactly one waiter keeps the handoff
        O(1); that waiter re-kicks when it releases in turn.
        """
        with self._lock:
            self._lease_held = False
            for pending in self._pending.values():
                if not pending.settled:
                    pending.kick()
                    return

    def _timeout_poison(self, op: Optional[str] = None) -> None:
        exc = CacheNodeTimeoutError(
            f"cache node {self._label} timed out after {self._timeout}s",
            node=self._label,
            op=op,
        )
        self.fail(exc)
        raise exc

    # -- frame resolution (leader and reader thread) ---------------------
    def _resolve_frame(self, request_id: int, opcode: int, body: bytes) -> None:
        """Decode one response frame and settle the slot that owns it."""
        status = opcode & OPCODE_MASK
        if opcode & FLAG_BIN:
            value = wire.decode_binary_body(memoryview(body))
        else:
            value = wire.decode_body(opcode & FLAG_OOB, memoryview(body))
        with self._lock:
            slot = self._pending.pop(request_id, None)
        if slot is not None:
            slot.resolve((status == OP_OK, value))

    def _read_loop(self) -> None:
        sock = self._sock
        try:
            while True:
                header = recv_exactly(sock, MUX_HEADER.size)
                request_id, opcode, length = MUX_HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise ConnectionError(f"oversized frame: {length} bytes")
                body = recv_exactly(sock, length)
                self._resolve_frame(request_id, opcode, body)
        except BaseException as exc:  # noqa: BLE001 - fanned out to callers
            self.fail(exc)

    def fail(self, exc: BaseException) -> None:
        """Poison the connection: close it and fail every pending slot."""
        with self._lock:
            if self._dead is not None:
                return
            self._dead = exc
            pending = list(self._pending.values())
            self._pending.clear()
        _close_quietly(self._sock)
        for slot in pending:
            slot.fail(exc)

    def close(self) -> None:
        self.fail(CacheNodeUnreachableError(f"connection to {self._label} closed"))


class SocketTransport:
    """Framed-protocol client to one networked cache node.

    Implements :class:`repro.comm.transport.CacheTransport` in one of two
    modes.  **Pooled** (``pipelined=False``): up to ``pool_size`` persistent
    legacy connections, each carrying one outstanding request at a time —
    ``pool_size`` client threads proceed in parallel, further threads wait
    for a connection to come free.  **Pipelined** (``pipelined=True``): the
    multiplexed framing over ``mux_connections`` (default 1) sockets; every
    client thread's RPC goes out immediately with its own ``request_id``
    and a per-connection reader thread routes responses back, so in-flight
    concurrency no longer costs a socket per thread.

    Thread safety: fully thread-safe in both modes; any number of threads
    may issue RPCs on one transport.  A connection that suffers any I/O
    failure (or a response timeout) is discarded, never reused, and the
    failure surfaces as :class:`CacheNodeUnreachableError`.
    ``connect_timeout_seconds`` bounds dialling and ``timeout_seconds``
    bounds each RPC, so a hung node cannot strand a worker thread.
    :meth:`close` is idempotent.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        name: Optional[str] = None,
        timeout_seconds: float = 30.0,
        connect_timeout_seconds: float = 5.0,
        pool_size: int = DEFAULT_POOL_SIZE,
        pipelined: bool = False,
        mux_connections: int = 1,
        wire_codec: Optional[str] = None,
        mux_read_lease: bool = True,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be positive")
        if mux_connections < 1:
            raise ValueError("mux_connections must be positive")
        self.address = address
        self.pool_size = pool_size
        self.pipelined = pipelined
        self.mux_connections = mux_connections
        #: Body codec for the hot ops on the pipelined path ("binary" by
        #: default, negotiated at dial time).  The pooled/legacy framing
        #: has no codec byte, so it stays pickle regardless.
        self.wire_codec = wire.resolve_wire_codec(wire_codec)
        self.mux_read_lease = mux_read_lease
        self.timeout_seconds = timeout_seconds
        self.connect_timeout_seconds = connect_timeout_seconds
        #: Guards the idle list / mux slots and the closed flag (never held
        #: during I/O).
        self._lock = threading.Lock()
        #: Bounds in-flight RPCs in pooled mode: one permit per connection.
        self._slots = threading.BoundedSemaphore(pool_size)
        self._idle: List[socket.socket] = []
        self._mux: List[Optional[_MuxConnection]] = [None] * mux_connections
        self._mux_rr = itertools.count()
        self._closed = False
        #: RPCs issued per operation name (mirrors InProcessTransport's
        #: counter, so wire-op-cost tests pin the same numbers under every
        #: transport kind).  Guarded by ``_count_lock``: ``_call`` runs
        #: concurrently from many client threads.
        self.op_counts: dict = {}
        self._count_lock = threading.Lock()
        # Eager first dial: verify the endpoint now (the cluster relies on
        # construction failing fast for an unreachable node) and learn (or
        # verify) the node's name from the server itself.
        if pipelined:
            self._mux_connection(0)
        else:
            self._checkin(self._dial())
        self.name = name or self._call("ping")

    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket:
        label = getattr(self, "name", None) or str(self.address)
        connect_timeout = self.connect_timeout_seconds
        remaining = remaining_deadline()
        if remaining is not None:
            # Dialling draws on the same per-op budget as the RPC itself.
            if remaining <= 0:
                raise CacheNodeTimeoutError(
                    f"cache node at {self.address}: deadline expired before dial",
                    node=label,
                )
            if connect_timeout is not None:
                connect_timeout = min(connect_timeout, remaining)
            else:
                connect_timeout = remaining
        try:
            sock = socket.create_connection(self.address, timeout=connect_timeout)
        except socket.timeout as exc:
            raise CacheNodeTimeoutError(
                f"cache node at {self.address} timed out connecting: {exc}",
                node=label,
            ) from exc
        except OSError as exc:
            raise CacheNodeConnectError(
                f"cache node at {self.address} unreachable: {exc}",
                node=label,
            ) from exc
        _set_nodelay(sock)
        sock.settimeout(self.timeout_seconds)
        return sock

    # -- pipelined mode --------------------------------------------------
    def _mux_connection(self, index: Optional[int] = None) -> _MuxConnection:
        """The live mux connection for this call, dialling if necessary."""
        if index is None:
            index = next(self._mux_rr) % self.mux_connections
        with self._lock:
            if self._closed:
                raise CacheNodeUnreachableError(f"transport to {self.address} is closed")
            connection = self._mux[index]
            if connection is not None and not connection.dead:
                return connection
        # Dial outside the lock; first thread to store the fresh connection
        # wins, any race loser's dial is closed again.
        fresh = _MuxConnection(
            self._dial(), label=f"{getattr(self, 'name', None) or self.address}",
            timeout=self.timeout_seconds,
            codec=self.wire_codec if self.pipelined else "pickle",
            read_lease=self.mux_read_lease,
        )
        with self._lock:
            if self._closed:
                fresh.close()
                raise CacheNodeUnreachableError(f"transport to {self.address} is closed")
            current = self._mux[index]
            if current is not None and not current.dead:
                fresh.close()
                return current
            self._mux[index] = fresh
            return fresh

    @property
    def scratch_allocations(self) -> int:
        """Encode-scratch buffers ever allocated across live mux connections.

        1 per binary mux connection in the steady state; the codec
        microbenchmark pins that the multi-lookup batch path does not
        allocate a fresh buffer per request.
        """
        with self._lock:
            connections = list(self._mux)
        return sum(
            connection.scratch.allocations
            for connection in connections
            if connection is not None and connection.scratch is not None
        )

    # -- pooled mode -----------------------------------------------------
    def _checkout(self) -> socket.socket:
        """An idle pooled connection, or a freshly dialled one."""
        with self._lock:
            if self._closed:
                raise CacheNodeUnreachableError(
                    f"transport to {self.address} is closed"
                )
            if self._idle:
                return self._idle.pop()
        return self._dial()

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(sock)
                return
        _close_quietly(sock)  # closed while this call was in flight

    def _call(self, op: str, *args: object) -> object:
        with self._count_lock:
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
        if self.pipelined:
            ok, value = self._mux_connection().call(op, args)
            if not ok:
                raise CacheTransportError(
                    f"cache node {getattr(self, 'name', None) or self.address}: {value}"
                )
            return value
        remaining = remaining_deadline()
        if remaining is not None and remaining <= 0:
            raise CacheNodeTimeoutError(
                f"cache node at {self.address}: deadline expired before {op!r}",
                node=getattr(self, "name", None) or str(self.address),
                op=op,
            )
        with self._slots:
            sock = self._checkout()
            deadline_capped = False
            try:
                remaining = remaining_deadline()
                if remaining is not None and remaining < self.timeout_seconds:
                    # Cap this attempt's read timeout by the per-op budget;
                    # restored below before the socket re-enters the pool.
                    sock.settimeout(max(remaining, 0.001))
                    deadline_capped = True
                send_frame(sock, (op, args))
                response = recv_frame(sock)
            except socket.timeout as exc:
                _close_quietly(sock)
                raise CacheNodeTimeoutError(
                    f"cache node at {self.address} timed out on {op!r}: {exc}",
                    node=getattr(self, "name", None) or str(self.address),
                    op=op,
                ) from exc
            except (ConnectionError, OSError) as exc:
                # Includes mid-stream resets: the connection's request/
                # response stream can no longer be trusted, so drop it; the
                # pool re-dials on the next call.
                _close_quietly(sock)
                raise CacheNodeStreamPoisonedError(
                    f"cache node at {self.address} unreachable: {exc}",
                    node=getattr(self, "name", None) or str(self.address),
                    op=op,
                ) from exc
            except BaseException:
                # Anything else (oversized frame, undecodable payload): the
                # stream may be desynchronized and the fd must not leak —
                # close rather than pool it, then let the error propagate.
                _close_quietly(sock)
                raise
            if deadline_capped:
                sock.settimeout(self.timeout_seconds)
            self._checkin(sock)
        status, value = response
        if status != "ok":
            raise CacheTransportError(f"cache node {self.name or self.address}: {value}")
        return value

    # -- cache operations ----------------------------------------------
    def lookup(self, key: str, lo: int, hi: int) -> LookupResult:
        return self._call("lookup", key, lo, hi)

    def multi_lookup(self, requests: Sequence[LookupRequest]) -> List[LookupResult]:
        return self._call("multi_lookup", list(requests))

    def put(
        self,
        key: str,
        value: object,
        interval: Interval,
        tags: FrozenSet[InvalidationTag] = frozenset(),
    ) -> bool:
        return self._call("put", key, value, interval, tags)

    def probe(self, key: str, lo: int, hi: int) -> bool:
        return self._call("probe", key, lo, hi)

    def was_ever_stored(self, key: str) -> bool:
        return self._call("was_ever_stored", key)

    def evict_stale(self, oldest_useful_timestamp: int) -> int:
        return self._call("evict_stale", oldest_useful_timestamp)

    def clear(self) -> None:
        self._call("clear")

    def stats(self) -> CacheServerStats:
        return self._call("stats")

    def reset_stats(self) -> None:
        self._call("reset_stats")

    # -- key migration --------------------------------------------------
    def extract_entries(
        self, cursor: Optional[str] = None, limit: int = 64
    ) -> Tuple[List[EntryRecord], Optional[str]]:
        return self._call("extract_entries", cursor, limit)

    def install_entries(self, records: Sequence[EntryRecord]) -> int:
        return self._call("install_entries", list(records))

    def discard_keys(self, keys: Sequence[str]) -> int:
        return self._call("discard_keys", list(keys))

    def keys(self) -> List[str]:
        return self._call("keys")

    def watermark(self) -> int:
        return self._call("watermark")

    def versions_of(self, key: str) -> list:
        return self._call("versions_of", key)

    # -- autonomous cluster plane ---------------------------------------
    def gossip(self, digest: dict) -> dict:
        return self._call("gossip", dict(digest))

    def key_digest(self, arcs) -> List[Tuple[int, int, int]]:
        return self._call("key_digest", [tuple(arc) for arc in arcs])

    def keys_in_range(self, arcs) -> List[str]:
        return self._call("keys_in_range", [tuple(arc) for arc in arcs])

    # -- invalidation stream -------------------------------------------
    def process_invalidation(self, message: InvalidationMessage) -> None:
        self._call("invalidate", message)

    def process_invalidations(self, messages: Sequence[InvalidationMessage]) -> None:
        # Normalized to (timestamp, tags) pairs so both body codecs carry
        # the identical payload: tags are hot-path binary values (_T_TAG),
        # and the pickle path round-trips the same tuples.
        self._call(
            "invalidate_tags",
            [(message.timestamp, tuple(message.tags)) for message in messages],
        )

    def note_timestamp(self, timestamp: int) -> None:
        self._call("note_timestamp", timestamp)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close every connection; idempotent.

        Pooled calls already in flight finish their round trip (their
        connection is closed when they check it back in); pipelined calls
        in flight fail with :class:`CacheNodeUnreachableError`.  New calls
        fail immediately.
        """
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
            mux, self._mux = list(self._mux), [None] * self.mux_connections
        for sock in idle:
            _close_quietly(sock)
        for connection in mux:
            if connection is not None:
                connection.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.address
        mode = "pipelined" if self.pipelined else f"pooled[{self.pool_size}]"
        return f"SocketTransport({self.name!r} @ {host}:{port}, {mode})"


def _close_quietly(sock: socket.socket) -> None:
    # shutdown() wakes any thread blocked in recv() on this socket — a bare
    # close() does not reliably do so — so graceful teardown doesn't hang
    # waiting on handler threads.
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass  # never connected, or the peer already went away
    try:
        sock.close()
    except OSError:  # pragma: no cover - close never raises on Linux
        pass
