"""Cache nodes as real networked servers (TCP + length-prefixed frames).

The paper deploys cache nodes as standalone servers that application servers
reach over a gigabit LAN.  This module provides that topology for the
reproduction:

* :class:`CacheServerProcess` serves one :class:`CacheServer` over TCP.  It
  owns a listening socket and a dedicated service thread per node (plus one
  handler thread per accepted connection), standing in for the separate
  cache-server process of a production deployment while remaining debuggable
  in a single Python process.  Shutdown is graceful: in-flight requests
  finish, then every socket is closed and the threads are joined.
* :class:`SocketTransport` is the client side: a
  :class:`repro.comm.transport.CacheTransport` that speaks the framed
  protocol over a small pool of persistent connections.  It is what a
  :class:`repro.cache.cluster.CacheCluster` built with ``transport="socket"``
  routes operations (and the invalidation stream) through.

Concurrency
-----------
The request path is concurrent end to end.  Server side, each accepted
connection gets its own handler thread and dispatch takes **no**
process-level lock: thread safety lives inside :class:`CacheServer` (one
reentrant lock per server), so two connections' requests interleave at
operation granularity instead of queueing behind a connection-level mutex.
Client side, :class:`SocketTransport` keeps up to ``pool_size`` connections
per node: each RPC checks a connection out (dialling lazily on first use),
so ``pool_size`` client threads have ``pool_size`` RPCs genuinely in flight
where the previous design serialized them all behind one socket.  Every
socket — both ends — sets ``TCP_NODELAY`` (the frames are far smaller than
a segment, so Nagle would add a delayed-ACK round trip to every RPC) and the
client applies a configurable connect/read timeout, so a hung node surfaces
as :class:`CacheNodeUnreachableError` instead of blocking a worker forever.

``CacheServerProcess(simulated_latency_seconds=...)`` optionally sleeps that
long before serving each request, modelling the LAN round trip of the
paper's gigabit testbed.  On a loopback interface an RPC completes in tens
of microseconds and a single client thread already saturates one core, so
without a modelled network there is nothing for concurrency to overlap; with
it, the throughput-vs-threads benchmark measures exactly what the pool
provides — K overlapping in-flight requests per node.

Wire protocol
-------------
Every message — request or response — is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of payload, in the spirit of the
length-delimited framing used for streaming structured data over plain
sockets.  A request payload decodes to ``(op, args)`` where ``op`` names a
cache operation (``"lookup"``, ``"multi_lookup"``, ``"put"``, ``"probe"``,
``"was_ever_stored"``, ``"evict_stale"``, ``"clear"``, ``"stats"``,
``"reset_stats"``, ``"extract_entries"``, ``"install_entries"``,
``"discard_keys"``, ``"keys"``, ``"watermark"``, ``"invalidate"``, ``"note_timestamp"``,
``"ping"``) and ``args`` is a tuple of its positional arguments.  A response payload decodes
to ``("ok", value)`` or ``("err", message)``.  Payloads are encoded with
:mod:`pickle` because cached values are arbitrary Python objects (query-result
rows, tuples, frozensets of invalidation tags) that must round-trip exactly;
both endpoints of the simulated deployment are trusted, which is the standard
caveat for pickle-based RPC.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.cache.entry import EntryRecord, LookupRequest, LookupResult
from repro.cache.server import CacheServer, CacheServerStats
from repro.comm.multicast import InvalidationMessage
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

__all__ = [
    "CacheServerProcess",
    "SocketTransport",
    "CacheTransportError",
    "CacheNodeUnreachableError",
    "DEFAULT_POOL_SIZE",
]

#: Frame header: payload length as a 4-byte big-endian unsigned integer.
_HEADER = struct.Struct("!I")

#: Upper bound on a single frame, as a sanity check against corrupt headers.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Default size of a :class:`SocketTransport` connection pool: how many RPCs
#: one application server keeps in flight to one cache node.
DEFAULT_POOL_SIZE = 4


def _set_nodelay(sock: socket.socket) -> None:
    """Disable Nagle's algorithm (frames are tiny; latency matters)."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - non-TCP sockets in exotic setups
        pass


class CacheTransportError(RuntimeError):
    """A cache RPC failed (connection lost or server-side error)."""


class CacheNodeUnreachableError(CacheTransportError):
    """The node could not be reached at all (connection-level I/O failure).

    Distinguished from a server-side error response so failure-aware routing
    (:class:`repro.cache.cluster.CacheCluster`) degrades only on genuine
    connectivity loss, never on an application-level error that would
    otherwise be masked.
    """


# ----------------------------------------------------------------------
# Framing helpers (shared by both endpoints)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: object) -> None:
    """Serialize ``payload`` and write it as one length-prefixed frame."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> object:
    """Read one length-prefixed frame and deserialize its payload.

    Raises :class:`ConnectionError` on EOF (orderly shutdown of the peer).
    """
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CacheTransportError(f"oversized frame: {length} bytes")
    return pickle.loads(_recv_exactly(sock, length))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed by peer")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------
class CacheServerProcess:
    """One cache node served over TCP in its own thread.

    Wraps a :class:`CacheServer` and exposes it at a TCP endpoint.  Several
    client connections (application servers, or several pooled connections
    of one server) may be open at once, each served by its own handler
    thread; dispatch takes no process-level lock — concurrent requests are
    synchronized by the :class:`CacheServer`'s own reentrant lock, so the
    socket path has exactly the same thread-safety contract as in-process
    callers.  The wrapped server object remains reachable via :attr:`server`
    for tests and introspection, but live traffic goes through the socket.

    ``simulated_latency_seconds`` models the network round trip of a real
    deployment (the paper's cache nodes sit across a gigabit LAN): each
    request sleeps that long before being served, without holding any lock,
    so concurrent in-flight requests overlap their latency exactly as they
    would on a real network.  The default of 0 keeps unit tests fast.
    """

    def __init__(
        self,
        server: CacheServer,
        host: str = "127.0.0.1",
        port: int = 0,
        simulated_latency_seconds: float = 0.0,
    ) -> None:
        self.server = server
        self.simulated_latency_seconds = simulated_latency_seconds
        self._listener = socket.create_server((host, port))
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._running = True
        #: Guards the connection/handler registries (mutated by the accept
        #: loop, read by shutdown).
        self._registry_lock = threading.Lock()
        self._connections: List[socket.socket] = []
        self._handler_threads: List[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"cache-node-{server.name}", daemon=True
        )
        self._accept_thread.start()

    @property
    def running(self) -> bool:
        """True until :meth:`shutdown` completes."""
        return self._running

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            _set_nodelay(connection)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name=f"cache-conn-{self.server.name}",
                daemon=True,
            )
            with self._registry_lock:
                if not self._running:
                    # shutdown() ran between accept() and registration; it
                    # will not see this socket, so close it here.
                    _close_quietly(connection)
                    continue
                self._connections.append(connection)
                self._handler_threads.append(handler)
            handler.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            while self._running:
                try:
                    request = recv_frame(connection)
                except (ConnectionError, OSError):
                    return  # client went away or shutdown closed the socket
                except CacheTransportError:
                    return  # corrupt frame header: the stream cannot resync
                except Exception as exc:
                    # Undecodable payload; the frame was consumed in full, so
                    # the stream is still in sync — report and keep serving.
                    try:
                        send_frame(connection, ("err", f"bad request frame: {exc}"))
                    except OSError:
                        return
                    continue
                if self.simulated_latency_seconds > 0.0:
                    # Lock-free by construction: concurrent requests overlap
                    # their modelled network time like real round trips.
                    time.sleep(self.simulated_latency_seconds)
                try:
                    op, args = request
                    result = self._dispatch(op, args)
                    response = ("ok", result)
                except Exception as exc:  # server must survive bad requests
                    response = ("err", f"{type(exc).__name__}: {exc}")
                try:
                    send_frame(connection, response)
                except OSError:
                    return
        finally:
            _close_quietly(connection)
            # Drop this connection from the registries so a client pool
            # dropping and re-dialling connections (timeouts, failures)
            # cannot grow them without bound over the process lifetime.
            with self._registry_lock:
                if connection in self._connections:
                    self._connections.remove(connection)
                current = threading.current_thread()
                if current in self._handler_threads:
                    self._handler_threads.remove(current)

    def _dispatch(self, op: str, args: tuple) -> object:
        server = self.server
        if op == "lookup":
            return server.lookup(*args)
        if op == "multi_lookup":
            return server.multi_lookup(*args)
        if op == "put":
            return server.put(*args)
        if op == "probe":
            return server.probe(*args)
        if op == "was_ever_stored":
            return server.was_ever_stored(*args)
        if op == "evict_stale":
            return server.evict_stale(*args)
        if op == "clear":
            return server.clear()
        if op == "stats":
            # A locked snapshot, so the client sees a stable copy of the
            # counters even while other handler threads mutate them.
            return server.stats_snapshot()
        if op == "reset_stats":
            return server.reset_stats()
        if op == "extract_entries":
            return server.extract_entries(*args)
        if op == "install_entries":
            return server.install_entries(*args)
        if op == "discard_keys":
            return server.discard_keys(*args)
        if op == "keys":
            return server.keys()
        if op == "watermark":
            return server.last_invalidation_timestamp
        if op == "invalidate":
            return server.process_invalidation(*args)
        if op == "note_timestamp":
            return server.note_timestamp(*args)
        if op == "ping":
            return server.name
        raise ValueError(f"unknown cache operation {op!r}")

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop serving: close the listener and every connection, join threads.

        Idempotent, and safe to call while handler threads are mid-request:
        closing a connection wakes its handler out of ``recv``.
        """
        with self._registry_lock:
            if not self._running:
                return
            self._running = False
            connections = list(self._connections)
            handlers = list(self._handler_threads)
        _close_quietly(self._listener)
        for connection in connections:
            _close_quietly(connection)
        for handler in handlers:
            handler.join(timeout=2.0)
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "CacheServerProcess":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.address
        return f"CacheServerProcess({self.server.name!r} @ {host}:{port})"


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
class SocketTransport:
    """Framed-protocol client to one networked cache node.

    Implements :class:`repro.comm.transport.CacheTransport` over a pool of
    up to ``pool_size`` persistent TCP connections.  Each connection carries
    one outstanding request at a time (the framed protocol's discipline), so
    the pool bounds the number of concurrent in-flight RPCs to this node:
    ``pool_size`` client threads proceed in parallel, further threads wait
    for a connection to come free.  Connections are dialled lazily — the
    constructor opens exactly one (to verify the endpoint and learn the
    node's name) and the rest appear on demand under concurrent load.

    Thread safety: fully thread-safe; any number of threads may issue RPCs
    on one transport.  A connection that suffers any I/O failure is
    discarded, never reused (the request may already be on the wire; a later
    reply would desynchronize the stream), and the failure surfaces as
    :class:`CacheNodeUnreachableError`.  ``connect_timeout_seconds`` bounds
    dialling and ``timeout_seconds`` bounds each send/receive, so a hung
    node cannot strand a worker thread.  :meth:`close` is idempotent and
    closes every pooled connection.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        name: Optional[str] = None,
        timeout_seconds: float = 30.0,
        connect_timeout_seconds: float = 5.0,
        pool_size: int = DEFAULT_POOL_SIZE,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be positive")
        self.address = address
        self.pool_size = pool_size
        self.timeout_seconds = timeout_seconds
        self.connect_timeout_seconds = connect_timeout_seconds
        #: Guards the idle list and the closed flag (never held during I/O).
        self._lock = threading.Lock()
        #: Bounds in-flight RPCs: one permit per pooled connection.
        self._slots = threading.BoundedSemaphore(pool_size)
        self._idle: List[socket.socket] = []
        self._closed = False
        # Eager first dial: verify the endpoint now (the cluster relies on
        # construction failing fast for an unreachable node) and learn (or
        # verify) the node's name from the server itself.
        self._checkin(self._dial())
        self.name = name or self._call("ping")

    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout_seconds
            )
        except OSError as exc:
            raise CacheNodeUnreachableError(
                f"cache node at {self.address} unreachable: {exc}"
            ) from exc
        _set_nodelay(sock)
        sock.settimeout(self.timeout_seconds)
        return sock

    def _checkout(self) -> socket.socket:
        """An idle pooled connection, or a freshly dialled one."""
        with self._lock:
            if self._closed:
                raise CacheNodeUnreachableError(
                    f"transport to {self.address} is closed"
                )
            if self._idle:
                return self._idle.pop()
        return self._dial()

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(sock)
                return
        _close_quietly(sock)  # closed while this call was in flight

    def _call(self, op: str, *args: object) -> object:
        with self._slots:
            sock = self._checkout()
            try:
                send_frame(sock, (op, args))
                response = recv_frame(sock)
            except (ConnectionError, OSError) as exc:
                # Includes read timeouts: the connection's request/response
                # stream can no longer be trusted, so drop it; the pool
                # re-dials on the next call.
                _close_quietly(sock)
                raise CacheNodeUnreachableError(
                    f"cache node at {self.address} unreachable: {exc}"
                ) from exc
            except BaseException:
                # Anything else (oversized frame, undecodable payload): the
                # stream may be desynchronized and the fd must not leak —
                # close rather than pool it, then let the error propagate.
                _close_quietly(sock)
                raise
            self._checkin(sock)
        status, value = response
        if status != "ok":
            raise CacheTransportError(f"cache node {self.name or self.address}: {value}")
        return value

    # -- cache operations ----------------------------------------------
    def lookup(self, key: str, lo: int, hi: int) -> LookupResult:
        return self._call("lookup", key, lo, hi)

    def multi_lookup(self, requests: Sequence[LookupRequest]) -> List[LookupResult]:
        return self._call("multi_lookup", list(requests))

    def put(
        self,
        key: str,
        value: object,
        interval: Interval,
        tags: FrozenSet[InvalidationTag] = frozenset(),
    ) -> bool:
        return self._call("put", key, value, interval, tags)

    def probe(self, key: str, lo: int, hi: int) -> bool:
        return self._call("probe", key, lo, hi)

    def was_ever_stored(self, key: str) -> bool:
        return self._call("was_ever_stored", key)

    def evict_stale(self, oldest_useful_timestamp: int) -> int:
        return self._call("evict_stale", oldest_useful_timestamp)

    def clear(self) -> None:
        self._call("clear")

    def stats(self) -> CacheServerStats:
        return self._call("stats")

    def reset_stats(self) -> None:
        self._call("reset_stats")

    # -- key migration --------------------------------------------------
    def extract_entries(
        self, cursor: Optional[str] = None, limit: int = 64
    ) -> Tuple[List[EntryRecord], Optional[str]]:
        return self._call("extract_entries", cursor, limit)

    def install_entries(self, records: Sequence[EntryRecord]) -> int:
        return self._call("install_entries", list(records))

    def discard_keys(self, keys: Sequence[str]) -> int:
        return self._call("discard_keys", list(keys))

    def keys(self) -> List[str]:
        return self._call("keys")

    def watermark(self) -> int:
        return self._call("watermark")

    # -- invalidation stream -------------------------------------------
    def process_invalidation(self, message: InvalidationMessage) -> None:
        self._call("invalidate", message)

    def note_timestamp(self, timestamp: int) -> None:
        self._call("note_timestamp", timestamp)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close every pooled connection; idempotent.

        Calls already in flight finish their round trip (their connection is
        closed when they check it back in); new calls fail immediately with
        :class:`CacheNodeUnreachableError`.
        """
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for sock in idle:
            _close_quietly(sock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.address
        return f"SocketTransport({self.name!r} @ {host}:{port})"


def _close_quietly(sock: socket.socket) -> None:
    # shutdown() wakes any thread blocked in recv() on this socket — a bare
    # close() does not reliably do so — so graceful teardown doesn't hang
    # waiting on handler threads.
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass  # never connected, or the peer already went away
    try:
        sock.close()
    except OSError:  # pragma: no cover - close never raises on Linux
        pass
