"""Cache nodes as real networked servers (TCP + length-prefixed frames).

The paper deploys cache nodes as standalone servers that application servers
reach over a gigabit LAN.  This module provides that topology for the
reproduction:

* :class:`CacheServerProcess` serves one :class:`CacheServer` over TCP.  It
  owns a listening socket and a dedicated service thread per node (plus one
  handler thread per accepted connection), standing in for the separate
  cache-server process of a production deployment while remaining debuggable
  in a single Python process.  Shutdown is graceful: in-flight requests
  finish, then every socket is closed and the threads are joined.
* :class:`SocketTransport` is the client side: a
  :class:`repro.comm.transport.CacheTransport` that speaks the framed
  protocol over one persistent connection.  It is what a
  :class:`repro.cache.cluster.CacheCluster` built with ``transport="socket"``
  routes operations (and the invalidation stream) through.

Wire protocol
-------------
Every message — request or response — is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of payload, in the spirit of the
length-delimited framing used for streaming structured data over plain
sockets.  A request payload decodes to ``(op, args)`` where ``op`` names a
cache operation (``"lookup"``, ``"multi_lookup"``, ``"put"``, ``"probe"``,
``"was_ever_stored"``, ``"evict_stale"``, ``"clear"``, ``"stats"``,
``"reset_stats"``, ``"extract_entries"``, ``"install_entries"``,
``"discard_keys"``, ``"keys"``, ``"watermark"``, ``"invalidate"``, ``"note_timestamp"``,
``"ping"``) and ``args`` is a tuple of its positional arguments.  A response payload decodes
to ``("ok", value)`` or ``("err", message)``.  Payloads are encoded with
:mod:`pickle` because cached values are arbitrary Python objects (query-result
rows, tuples, frozensets of invalidation tags) that must round-trip exactly;
both endpoints of the simulated deployment are trusted, which is the standard
caveat for pickle-based RPC.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.cache.entry import EntryRecord, LookupRequest, LookupResult
from repro.cache.server import CacheServer, CacheServerStats
from repro.comm.multicast import InvalidationMessage
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

__all__ = [
    "CacheServerProcess",
    "SocketTransport",
    "CacheTransportError",
    "CacheNodeUnreachableError",
]

#: Frame header: payload length as a 4-byte big-endian unsigned integer.
_HEADER = struct.Struct("!I")

#: Upper bound on a single frame, as a sanity check against corrupt headers.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class CacheTransportError(RuntimeError):
    """A cache RPC failed (connection lost or server-side error)."""


class CacheNodeUnreachableError(CacheTransportError):
    """The node could not be reached at all (connection-level I/O failure).

    Distinguished from a server-side error response so failure-aware routing
    (:class:`repro.cache.cluster.CacheCluster`) degrades only on genuine
    connectivity loss, never on an application-level error that would
    otherwise be masked.
    """


# ----------------------------------------------------------------------
# Framing helpers (shared by both endpoints)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: object) -> None:
    """Serialize ``payload`` and write it as one length-prefixed frame."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> object:
    """Read one length-prefixed frame and deserialize its payload.

    Raises :class:`ConnectionError` on EOF (orderly shutdown of the peer).
    """
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CacheTransportError(f"oversized frame: {length} bytes")
    return pickle.loads(_recv_exactly(sock, length))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed by peer")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------
class CacheServerProcess:
    """One cache node served over TCP in its own thread.

    Wraps a :class:`CacheServer` and exposes it at a TCP endpoint.  All
    operations on the underlying server are serialized by a lock, so several
    client connections (application servers) may be open at once.  The
    wrapped server object remains reachable in-process via :attr:`server`
    for tests and introspection, but live traffic goes through the socket.
    """

    def __init__(
        self,
        server: CacheServer,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = server
        self._lock = threading.Lock()
        self._listener = socket.create_server((host, port))
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._running = True
        self._connections: List[socket.socket] = []
        self._handler_threads: List[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"cache-node-{server.name}", daemon=True
        )
        self._accept_thread.start()

    @property
    def running(self) -> bool:
        """True until :meth:`shutdown` completes."""
        return self._running

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            self._connections.append(connection)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name=f"cache-conn-{self.server.name}",
                daemon=True,
            )
            self._handler_threads.append(handler)
            handler.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            while self._running:
                try:
                    request = recv_frame(connection)
                except (ConnectionError, OSError):
                    return  # client went away or shutdown closed the socket
                except CacheTransportError:
                    return  # corrupt frame header: the stream cannot resync
                except Exception as exc:
                    # Undecodable payload; the frame was consumed in full, so
                    # the stream is still in sync — report and keep serving.
                    try:
                        send_frame(connection, ("err", f"bad request frame: {exc}"))
                    except OSError:
                        return
                    continue
                try:
                    op, args = request
                    with self._lock:
                        result = self._dispatch(op, args)
                    response = ("ok", result)
                except Exception as exc:  # server must survive bad requests
                    response = ("err", f"{type(exc).__name__}: {exc}")
                try:
                    send_frame(connection, response)
                except OSError:
                    return
        finally:
            _close_quietly(connection)

    def _dispatch(self, op: str, args: tuple) -> object:
        server = self.server
        if op == "lookup":
            return server.lookup(*args)
        if op == "multi_lookup":
            return server.multi_lookup(*args)
        if op == "put":
            return server.put(*args)
        if op == "probe":
            return server.probe(*args)
        if op == "was_ever_stored":
            return server.was_ever_stored(*args)
        if op == "evict_stale":
            return server.evict_stale(*args)
        if op == "clear":
            return server.clear()
        if op == "stats":
            # A snapshot, so the client sees a stable copy of the counters.
            return CacheServerStats().merge(server.stats)
        if op == "reset_stats":
            return server.stats.reset()
        if op == "extract_entries":
            return server.extract_entries(*args)
        if op == "install_entries":
            return server.install_entries(*args)
        if op == "discard_keys":
            return server.discard_keys(*args)
        if op == "keys":
            return server.keys()
        if op == "watermark":
            return server.last_invalidation_timestamp
        if op == "invalidate":
            return server.process_invalidation(*args)
        if op == "note_timestamp":
            return server.note_timestamp(*args)
        if op == "ping":
            return server.name
        raise ValueError(f"unknown cache operation {op!r}")

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop serving: close the listener and every connection, join threads."""
        if not self._running:
            return
        self._running = False
        _close_quietly(self._listener)
        for connection in self._connections:
            _close_quietly(connection)
        for handler in self._handler_threads:
            handler.join(timeout=2.0)
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "CacheServerProcess":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.address
        return f"CacheServerProcess({self.server.name!r} @ {host}:{port})"


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
class SocketTransport:
    """Framed-protocol client to one networked cache node.

    Implements :class:`repro.comm.transport.CacheTransport` over a single
    persistent TCP connection.  Calls are serialized by a lock, matching the
    one-outstanding-request-per-connection discipline of the framed protocol;
    a deployment wanting more parallelism opens one transport per application
    server, exactly as it would open one memcached connection per worker.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        name: Optional[str] = None,
        timeout_seconds: float = 30.0,
    ) -> None:
        self.address = address
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = socket.create_connection(
            address, timeout=timeout_seconds
        )
        # Learn (or verify) the node's name from the server itself.
        self.name = name or self._call("ping")

    # ------------------------------------------------------------------
    def _call(self, op: str, *args: object) -> object:
        with self._lock:
            if self._sock is None:
                raise CacheNodeUnreachableError(
                    f"transport to {self.address} is closed"
                )
            try:
                send_frame(self._sock, (op, args))
                response = recv_frame(self._sock)
            except (ConnectionError, OSError) as exc:
                # The request may already be on the wire; a later reply would
                # desynchronize the request/response stream, so the
                # connection cannot be reused after any I/O failure.
                _close_quietly(self._sock)
                self._sock = None
                raise CacheNodeUnreachableError(
                    f"cache node at {self.address} unreachable: {exc}"
                ) from exc
        status, value = response
        if status != "ok":
            raise CacheTransportError(f"cache node {self.name or self.address}: {value}")
        return value

    # -- cache operations ----------------------------------------------
    def lookup(self, key: str, lo: int, hi: int) -> LookupResult:
        return self._call("lookup", key, lo, hi)

    def multi_lookup(self, requests: Sequence[LookupRequest]) -> List[LookupResult]:
        return self._call("multi_lookup", list(requests))

    def put(
        self,
        key: str,
        value: object,
        interval: Interval,
        tags: FrozenSet[InvalidationTag] = frozenset(),
    ) -> bool:
        return self._call("put", key, value, interval, tags)

    def probe(self, key: str, lo: int, hi: int) -> bool:
        return self._call("probe", key, lo, hi)

    def was_ever_stored(self, key: str) -> bool:
        return self._call("was_ever_stored", key)

    def evict_stale(self, oldest_useful_timestamp: int) -> int:
        return self._call("evict_stale", oldest_useful_timestamp)

    def clear(self) -> None:
        self._call("clear")

    def stats(self) -> CacheServerStats:
        return self._call("stats")

    def reset_stats(self) -> None:
        self._call("reset_stats")

    # -- key migration --------------------------------------------------
    def extract_entries(
        self, cursor: Optional[str] = None, limit: int = 64
    ) -> Tuple[List[EntryRecord], Optional[str]]:
        return self._call("extract_entries", cursor, limit)

    def install_entries(self, records: Sequence[EntryRecord]) -> int:
        return self._call("install_entries", list(records))

    def discard_keys(self, keys: Sequence[str]) -> int:
        return self._call("discard_keys", list(keys))

    def keys(self) -> List[str]:
        return self._call("keys")

    def watermark(self) -> int:
        return self._call("watermark")

    # -- invalidation stream -------------------------------------------
    def process_invalidation(self, message: InvalidationMessage) -> None:
        self._call("invalidate", message)

    def note_timestamp(self, timestamp: int) -> None:
        self._call("note_timestamp", timestamp)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                _close_quietly(self._sock)
                self._sock = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.address
        return f"SocketTransport({self.name!r} @ {host}:{port})"


def _close_quietly(sock: socket.socket) -> None:
    # shutdown() wakes any thread blocked in recv() on this socket — a bare
    # close() does not reliably do so — so graceful teardown doesn't hang
    # waiting on handler threads.
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass  # never connected, or the peer already went away
    try:
        sock.close()
    except OSError:  # pragma: no cover - close never raises on Linux
        pass
