"""SWIM-style gossip membership: who is in the cache tier, without a master.

The membership coordinator (:mod:`repro.cache.membership`) versions the node
set into epochs, but *observing* failures was still centralized: one process
watched transport errors and ran the epoch change.  This module removes that
single witness.  Every cache node (and every application server) keeps a
table of **versioned node records** and exchanges compressed **digests** of
it; any two parties that have seen the same set of digests hold *identical*
tables, no matter the delivery order — the merge is a join-semilattice — so
the whole cluster converges on the same membership view with no coordinator
process in the loop.

Records and the merge
---------------------
A record is ``(name, incarnation, heartbeat, status)`` with status one of
``alive | suspect | left | dead``.  Records are totally ordered by their
**precedence** ``(incarnation, status rank, heartbeat)`` where the rank
orders ``alive < suspect < left < dead``; merging two digests keeps, per
node, the record with the higher precedence.  A total order makes the merge
commutative, associative, and idempotent (property-tested in
``tests/test_gossip.py``), which is the entire correctness story: gossip may
duplicate, reorder, or drop messages and the views still converge.

The SWIM state machine
----------------------
* A member bumps its own ``heartbeat`` every :meth:`GossipAgent.tick`;
  heartbeat advances are proof of life.
* A peer whose heartbeat has not advanced for ``suspect_timeout`` seconds is
  locally marked **suspect** — at its *current* incarnation, so the record
  gossips ahead of any stale ``alive`` record of the same incarnation
  (rank beats heartbeat at equal incarnation).
* A suspect that stays unrefuted for ``confirm_timeout`` more seconds is
  confirmed **dead**.  Confirmations are what membership acts on
  (ring eviction, anti-entropy repair).
* A node that hears itself suspected or confirmed **refutes** by bumping its
  ``incarnation`` — the only way an alive record can override a suspicion.
  Consequently a healed partition can never resurrect an evicted node with
  a *stale* incarnation: its old ``alive`` record loses the merge against
  the ``dead`` record at the same incarnation, and only the node itself,
  by re-announcing at a higher incarnation, can rejoin the view.

Digest exchange rides the existing cache wire protocol as the ``gossip``
operation (see :data:`repro.comm.wire.OPCODES`): an application server
relays its digest to a node, the node's resident agent merges it and
answers with its own — a push-pull round over the same sockets the data
path uses.  :class:`GossipRunner` drives those rounds for a deployment and
feeds confirmed deaths into the membership coordinator.

All timeouts are measured on an injected :class:`repro.clock.Clock`, so the
deterministic simulator (``tests/simulator.py``) can replay convergence,
flapping, and refutation schedules exactly.
"""

from __future__ import annotations

import hashlib
import random
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.clock import Clock

__all__ = [
    "ALIVE",
    "SUSPECT",
    "LEFT",
    "DEAD",
    "STATUSES",
    "GossipAgent",
    "GossipRunner",
    "record_precedence",
    "merge_digests",
]

ALIVE = "alive"
SUSPECT = "suspect"
LEFT = "left"
DEAD = "dead"

#: Status rank used by the record total order: at equal incarnation a
#: suspicion overrides liveness (refutation requires an incarnation bump),
#: and a departure/death overrides both — the SWIM precedence rules.
_STATUS_RANK = {ALIVE: 0, SUSPECT: 1, LEFT: 2, DEAD: 3}
STATUSES = tuple(_STATUS_RANK)

#: Wire form of one node's record: ``(incarnation, heartbeat, status)``.
Record = Tuple[int, int, str]
#: Wire form of a digest: node name -> record.
Digest = Dict[str, Record]


def record_precedence(record: Record) -> Tuple[int, int, int]:
    """The total order merged digests are maximized under.

    ``(incarnation, status rank, heartbeat)`` lexicographically: a higher
    incarnation wins outright; at equal incarnation a "worse" status wins
    (suspicion/death override stale liveness); heartbeats only break ties
    between records of the same incarnation and status.  The rank map is
    injective over statuses, so equal precedence implies equal records —
    which is what makes the per-node max a true semilattice join.
    """
    incarnation, heartbeat, status = record
    return (incarnation, _STATUS_RANK[status], heartbeat)


def merge_digests(base: Digest, update: Digest) -> Digest:
    """Join two digests: per node, keep the record with higher precedence.

    Pure and total-order-driven, hence commutative, associative, and
    idempotent — any delivery order of the same digest set produces the
    same table.  Raises ``KeyError`` on an unknown status and ``ValueError``
    on a malformed record, so a corrupt frame cannot poison a view.
    """
    merged = dict(base)
    for name, record in update.items():
        incarnation, heartbeat, status = record  # ValueError if malformed
        if status not in _STATUS_RANK:
            raise KeyError(status)
        candidate = (int(incarnation), int(heartbeat), status)
        current = merged.get(name)
        if current is None or record_precedence(candidate) > record_precedence(current):
            merged[name] = candidate
    return merged


class GossipAgent:
    """One participant's membership table and SWIM failure detector.

    Thread-safe: servers call :meth:`exchange` from handler threads while a
    runner ticks the agent.  ``member=False`` builds an *observer* — an
    application-server-side agent that merges, suspects, and confirms like
    any other but never inserts itself into the view (it is not a cache
    node, so it must not appear in membership epochs).
    """

    def __init__(
        self,
        name: str,
        clock: Clock,
        peers: Iterable[str] = (),
        suspect_timeout: float = 2.0,
        confirm_timeout: float = 4.0,
        member: bool = True,
        initial_incarnation: int = 0,
        on_transition: Optional[Callable[[str, Optional[str], str], None]] = None,
    ) -> None:
        if suspect_timeout <= 0 or confirm_timeout <= 0:
            raise ValueError("gossip timeouts must be positive")
        self.name = name
        self.clock = clock
        self.member = member
        self.suspect_timeout = suspect_timeout
        self.confirm_timeout = confirm_timeout
        #: Called with ``(name, old_status, new_status)`` on every peer
        #: status change this agent adopts (locally detected or merged).
        self.on_transition = on_transition
        self.incarnation = initial_incarnation
        #: Times this agent refuted a suspicion/death of itself.
        self.refutations = 0
        self._heartbeat = 0
        self._left = False
        self._lock = threading.RLock()
        self._records: Dict[str, Record] = {}
        #: Local receipt time of the last liveness progress per peer
        #: (heartbeat or incarnation advance carrying an alive status).
        self._last_progress: Dict[str, float] = {}
        #: Local time the peer's current status was adopted.
        self._status_since: Dict[str, float] = {}
        now = clock.now()
        if member:
            self._install(name, (self.incarnation, 0, ALIVE), now, notify=False)
        for peer in peers:
            if peer != name:
                self._install(peer, (0, 0, ALIVE), now, notify=False)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def digest(self) -> Digest:
        """A snapshot of the full record table (the gossip payload)."""
        with self._lock:
            return dict(self._records)

    def record(self, name: str) -> Optional[Record]:
        with self._lock:
            return self._records.get(name)

    def status_of(self, name: str) -> Optional[str]:
        record = self.record(name)
        return record[2] if record is not None else None

    def members(self, include_suspect: bool = True) -> List[str]:
        """Nodes this agent currently counts as cluster members, sorted.

        Suspects are still members (they are routed to until confirmed);
        ``include_suspect=False`` narrows to nodes positively alive.
        """
        wanted = (ALIVE, SUSPECT) if include_suspect else (ALIVE,)
        with self._lock:
            return sorted(
                name for name, rec in self._records.items() if rec[2] in wanted
            )

    def view(self) -> Tuple[Tuple[int, str, str], ...]:
        """The heartbeat-free membership view: sorted (incarnation, status)
        per node.  Two agents with equal views agree on the epoch."""
        with self._lock:
            return tuple(
                sorted((inc, name, status) for name, (inc, _hb, status) in self._records.items())
            )

    def epoch_token(self) -> str:
        """A comparable fingerprint of the membership view.

        Heartbeats are excluded (they advance constantly); everything that
        defines the epoch — who is in, at which incarnation, in which state
        — is included.  Every agent of a converged cluster reports the same
        token, which is the coordinator-free replacement for comparing a
        central coordinator's epoch counter.
        """
        return hashlib.sha1(repr(self.view()).encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One local protocol step: prove own liveness, advance timeouts."""
        with self._lock:
            now = self.clock.now()
            if self.member and not self._left:
                own = self._records.get(self.name)
                if own is None or own[2] == ALIVE:
                    self._heartbeat += 1
                    self._records[self.name] = (self.incarnation, self._heartbeat, ALIVE)
            for name in list(self._records):
                if name == self.name:
                    continue
                incarnation, heartbeat, status = self._records[name]
                if status == ALIVE:
                    if now - self._last_progress.get(name, now) >= self.suspect_timeout:
                        self._install(name, (incarnation, heartbeat, SUSPECT), now)
                elif status == SUSPECT:
                    if now - self._status_since.get(name, now) >= self.confirm_timeout:
                        self._install(name, (incarnation, heartbeat, DEAD), now)

    def receive(self, digest: Digest) -> None:
        """Merge a peer's digest into the table (one gossip delivery)."""
        with self._lock:
            now = self.clock.now()
            for name, record in digest.items():
                incarnation, heartbeat, status = record
                if status not in _STATUS_RANK:
                    raise ValueError(f"unknown gossip status {status!r}")
                self._install(name, (int(incarnation), int(heartbeat), status), now)
            self._refute_if_accused(now)

    def exchange(self, digest: Digest) -> Digest:
        """Server-side half of a push-pull round: merge, answer with ours."""
        self.receive(digest)
        return self.digest()

    def leave(self) -> Record:
        """Announce a planned departure; returns the record to gossip."""
        with self._lock:
            self._left = True
            self._heartbeat += 1
            record = (self.incarnation, self._heartbeat, LEFT)
            self._records[self.name] = record
            return record

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _install(self, name: str, record: Record, now: float, notify: bool = True) -> bool:
        """Adopt ``record`` for ``name`` if it has precedence; bookkeeping."""
        current = self._records.get(name)
        if current is not None and record_precedence(record) <= record_precedence(current):
            return False
        self._records[name] = record
        # Liveness progress: an alive record whose (incarnation, heartbeat)
        # advanced restarts the suspect clock.
        if record[2] == ALIVE and (
            current is None or record[0] > current[0] or record[1] > current[1]
        ):
            self._last_progress[name] = now
        self._last_progress.setdefault(name, now)
        old_status = current[2] if current is not None else None
        if old_status != record[2]:
            self._status_since[name] = now
            if notify and name != self.name and self.on_transition is not None:
                self.on_transition(name, old_status, record[2])
        return True

    def _refute_if_accused(self, now: float) -> None:
        """Bump the incarnation if the merged table calls us suspect/dead."""
        if not self.member or self._left:
            return
        own = self._records.get(self.name)
        if own is None or own[2] == ALIVE:
            return
        self.incarnation = own[0] + 1
        self._heartbeat += 1
        self._records[self.name] = (self.incarnation, self._heartbeat, ALIVE)
        self._last_progress[self.name] = now
        self._status_since[self.name] = now
        self.refutations += 1


class GossipRunner:
    """Drives gossip rounds for one deployment's cache cluster.

    Every cache node hosts a resident :class:`GossipAgent` (attached to its
    :class:`repro.cache.server.CacheServer`, reachable via the ``gossip``
    wire op under every transport), and the application server runs an
    *observer* agent.  :meth:`round` performs one push-pull exchange per
    agent with seeded-random peers — the observer relays digests between
    nodes, so node agents converge on each other's state without
    node-to-node connections — and then applies the observer's confirmed
    deaths to the membership coordinator (ring eviction + repair), which is
    how the gossip verdicts, not transport error counters, end the epoch.

    Deterministic: peer selection comes from one seeded RNG and all
    timeouts read the injected clock, so a test that controls the clock
    replays the same rounds exactly.
    """

    def __init__(
        self,
        cluster,
        membership=None,
        clock: Optional[Clock] = None,
        suspect_timeout: float = 2.0,
        confirm_timeout: float = 4.0,
        fanout: int = 1,
        seed: int = 0,
    ) -> None:
        if fanout < 1:
            raise ValueError("fanout must be positive")
        self.cluster = cluster
        self.membership = membership
        self.clock = clock if clock is not None else cluster._clock
        self.suspect_timeout = suspect_timeout
        self.confirm_timeout = confirm_timeout
        self.fanout = fanout
        self.agents: Dict[str, GossipAgent] = {}
        self._rng = random.Random(seed)
        self._pending_confirmed: List[str] = []
        names = sorted(cluster.transports)
        self.observer = GossipAgent(
            "@observer",
            self.clock,
            peers=names,
            suspect_timeout=suspect_timeout,
            confirm_timeout=confirm_timeout,
            member=False,
            on_transition=self._observed,
        )
        for name in names:
            self.register(name)

    # ------------------------------------------------------------------
    def register(self, name: str) -> GossipAgent:
        """Attach a (possibly rejoining) node's resident agent.

        A rejoiner after a confirmed death must come back at a *fresh*
        incarnation — higher than its death record — or the cluster's
        tombstone would (correctly) out-rank its alive announcements
        forever.
        """
        prior = self.observer.record(name)
        incarnation = prior[0] + 1 if prior is not None and prior[2] in (DEAD, LEFT) else 0
        agent = GossipAgent(
            name,
            self.clock,
            peers=[peer for peer in self.agents if peer != name],
            suspect_timeout=self.suspect_timeout,
            confirm_timeout=self.confirm_timeout,
            initial_incarnation=incarnation,
        )
        server = self.cluster.servers.get(name)
        if server is not None:
            server.gossip_agent = agent
        self.agents[name] = agent
        # Introduce the newcomer to the observer at its fresh incarnation so
        # relays start carrying it immediately.
        self.observer.receive({name: (incarnation, 0, ALIVE)})
        return agent

    def leave(self, name: str) -> None:
        """Spread a planned departure (the coordinator relays the record)."""
        agent = self.agents.pop(name, None)
        if agent is None:
            return
        record = agent.leave()
        self.observer.receive({name: record})
        for other in self.agents.values():
            other.receive({name: record})

    # ------------------------------------------------------------------
    def round(self) -> None:
        """One gossip round: tick every agent, relay digests, act.

        Node-to-node gossip is *relayed*: the runner pulls ``src``'s digest
        over src's wire, pushes it to ``dst`` over dst's wire, and carries
        the reply back over src's wire again.  Every hop crosses the
        respective node's transport, so a partitioned or dead node is
        silenced in **both** directions — its heartbeats stop reaching the
        cluster the moment its link does, which is what arms the failure
        detector.
        """
        for name in sorted(self.agents):
            self.agents[name].tick()
        self.observer.tick()
        for name in sorted(self.agents):
            agent = self.agents[name]
            peers = [
                peer
                for peer in sorted(self.agents)
                if peer != name and agent.status_of(peer) not in (DEAD, LEFT)
            ]
            for _ in range(min(self.fanout, len(peers))):
                self._relay(name, self._rng.choice(peers))
        for peer in sorted(self.agents):
            if self.observer.status_of(peer) in (DEAD, LEFT):
                continue
            self._exchange(self.observer, peer)
        self._apply_confirmations()

    def run_rounds(self, rounds: int, advance: float = 0.0) -> None:
        """Convenience: several rounds, optionally advancing a manual clock."""
        from repro.clock import ManualClock

        for _ in range(rounds):
            if advance and isinstance(self.clock, ManualClock):
                self.clock.advance(advance)
            self.round()

    def converged(self) -> bool:
        """True when every live agent and the observer agree on the epoch."""
        tokens = {self.observer.epoch_token()}
        for name, agent in self.agents.items():
            if self.observer.status_of(name) in (DEAD, LEFT):
                continue
            tokens.add(agent.epoch_token())
        return len(tokens) == 1

    # ------------------------------------------------------------------
    def _relay(self, src: str, dst: str) -> None:
        """One relayed push-pull: src's wire -> dst's wire -> src's wire."""
        digest = self._wire(src, {})  # empty push merges as a no-op: a pull
        if digest is None:
            return
        reply = self._wire(dst, digest)
        if reply is None:
            return
        self._wire(src, reply)

    def _wire(self, node: str, digest: Digest) -> Optional[Digest]:
        """One gossip RPC over ``node``'s transport; None when unreachable."""
        transport = self.cluster.transports.get(node)
        if transport is None:
            return None
        # The cluster's definition of "unreachable" (import deferred to dodge
        # the cluster -> server -> gossip import cycle at module load).
        from repro.cache.cluster import _FAILURE_EXCEPTIONS

        try:
            reply = transport.gossip(digest)
        except _FAILURE_EXCEPTIONS:
            return None  # gossip's own timeouts are the failure detector
        agent = self.agents.get(node)
        if agent is not None and self.cluster.servers.get(node) is None:
            # Process-hosted node: the resident agent cannot live in the
            # child (the runner's deterministic clock does not cross the
            # process boundary), so the runner hosts it as the node's
            # stand-in.  The wire op above is still what proves liveness —
            # a partitioned or dead node fails the RPC and is silenced in
            # both directions, exactly like a thread-hosted node — and the
            # agentless child's empty reply is discarded for the local
            # exchange.
            return agent.exchange(digest)
        return reply

    def _exchange(self, agent: GossipAgent, peer: str) -> None:
        reply = self._wire(peer, agent.digest())
        if reply:
            agent.receive(reply)

    def _observed(self, name: str, _old: Optional[str], new: str) -> None:
        if new == DEAD:
            self._pending_confirmed.append(name)

    def _apply_confirmations(self) -> None:
        """Evict gossip-confirmed dead nodes from the routing ring."""
        pending, self._pending_confirmed = self._pending_confirmed, []
        if self.membership is None:
            return
        for name in pending:
            if name in self.cluster.ring:
                self.membership.evict(name)
