"""A set of cache nodes addressed through consistent hashing.

The application library never talks to individual cache nodes; it hands keys
to the cluster, which routes each key to the responsible node using the hash
ring, exactly as the paper's TxCache library maps a key to a cache server.
All nodes subscribe to the same invalidation stream.

The cluster reaches each node through a :class:`CacheTransport`
(:mod:`repro.comm.transport`), so the same routing logic serves two
topologies:

* ``transport="inprocess"`` — nodes are plain :class:`CacheServer` objects
  called directly (zero overhead; the original behaviour);
* ``transport="socket"`` — each node runs as a
  :class:`repro.cache.netserver.CacheServerProcess` behind a TCP endpoint
  and is reached via a :class:`repro.cache.netserver.SocketTransport`,
  modelling the paper's real deployment of standalone cache servers;
* ``transport="socket-process"`` — each node is a
  :class:`repro.cache.procnode.CacheNodeHost`, an **out-of-process** worker
  with its own interpreter (and optionally its own pinned CPU), reached
  over the same pipelined wire stack.  The invalidation stream crosses the
  process boundary over the wire too — synchronously per message by
  default, or batched per housekeeping flush with
  ``invalidation_batching=True`` (see :meth:`CacheCluster.flush_invalidations`).

Batched lookups (:meth:`CacheCluster.multi_lookup`) group requests by
responsible node and issue one round trip per node, which is where a
networked topology recovers most of its RPC cost.

**Failure-aware routing.**  A cache is an optimization, so a dead cache node
must never crash the application: every routed operation catches
connection-level transport failures, marks the node *suspect*, and degrades
to the semantics of an empty cache (lookups miss, puts are dropped) instead
of raising.  After ``failure_threshold`` consecutive failures the node is
evicted from the ring entirely — its key ranges fall to the surviving
successors — and the :class:`repro.cache.membership.ClusterMembership`
coordinator (when attached via :attr:`on_node_evicted`) records a new
membership epoch.  Counters for all of this live in
:class:`ClusterHealthStats`.

**R-way replication.**  With ``replication_factor=R > 1`` every key lives on
the first R distinct nodes of its ring successor list
(:meth:`repro.cache.hashring.ConsistentHashRing.successors`).  Reads go to
the primary and *fail over* along the replica set when a node is suspect or
unreachable, so a crash degrades nothing as long as one replica survives;
``put`` fans the write to the whole replica set.  Invalidation-tag writes
and watermark advances already reach every replica because every node —
replica or not — subscribes to the same invalidation stream, which keeps
all copies truncating identically (the paper's timestamp-ordering argument
applies per node).  A hit served by a non-primary replica is classified in
:class:`ClusterHealthStats` (``replica_served_lookups`` / ``replica_hits``).
With ``replication_factor=1`` every code path is exactly the unreplicated
behaviour.

**Thread safety.**  The routed operations (``lookup``, ``multi_lookup``,
``put``, ``probe``, …) are fully thread-safe: any number of application
threads may share one cluster.  A single internal lock guards the ring, the
transport registry, and the failure-accounting state (failure counts,
suspect set, health counters); it is held only for those in-memory updates,
never across a transport call, so it cannot serialize actual RPCs.  Node
teardown (bus unsubscription, closing transports, stopping a socket server)
always happens *outside* that lock — the invalidation bus holds its own lock
while delivering, and its delivery path re-enters the cluster on failures,
so cluster-lock -> bus-lock would deadlock against bus-lock -> cluster-lock.
Topology changes (``add_node``/``remove_node``/``adopt_ring``/``close``) are
safe to run while traffic flows; per-node thread safety is provided by
:class:`CacheServer`'s own lock, and per-connection concurrency by
:class:`SocketTransport`'s pool.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cache.entry import EntryRecord, LookupRequest, LookupResult
from repro.cache.hashring import ConsistentHashRing
from repro.cache.netserver import (
    CacheNodeUnreachableError,
    CacheServerProcess,
    SocketTransport,
)
from repro.cache.procnode import CacheNodeHost
from repro.cache.server import CacheServer, CacheServerStats
from repro.clock import Clock, SystemClock
from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.comm.transport import (
    CacheTransport,
    InProcessTransport,
    RetryPolicy,
    current_deadline,
    deadline_scope,
    remaining_deadline,
)
from repro.comm.wire import resolve_wire_codec
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

__all__ = ["CacheCluster", "ClusterHealthStats"]

#: Supported values of the ``transport`` constructor argument.
#: ``"socket"`` is the PR-4 fast path (pooled one-in-flight connections to
#: thread-per-connection servers); ``"socket-pipelined"`` is the multiplexed
#: wire protocol to event-loop servers (see :mod:`repro.cache.netserver`);
#: ``"socket-process"`` hosts each node in its **own OS process**
#: (:class:`repro.cache.procnode.CacheNodeHost`) behind the same pipelined
#: wire stack, so N nodes on one machine use N cores instead of sharing
#: one GIL.
TRANSPORT_KINDS = ("inprocess", "socket", "socket-pipelined", "socket-process")

#: Exceptions that mean "the node is unreachable" (never server-side errors).
_FAILURE_EXCEPTIONS = (CacheNodeUnreachableError, ConnectionError, OSError)


@dataclass
class ClusterHealthStats:
    """Counters for failure-aware routing (client-side, per cluster)."""

    #: Individual transport I/O failures observed while routing.
    transport_failures: int = 0
    #: Transitions of a node from healthy to suspect.
    suspect_marks: int = 0
    #: Suspect nodes that answered again before reaching the threshold.
    recoveries: int = 0
    #: Nodes evicted from the ring after repeated failures.
    nodes_evicted: int = 0
    #: Lookups answered with a synthetic miss because the node was down
    #: (with replication: because *every* replica was down).
    degraded_lookups: int = 0
    #: Puts silently dropped because the node was down (with replication:
    #: because no replica accepted the write).
    degraded_puts: int = 0
    #: Other operations (probes, eviction sweeps, invalidations…) skipped.
    degraded_ops: int = 0
    #: Reads answered by a non-primary replica after the primary failed.
    replica_served_lookups: int = 0
    #: The subset of ``replica_served_lookups`` that were cache hits — the
    #: entries replication saved from becoming degraded misses.
    replica_hits: int = 0


class _NodeStreamGuard:
    """Invalidation-bus subscriber shielding the bus from a dead node.

    The bus delivers synchronously from inside database commits; without the
    guard, one unreachable cache node would turn every update transaction
    into an exception.  Failures are routed into the cluster's failure
    accounting instead, so a dead node is detected (and eventually evicted)
    from the invalidation path exactly as from the lookup path.

    With ``batching=True`` (the cluster's ``invalidation_batching`` knob)
    the guard buffers the stream instead of delivering synchronously, and
    :meth:`flush` ships the whole buffer as one ``invalidate_tags`` RPC —
    the housekeeping-flushed delivery mode for out-of-process nodes, where a
    per-message round trip from inside every commit would be the dominant
    cost.  Buffering is consistency-safe because lookups bound their open
    intervals by the node's invalidation watermark: an undelivered batch
    only holds the watermark back (fewer hits at fresh timestamps), it can
    never let a stale entry satisfy a too-new read.  Watermark-only
    advances (:meth:`note_timestamp`) are buffered as empty-tag messages so
    delivery order matches publish order exactly.
    """

    def __init__(
        self,
        cluster: "CacheCluster",
        name: str,
        transport: CacheTransport,
        batching: bool = False,
    ) -> None:
        self._cluster = cluster
        self.name = name
        self.transport = transport
        self.batching = batching
        #: Guards the pending buffer: the bus delivers from publisher
        #: threads while housekeeping flushes from the application thread.
        self._lock = threading.Lock()
        self._pending: List[InvalidationMessage] = []

    def _deliver(self, send: Callable[[], None]) -> None:
        try:
            send()
        except _FAILURE_EXCEPTIONS:
            self._cluster._bump_health("degraded_ops")
            self._cluster._note_failure(self.name)

    def process_invalidation(self, message: InvalidationMessage) -> None:
        if self.batching:
            with self._lock:
                self._pending.append(message)
            return
        self._deliver(lambda: self.transport.process_invalidation(message))

    def note_timestamp(self, timestamp: int) -> None:
        if self.batching:
            with self._lock:
                self._pending.append(InvalidationMessage(timestamp=timestamp))
            return
        self._deliver(lambda: self.transport.note_timestamp(timestamp))

    def flush(self) -> int:
        """Deliver the buffered stream in one batch; returns the count."""
        with self._lock:
            if not self._pending:
                return 0
            batch, self._pending = self._pending, []
        self._deliver(lambda: self.transport.process_invalidations(batch))
        return len(batch)


class CacheCluster:
    """Routes cache operations to the responsible cache node's transport."""

    def __init__(
        self,
        node_count: int = 2,
        capacity_bytes_per_node: int = 64 * 1024 * 1024,
        clock: Optional[Clock] = None,
        invalidation_bus: Optional[InvalidationBus] = None,
        virtual_nodes: int = 100,
        node_names: Optional[Sequence[str]] = None,
        transport: str = "inprocess",
        failure_threshold: int = 3,
        replication_factor: int = 1,
        socket_pool_size: int = 4,
        rpc_timeout_seconds: float = 30.0,
        simulated_rpc_latency_seconds: float = 0.0,
        socket_pipelined: Optional[bool] = None,
        server_style: Optional[str] = None,
        node_addresses: Optional[Dict[str, Tuple[str, int]]] = None,
        wire_codec: Optional[str] = None,
        mux_read_lease: bool = True,
        write_coalescing: bool = True,
        invalidation_batching: bool = False,
        cpu_pinning: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if transport not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORT_KINDS}"
            )
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if replication_factor < 1:
            raise ValueError("replication_factor must be positive")
        if socket_pool_size < 1:
            raise ValueError("socket_pool_size must be positive")
        if node_addresses is not None and transport == "inprocess":
            raise ValueError("node_addresses requires a socket transport")
        self.transport_kind = transport
        #: Pipelined (multiplexed) client framing; the "socket-pipelined"
        #: and "socket-process" kinds turn it on, and any kind accepts an
        #: explicit override.
        self.socket_pipelined = (
            socket_pipelined
            if socket_pipelined is not None
            else transport in ("socket-pipelined", "socket-process")
        )
        #: Serving engine of locally started cache nodes ("threaded" or
        #: "eventloop"); defaults to the event loop for "socket-pipelined"
        #: and "socket-process" (a process node always serves eventloop).
        self.server_style = server_style or (
            "eventloop"
            if transport in ("socket-pipelined", "socket-process")
            else "threaded"
        )
        #: Endpoints of externally running cache nodes.  When set, the
        #: cluster is *client-only*: it dials the given addresses instead of
        #: starting servers (the multi-process benchmark workers attach to
        #: the coordinator's nodes this way).
        self._node_addresses = dict(node_addresses) if node_addresses else None
        self.failure_threshold = failure_threshold
        self.replication_factor = replication_factor
        #: Connections each SocketTransport keeps per node (= concurrent
        #: in-flight RPCs per node per application server); ignored by the
        #: in-process transport.
        self.socket_pool_size = socket_pool_size
        #: Connect/read timeout applied to every pooled connection.
        self.rpc_timeout_seconds = rpc_timeout_seconds
        #: Modelled LAN round trip served by each networked node (see
        #: :class:`repro.cache.netserver.CacheServerProcess`).
        self.simulated_rpc_latency_seconds = simulated_rpc_latency_seconds
        #: Hot-path body codec of the pipelined framing ("binary" by
        #: default; REPRO_WIRE_CODEC overrides); applied to both the
        #: servers this cluster starts and the transports it dials.
        self.wire_codec = resolve_wire_codec(wire_codec)
        #: Calling-thread read lease on mux connections (see
        #: :class:`repro.cache.netserver.SocketTransport`).
        self.mux_read_lease = mux_read_lease
        #: One sendmsg gather per readiness event on the event-loop engine.
        self.write_coalescing = write_coalescing
        #: Buffer the invalidation stream per node and deliver it in
        #: batches from :meth:`flush_invalidations` (called by the
        #: deployment's housekeeping) instead of synchronously from inside
        #: every commit.  Off by default: synchronous delivery keeps
        #: truncation immediate; batching trades watermark freshness (and
        #: nothing else — see :class:`_NodeStreamGuard`) for one
        #: ``invalidate_tags`` RPC per flush per node.
        self.invalidation_batching = invalidation_batching
        #: Pin each process-hosted node to its own CPU (opt-in;
        #: round-robin over the machine's cores).  Ignored by the other
        #: transport kinds — threads in one interpreter gain nothing from
        #: pinning.
        self.cpu_pinning = cpu_pinning
        self._cpu_cursor = 0
        #: Bounded-retry policy for idempotent reads (lookup, multi_lookup,
        #: probe, key_digest, keys_in_range, versions_of): transient
        #: connection failures retry with exponential backoff + jitter
        #: before the read fails over to the next replica, all under one
        #: per-op deadline budget (``retry_policy.deadline_seconds``,
        #: defaulting to ``rpc_timeout_seconds``) spanning dial + retries +
        #: failover.  Non-idempotent ops (put, invalidations) never retry
        #: blind.  Pass ``RetryPolicy(max_attempts=1)`` to disable retries.
        self.retry_policy = retry_policy or RetryPolicy()
        #: Jitter source for retry backoff (seeded: reproducible schedules).
        self._retry_rng = random.Random(0x7C5)
        self.health = ClusterHealthStats()
        #: Guards ring, transport registry, and failure accounting (held for
        #: in-memory updates only; see "Thread safety" in the module doc).
        self._state_lock = threading.RLock()
        #: Called with the node name after a failure-driven ring eviction
        #: (the membership coordinator hooks this to record an epoch).
        self.on_node_evicted: Optional[Callable[[str], None]] = None
        self._clock = clock or SystemClock()
        self._bus: Optional[InvalidationBus] = None
        self._servers: Dict[str, CacheServer] = {}
        self._transports: Dict[str, CacheTransport] = {}
        #: Thread-hosted CacheServerProcess or out-of-process CacheNodeHost;
        #: both expose the same lifecycle surface (address, shutdown()).
        self._processes: Dict[str, "CacheServerProcess | CacheNodeHost"] = {}
        self._stream_guards: Dict[str, _NodeStreamGuard] = {}
        self._failures: Dict[str, int] = {}
        self._suspects: Set[str] = set()
        if node_names is None:
            if self._node_addresses is not None:
                node_names = sorted(self._node_addresses)
            else:
                node_names = [f"cache{i}" for i in range(node_count)]
        try:
            for name in node_names:
                self._start_node(name, capacity_bytes_per_node, self._clock)
        except BaseException:
            # Don't orphan already-started networked nodes (listener sockets
            # and threads) when a later node fails to come up.
            self._teardown_nodes()
            raise
        self.ring = ConsistentHashRing(nodes=list(self._transports), virtual_nodes=virtual_nodes)
        if invalidation_bus is not None:
            self.attach_invalidation_bus(invalidation_bus)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def servers(self) -> Dict[str, CacheServer]:
        """Mapping of node name to the underlying cache server.

        The server objects live in this process under the in-process and
        thread-hosted socket transports (the socket server serves them from
        a node thread), so they remain available for introspection; live
        traffic always goes through the transports.  ``"socket-process"``
        nodes live in their own address space and have no entry here —
        introspect them over the wire (``stats``/``keys``/``watermark``)
        like any remote node.
        """
        return dict(self._servers)

    @property
    def transports(self) -> Dict[str, CacheTransport]:
        """Mapping of node name to the transport reaching that node."""
        return dict(self._transports)

    @property
    def processes(self) -> Dict[str, "CacheServerProcess | CacheNodeHost"]:
        """Mapping of node name to its server host (socket transports only).

        Thread-hosted kinds map to :class:`CacheServerProcess`;
        ``"socket-process"`` maps to the node's
        :class:`~repro.cache.procnode.CacheNodeHost` (pid, exitcode,
        ``kill()`` for crash tests).
        """
        return dict(self._processes)

    @property
    def node_count(self) -> int:
        """Number of cache nodes."""
        return len(self._transports)

    @property
    def suspect_nodes(self) -> List[str]:
        """Nodes with recent transport failures (not yet evicted)."""
        return sorted(self._suspects)

    def server_for(self, key: str) -> CacheServer:
        """The underlying server responsible for ``key`` (introspection)."""
        return self._servers[self.ring.node_for(key)]

    def transport_for(self, key: str) -> CacheTransport:
        """The transport to the node responsible for ``key``."""
        return self._transports[self.ring.node_for(key)]

    def attach_invalidation_bus(self, bus: InvalidationBus) -> None:
        """Subscribe every node to the invalidation stream (via guards).

        The cluster remembers the bus so nodes removed later are also
        unsubscribed (otherwise a removed node would keep consuming the
        stream forever).  Each node is subscribed through a
        :class:`_NodeStreamGuard` so an unreachable node degrades instead of
        failing the publisher.
        """
        self._bus = bus
        for name, transport in self._transports.items():
            self._subscribe_node(name, transport)

    def flush_invalidations(self) -> int:
        """Deliver every node's buffered invalidation batch; returns the
        total number of messages shipped.

        A no-op (returns 0) unless the cluster was built with
        ``invalidation_batching=True``; the deployment calls this from its
        housekeeping pass so batched delivery rides the existing
        maintenance cadence.
        """
        with self._state_lock:
            guards = list(self._stream_guards.values())
        return sum(guard.flush() for guard in guards)

    def add_node(self, name: str, capacity_bytes: int, clock: Optional[Clock] = None) -> CacheServer:
        """Add a cache node to the cluster (keys re-map via the ring).

        This is the *cold* join: remapped keys start over on the new node.
        For a warm join that migrates entries, use
        :meth:`repro.cache.membership.ClusterMembership.join`.
        """
        server = self.provision_node(name, capacity_bytes, clock)
        with self._state_lock:
            self.ring.add_node(name)
        return server

    def provision_node(
        self, name: str, capacity_bytes: int, clock: Optional[Clock] = None
    ) -> CacheServer:
        """Start a node (transport + invalidation stream) *outside* the ring.

        The membership coordinator uses this to warm a joining node with
        migrated entries before any traffic routes to it; plain
        :meth:`add_node` is ``provision_node`` plus immediate ring insertion.
        """
        with self._state_lock:
            if name in self._transports:
                raise ValueError(f"cache node {name!r} already exists")
            server = self._start_node(name, capacity_bytes, clock or self._clock)
        if self._bus is not None:
            self._subscribe_node(name, self._transports[name])
        return server

    def adopt_ring(self, ring: ConsistentHashRing) -> None:
        """Atomically switch routing to a new ring (a membership epoch).

        Every ring member must have a transport; nodes with a transport but
        absent from the ring simply receive no traffic (e.g. a node that is
        being drained before removal).
        """
        with self._state_lock:
            missing = [node for node in ring.nodes if node not in self._transports]
            if missing:
                raise ValueError(f"ring references unknown cache nodes: {missing}")
            self.ring = ring

    def remove_node(self, name: str) -> None:
        """Remove a cache node; its contents are lost (cache semantics).

        Raises :class:`KeyError` if no such node exists.  The node's
        transport is unsubscribed from the invalidation bus and closed, and a
        networked node's server is shut down.  For a planned removal that
        migrates the node's entries to their new owners first, use
        :meth:`repro.cache.membership.ClusterMembership.leave`.
        """
        with self._state_lock:
            if name not in self._transports:
                raise KeyError(name)
            self.ring.remove_node(name)
            detached = self._pop_node_state(name)
        self._teardown_detached(detached)

    def fail_node(self, name: str) -> None:
        """Simulate a node crash (tests and the churn benchmark).

        Under the socket transport the node's server process is shut down
        and nothing else: routing still points at the dead endpoint, so the
        failure path (suspect marking, degraded results, threshold eviction)
        is exercised exactly as a real crash would.  Under the in-process
        transport there is no wire to fail, so the node is evicted
        immediately — the post-detection state of a crash.
        """
        if name not in self._transports:
            raise KeyError(name)
        process = self._processes.get(name)
        if process is not None:
            process.shutdown()
        else:
            self._evict_node(name)

    def close(self) -> None:
        """Shut down every node (connections, socket servers, subscriptions).

        Idempotent, and safe to call while client threads are mid-operation:
        in-flight RPCs either finish or degrade through the normal
        failure-aware routing path.
        """
        while True:
            with self._state_lock:
                names = list(self._transports)
                if not names:
                    return
                name = names[0]
                self.ring.remove_node(name)
                detached = self._pop_node_state(name)
            self._teardown_detached(detached)

    def _pop_node_state(self, name: str):
        """Drop one node from every registry (caller holds the state lock).

        Returns what :meth:`_teardown_detached` needs to finish the job
        outside the lock: closing transports and unsubscribing from the bus
        can block (and the bus takes its own lock during delivery, whose
        failure path re-enters this cluster), so neither may run under the
        state lock.
        """
        transport = self._transports.pop(name)
        self._servers.pop(name, None)
        self._failures.pop(name, None)
        self._suspects.discard(name)
        guard = self._stream_guards.pop(name, None)
        process = self._processes.pop(name, None)
        return transport, guard, process

    def _teardown_detached(self, detached) -> None:
        """Finish a node's teardown outside the state lock."""
        transport, guard, process = detached
        if self._bus is not None and guard is not None:
            self._bus.unsubscribe(guard)
        transport.close()
        if process is not None:
            process.shutdown()

    def _detach_node(self, name: str) -> None:
        """Tear down one node's transport/process/bus state (no ring update)."""
        with self._state_lock:
            detached = self._pop_node_state(name)
        self._teardown_detached(detached)

    def _teardown_nodes(self) -> None:
        """Close every transport and stop every node (no ring/bus updates)."""
        for transport in self._transports.values():
            transport.close()
        for process in self._processes.values():
            process.shutdown()
        self._transports.clear()
        self._processes.clear()
        self._servers.clear()
        self._stream_guards.clear()

    def _start_node(
        self, name: str, capacity_bytes: int, clock: Clock
    ) -> Optional[CacheServer]:
        if self._node_addresses is not None:
            # Client-only cluster: the node runs elsewhere; just dial it.
            self._transports[name] = SocketTransport(
                self._node_addresses[name],
                name=name,
                pool_size=self.socket_pool_size,
                timeout_seconds=self.rpc_timeout_seconds,
                pipelined=self.socket_pipelined,
                wire_codec=self.wire_codec,
                mux_read_lease=self.mux_read_lease,
            )
            return None
        if self.transport_kind == "socket-process":
            # The node lives in its own OS process: no local CacheServer to
            # register (and the injected clock cannot cross the process
            # boundary — the child keeps system time, which is what the
            # timestamp-interval protocol assumes of a remote node anyway).
            cpu_affinity: Optional[int] = None
            if self.cpu_pinning:
                cpu_affinity = self._cpu_cursor % (os.cpu_count() or 1)
                self._cpu_cursor += 1
            host = CacheNodeHost(
                name,
                capacity_bytes=capacity_bytes,
                simulated_latency_seconds=self.simulated_rpc_latency_seconds,
                wire_codec=self.wire_codec,
                write_coalescing=self.write_coalescing,
                cpu_affinity=cpu_affinity,
            )
            self._processes[name] = host
            try:
                self._transports[name] = SocketTransport(
                    host.address,
                    name=name,
                    pool_size=self.socket_pool_size,
                    timeout_seconds=self.rpc_timeout_seconds,
                    pipelined=self.socket_pipelined,
                    wire_codec=self.wire_codec,
                    mux_read_lease=self.mux_read_lease,
                )
            except BaseException:
                # Connecting failed: reap the just-spawned node instead of
                # leaving an orphaned process squatting on its port.
                self._processes.pop(name).shutdown()
                raise
            return None
        server = CacheServer(name=name, capacity_bytes=capacity_bytes, clock=clock)
        self._servers[name] = server
        if self.transport_kind != "inprocess":
            process = CacheServerProcess(
                server,
                simulated_latency_seconds=self.simulated_rpc_latency_seconds,
                style=self.server_style,
                wire_codec=self.wire_codec,
                write_coalescing=self.write_coalescing,
            )
            self._processes[name] = process
            try:
                self._transports[name] = SocketTransport(
                    process.address,
                    name=name,
                    pool_size=self.socket_pool_size,
                    timeout_seconds=self.rpc_timeout_seconds,
                    pipelined=self.socket_pipelined,
                    wire_codec=self.wire_codec,
                    mux_read_lease=self.mux_read_lease,
                )
            except BaseException:
                # Connecting failed: stop the just-started node instead of
                # leaving its listener thread orphaned.
                self._processes.pop(name).shutdown()
                self._servers.pop(name)
                raise
        else:
            self._transports[name] = InProcessTransport(server)
        return server

    def _subscribe_node(self, name: str, transport: CacheTransport) -> None:
        # Idempotent per node: re-attaching the bus (or re-warming an
        # evicted-then-rejoined node) must replace the node's guard, not add
        # a second one — two live guards for the same node would deliver
        # every invalidation tag twice.
        with self._state_lock:
            stale = self._stream_guards.pop(name, None)
            guard = _NodeStreamGuard(
                self, name, transport, batching=self.invalidation_batching
            )
            self._stream_guards[name] = guard
        # Bus calls happen outside the state lock (see "Thread safety").
        if stale is not None:
            self._bus.unsubscribe(stale)
        self._bus.subscribe(guard)

    # ------------------------------------------------------------------
    # Failure accounting
    # ------------------------------------------------------------------
    def _bump_health(self, counter: str, amount: int = 1) -> None:
        """Atomically increment one ClusterHealthStats counter.

        A bare ``+=`` is a read-modify-write that concurrent client threads
        can interleave; every degraded-path counter goes through here so the
        health numbers stay exact under load.
        """
        with self._state_lock:
            setattr(self.health, counter, getattr(self.health, counter) + amount)

    def note_transport_failure(self, node: str) -> None:
        """Record a transport failure observed outside routed operations.

        The migration coordinator uses this when a node dies mid-migration:
        the failure counts toward suspecting the node, but eviction is
        deferred to the next *routed* failure so a membership change that is
        staging a new ring is never invalidated from under itself.
        """
        self._note_failure(node, evict=False)

    def _note_failure(self, node: str, evict: bool = True) -> None:
        """Record one transport failure; evict the node at the threshold."""
        with self._state_lock:
            if node not in self._transports:
                return
            self.health.transport_failures += 1
            count = self._failures.get(node, 0) + 1
            self._failures[node] = count
            if node not in self._suspects:
                self._suspects.add(node)
                self.health.suspect_marks += 1
        if evict and count >= self.failure_threshold:
            self._evict_node(node)

    def _note_success(self, node: str) -> None:
        """A suspect node answered: clear its failure count."""
        with self._state_lock:
            if node not in self._suspects:
                return  # another thread already recorded the recovery
            self._suspects.discard(node)
            self._failures.pop(node, None)
            self.health.recoveries += 1

    def _evict_node(self, node: str) -> None:
        """Drop a failed node from the ring; successors take over its keys."""
        with self._state_lock:
            if node not in self._transports:
                return  # lost a race with another thread's eviction/removal
            self.ring.remove_node(node)
            detached = self._pop_node_state(node)
            self.health.nodes_evicted += 1
        self._teardown_detached(detached)
        if self.on_node_evicted is not None:
            self.on_node_evicted(node)

    def _node_for(self, key: str) -> Optional[str]:
        """The responsible (primary) node, or None when the ring is empty."""
        with self._state_lock:
            try:
                return self.ring.node_for(key)
            except LookupError:
                return None

    def replicas_for(self, key: str) -> List[str]:
        """The key's replica set: primary first, then the ring successors.

        Empty when the ring is empty; shorter than ``replication_factor``
        when the ring is.  Taken under the state lock so a concurrent
        eviction can never expose a half-updated ring.
        """
        with self._state_lock:
            try:
                return self.ring.successors(key, self.replication_factor)
            except LookupError:
                return []

    def _record_failover_read(self, failed_over: bool, hit: bool) -> None:
        """Account a read that a non-primary replica answered."""
        if failed_over:
            with self._state_lock:
                self.health.replica_served_lookups += 1
                if hit:
                    self.health.replica_hits += 1

    # ------------------------------------------------------------------
    # Retry / deadline plumbing
    # ------------------------------------------------------------------
    def _op_scope(self, _op: str):
        """One deadline budget for a whole routed operation.

        Opened at the top of every routed read: dial time, per-node
        retries, and the replica-failover walk all draw on the same
        budget, so a hung node cannot multiply the worst case by the
        number of replicas.  A scope already active (a nested routed call)
        is left to govern — budgets never stack.
        """
        if current_deadline() is not None:
            return nullcontext()
        budget = self.retry_policy.deadline_seconds
        if budget is None:
            budget = self.rpc_timeout_seconds
        if budget is None:
            return nullcontext()
        return deadline_scope(time.monotonic() + budget)

    @staticmethod
    def _budget_exhausted() -> bool:
        remaining = remaining_deadline()
        return remaining is not None and remaining <= 0

    def _call_with_retry(self, op: str, call):
        """Run one transport call under the cluster retry policy."""
        return self.retry_policy.run(
            op, call, retry_on=_FAILURE_EXCEPTIONS, rng=self._retry_rng
        )

    def _read_from_replicas(self, key: str, operation, op: str = "lookup"):
        """Run a read on the first reachable replica of ``key``.

        The shared failover walk behind ``lookup``/``probe``/
        ``was_ever_stored``: an unreachable replica is retried per the
        cluster :class:`RetryPolicy` (idempotent ops only), then noted
        (suspect marking, threshold eviction) and the next one asked — all
        under one deadline budget.  Returns ``(answered, failed_over,
        result)``; ``answered`` is False only when every replica was
        unreachable or the budget ran out (the caller degrades).
        """
        failed_over = False
        with self._op_scope(op):
            for node in self.replicas_for(key):
                if self._budget_exhausted():
                    # Out of deadline budget: degrade rather than charge a
                    # transport failure to replicas we never actually asked.
                    break
                transport = self._transports.get(node)
                if transport is None:
                    continue
                try:
                    result = self._call_with_retry(
                        op, lambda transport=transport: operation(transport)
                    )
                except _FAILURE_EXCEPTIONS:
                    self._note_failure(node)
                    failed_over = True
                    continue
                if node in self._suspects:
                    self._note_success(node)
                return True, failed_over, result
        return False, failed_over, None

    # ------------------------------------------------------------------
    # Cache operations (routed, degrading on node failure)
    # ------------------------------------------------------------------
    def lookup(self, key: str, lo: int, hi: int) -> LookupResult:
        """Route a versioned lookup to the responsible node.

        With replication the lookup fails over along the key's replica set:
        an unreachable primary is noted (suspect marking, threshold
        eviction) and the next replica is asked.  Only when *every* replica
        is unreachable does the cluster yield a synthetic (degraded) miss —
        to the application a fully dead replica set looks like an empty
        cache, never an exception.
        """
        answered, failed_over, result = self._read_from_replicas(
            key, lambda transport: transport.lookup(key, lo, hi), op="lookup"
        )
        if answered:
            self._record_failover_read(failed_over, result.hit)
            return result
        self._bump_health("degraded_lookups")
        return LookupResult(hit=False, key=key, degraded=True)

    def multi_lookup(self, requests: Sequence[LookupRequest]) -> List[LookupResult]:
        """Answer a batch of lookups/probes, one round trip per node touched.

        Requests are grouped by responsible node, each group is sent as one
        batched operation, and the answers are reassembled in request order.
        Results are identical to issuing the requests one at a time; when a
        group's node is unreachable, its requests fail over to their next
        untried replica (re-batched per replica node), and only requests
        with no reachable replica left are answered with degraded misses.
        """
        results: List[Optional[LookupResult]] = [None] * len(requests)
        tried: List[Set[str]] = [set() for _ in requests]
        pending: Dict[str, List[int]] = {}

        def enqueue(index: int) -> None:
            """Queue the request on its first untried live replica."""
            for node in self.replicas_for(requests[index].key):
                if node not in tried[index] and node in self._transports:
                    pending.setdefault(node, []).append(index)
                    return
            self._bump_health("degraded_lookups")
            results[index] = LookupResult(
                hit=False, key=requests[index].key, degraded=True
            )

        for index in range(len(requests)):
            enqueue(index)
        scope = self._op_scope("multi_lookup")
        with scope:
            self._drain_multi_lookup(requests, results, tried, pending)
        return results  # type: ignore[return-value]  # every slot is filled

    def _drain_multi_lookup(self, requests, results, tried, pending) -> None:
        """The per-node round-trip loop of :meth:`multi_lookup`.

        Runs inside the op's deadline scope; when the budget runs out the
        still-queued requests degrade immediately instead of charging
        transport failures to nodes that were never actually asked.
        """

        def enqueue(index: int) -> None:
            for node in self.replicas_for(requests[index].key):
                if node not in tried[index] and node in self._transports:
                    pending.setdefault(node, []).append(index)
                    return
            self._bump_health("degraded_lookups")
            results[index] = LookupResult(
                hit=False, key=requests[index].key, degraded=True
            )

        while pending:
            node, indices = pending.popitem()
            if self._budget_exhausted():
                for index in indices:
                    self._bump_health("degraded_lookups")
                    results[index] = LookupResult(
                        hit=False, key=requests[index].key, degraded=True
                    )
                continue
            batch = [requests[i] for i in indices]
            transport = self._transports.get(node)
            answers: Optional[List[LookupResult]] = None
            if transport is not None:
                try:
                    answers = self._call_with_retry(
                        "multi_lookup",
                        lambda transport=transport, batch=batch: (
                            transport.multi_lookup(batch)
                        ),
                    )
                except _FAILURE_EXCEPTIONS:
                    self._note_failure(node)
            if answers is None:
                # The node (or its whole batch) failed: each request retries
                # on its next replica, or degrades when none remain.
                for index in indices:
                    tried[index].add(node)
                    enqueue(index)
                continue
            if node in self._suspects:
                self._note_success(node)
            for index, answer in zip(indices, answers):
                results[index] = answer
                # Probe companions are statistics-free by design; counting
                # them would double the replica counters per batched read.
                if not requests[index].probe:
                    self._record_failover_read(bool(tried[index]), answer.hit)

    def put(
        self,
        key: str,
        value: object,
        interval: Interval,
        tags: FrozenSet[InvalidationTag] = frozenset(),
    ) -> bool:
        """Insert one version of ``key`` on its full replica set.

        The write fans out to every replica (one node with
        ``replication_factor=1``); unreachable replicas are skipped after
        noting the failure.  Returns True if any replica stored the entry;
        only a write that reached *no* replica counts as degraded.
        """
        stored = False
        delivered = False
        for node in self.replicas_for(key):
            transport = self._transports.get(node)
            if transport is None:
                continue
            try:
                accepted = transport.put(key, value, interval, tags)
            except _FAILURE_EXCEPTIONS:
                self._note_failure(node)
                continue
            if node in self._suspects:
                self._note_success(node)
            delivered = True
            stored = stored or accepted
        if not delivered:
            self._bump_health("degraded_puts")
        return stored

    def probe(self, key: str, lo: int, hi: int) -> bool:
        """Statistics-free hit check (first reachable replica answers)."""
        answered, _failed_over, answer = self._read_from_replicas(
            key, lambda transport: transport.probe(key, lo, hi), op="probe"
        )
        if answered:
            return answer
        self._bump_health("degraded_ops")
        return False

    def was_ever_stored(self, key: str) -> bool:
        """True if a reachable replica of ``key`` has ever stored it."""
        answered, _failed_over, answer = self._read_from_replicas(
            key, lambda transport: transport.was_ever_stored(key), op="was_ever_stored"
        )
        if answered:
            return answer
        self._bump_health("degraded_ops")
        return False

    def evict_stale(self, oldest_useful_timestamp: int) -> int:
        """Eagerly drop too-stale entries on every reachable node."""
        removed = 0
        for node in list(self._transports):
            transport = self._transports.get(node)
            if transport is None:
                continue
            try:
                removed += transport.evict_stale(oldest_useful_timestamp)
            except _FAILURE_EXCEPTIONS:
                self._bump_health("degraded_ops")
                self._note_failure(node)
        return removed

    def clear(self) -> None:
        """Empty every reachable node."""
        for node in list(self._transports):
            transport = self._transports.get(node)
            if transport is None:
                continue
            try:
                transport.clear()
            except _FAILURE_EXCEPTIONS:
                self._bump_health("degraded_ops")
                self._note_failure(node)

    # ------------------------------------------------------------------
    # Key migration plumbing (used by the membership coordinator)
    # ------------------------------------------------------------------
    def extract_entries(
        self, node: str, cursor: Optional[str] = None, limit: int = 64
    ) -> Tuple[List[EntryRecord], Optional[str]]:
        """One page of ``node``'s entries (see the transport operation)."""
        return self._transports[node].extract_entries(cursor, limit)

    def install_entries(self, node: str, records: Sequence[EntryRecord]) -> int:
        """Install migrated records on ``node``; returns the stored count."""
        return self._transports[node].install_entries(records)

    def discard_keys(self, node: str, keys: Sequence[str]) -> int:
        """Drop migrated-away keys from ``node``; returns the removed count."""
        return self._transports[node].discard_keys(keys)

    def node_keys(self, node: str) -> List[str]:
        """The keys currently stored on ``node`` (replica-placement checks)."""
        return self._transports[node].keys()

    def watermark(self, node: str) -> int:
        """``node``'s highest processed invalidation timestamp."""
        return self._transports[node].watermark()

    # ------------------------------------------------------------------
    # Autonomous cluster plane (gossip membership + digest repair)
    # ------------------------------------------------------------------
    def gossip(self, node: str, digest: dict) -> dict:
        """Push-pull membership-digest exchange with ``node``'s agent."""
        return self._transports[node].gossip(digest)

    def key_digest(self, node: str, arcs) -> List[Tuple[int, int, int]]:
        """Per-arc interval-set digests of ``node``'s stored keys.

        Idempotent read: retried per the cluster policy under one deadline
        budget, so a repair sweep rides out a transient blip instead of
        writing the node off as a lost source.
        """
        transport = self._transports[node]
        with self._op_scope("key_digest"):
            return self._call_with_retry(
                "key_digest", lambda: transport.key_digest(list(arcs))
            )

    def keys_in_range(self, node: str, arcs) -> List[str]:
        """``node``'s stored keys inside the given hash-space arcs.

        Idempotent read: retried like :meth:`key_digest`.
        """
        transport = self._transports[node]
        with self._op_scope("keys_in_range"):
            return self._call_with_retry(
                "keys_in_range", lambda: transport.keys_in_range(list(arcs))
            )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def aggregate_stats(self) -> CacheServerStats:
        """Sum the per-node counters into one stats object."""
        total = CacheServerStats()
        for node in list(self._transports):
            transport = self._transports.get(node)
            if transport is None:
                continue
            try:
                total += transport.stats()
            except _FAILURE_EXCEPTIONS:
                self._bump_health("degraded_ops")
                self._note_failure(node)
        return total

    def reset_stats(self) -> None:
        """Reset the counters of every reachable node."""
        for node in list(self._transports):
            transport = self._transports.get(node)
            if transport is None:
                continue
            try:
                transport.reset_stats()
            except _FAILURE_EXCEPTIONS:
                self._bump_health("degraded_ops")
                self._note_failure(node)

    @property
    def used_bytes(self) -> int:
        """Total bytes in use across the cluster."""
        with self._state_lock:  # a concurrent eviction mutates _servers
            servers = list(self._servers.values())
        return sum(server.used_bytes for server in servers)

    @property
    def capacity_bytes(self) -> int:
        """Total capacity across the cluster."""
        with self._state_lock:
            servers = list(self._servers.values())
        return sum(server.capacity_bytes for server in servers)

    @property
    def entry_count(self) -> int:
        """Total entries across the cluster."""
        with self._state_lock:
            servers = list(self._servers.values())
        return sum(server.entry_count for server in servers)

    def key_distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """How a set of keys spreads over nodes (for balance diagnostics)."""
        return self.ring.distribution(list(keys))
