"""A set of cache servers addressed through consistent hashing.

The application library never talks to individual cache nodes; it hands keys
to the cluster, which routes each key to the responsible node using the hash
ring, exactly as the paper's TxCache library maps a key to a cache server.
All nodes subscribe to the same invalidation stream.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.cache.entry import LookupResult
from repro.cache.hashring import ConsistentHashRing
from repro.cache.server import CacheServer, CacheServerStats
from repro.clock import Clock, SystemClock
from repro.comm.multicast import InvalidationBus
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

__all__ = ["CacheCluster"]


class CacheCluster:
    """Routes cache operations to the responsible cache server."""

    def __init__(
        self,
        node_count: int = 2,
        capacity_bytes_per_node: int = 64 * 1024 * 1024,
        clock: Optional[Clock] = None,
        invalidation_bus: Optional[InvalidationBus] = None,
        virtual_nodes: int = 100,
        node_names: Optional[Sequence[str]] = None,
    ) -> None:
        clock = clock or SystemClock()
        if node_names is None:
            node_names = [f"cache{i}" for i in range(node_count)]
        self._servers: Dict[str, CacheServer] = {
            name: CacheServer(name=name, capacity_bytes=capacity_bytes_per_node, clock=clock)
            for name in node_names
        }
        self.ring = ConsistentHashRing(nodes=list(self._servers), virtual_nodes=virtual_nodes)
        if invalidation_bus is not None:
            self.attach_invalidation_bus(invalidation_bus)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def servers(self) -> Dict[str, CacheServer]:
        """Mapping of node name to cache server."""
        return dict(self._servers)

    @property
    def node_count(self) -> int:
        """Number of cache nodes."""
        return len(self._servers)

    def server_for(self, key: str) -> CacheServer:
        """The server responsible for ``key`` under consistent hashing."""
        return self._servers[self.ring.node_for(key)]

    def attach_invalidation_bus(self, bus: InvalidationBus) -> None:
        """Subscribe every node to the database's invalidation stream."""
        for server in self._servers.values():
            bus.subscribe(server)

    def add_node(self, name: str, capacity_bytes: int, clock: Optional[Clock] = None) -> CacheServer:
        """Add a cache node to the cluster (keys re-map via the ring)."""
        if name in self._servers:
            raise ValueError(f"cache node {name!r} already exists")
        server = CacheServer(name=name, capacity_bytes=capacity_bytes, clock=clock or SystemClock())
        self._servers[name] = server
        self.ring.add_node(name)
        return server

    def remove_node(self, name: str) -> None:
        """Remove a cache node; its contents are lost (cache semantics)."""
        self._servers.pop(name, None)
        self.ring.remove_node(name)

    # ------------------------------------------------------------------
    # Cache operations (routed)
    # ------------------------------------------------------------------
    def lookup(self, key: str, lo: int, hi: int) -> LookupResult:
        """Route a versioned lookup to the responsible node."""
        return self.server_for(key).lookup(key, lo, hi)

    def put(
        self,
        key: str,
        value: object,
        interval: Interval,
        tags: FrozenSet[InvalidationTag] = frozenset(),
    ) -> bool:
        """Route an insertion to the responsible node."""
        return self.server_for(key).put(key, value, interval, tags)

    def probe(self, key: str, lo: int, hi: int) -> bool:
        """Statistics-free hit check on the responsible node (see server)."""
        return self.server_for(key).probe(key, lo, hi)

    def was_ever_stored(self, key: str) -> bool:
        """True if the responsible node has ever stored ``key``."""
        return self.server_for(key).was_ever_stored(key)

    def evict_stale(self, oldest_useful_timestamp: int) -> int:
        """Eagerly drop too-stale entries on every node."""
        return sum(
            server.evict_stale(oldest_useful_timestamp) for server in self._servers.values()
        )

    def clear(self) -> None:
        """Empty every node."""
        for server in self._servers.values():
            server.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def aggregate_stats(self) -> CacheServerStats:
        """Sum the per-node counters into one stats object."""
        total = CacheServerStats()
        for server in self._servers.values():
            for field_name in CacheServerStats.__dataclass_fields__:
                setattr(
                    total,
                    field_name,
                    getattr(total, field_name) + getattr(server.stats, field_name),
                )
        return total

    def reset_stats(self) -> None:
        """Reset the counters of every node."""
        for server in self._servers.values():
            server.stats.reset()

    @property
    def used_bytes(self) -> int:
        """Total bytes in use across the cluster."""
        return sum(server.used_bytes for server in self._servers.values())

    @property
    def capacity_bytes(self) -> int:
        """Total capacity across the cluster."""
        return sum(server.capacity_bytes for server in self._servers.values())

    @property
    def entry_count(self) -> int:
        """Total entries across the cluster."""
        return sum(server.entry_count for server in self._servers.values())

    def key_distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """How a set of keys spreads over nodes (for balance diagnostics)."""
        return self.ring.distribution(list(keys))
