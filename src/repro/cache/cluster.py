"""A set of cache nodes addressed through consistent hashing.

The application library never talks to individual cache nodes; it hands keys
to the cluster, which routes each key to the responsible node using the hash
ring, exactly as the paper's TxCache library maps a key to a cache server.
All nodes subscribe to the same invalidation stream.

The cluster reaches each node through a :class:`CacheTransport`
(:mod:`repro.comm.transport`), so the same routing logic serves two
topologies:

* ``transport="inprocess"`` — nodes are plain :class:`CacheServer` objects
  called directly (zero overhead; the original behaviour);
* ``transport="socket"`` — each node runs as a
  :class:`repro.cache.netserver.CacheServerProcess` behind a TCP endpoint
  and is reached via a :class:`repro.cache.netserver.SocketTransport`,
  modelling the paper's real deployment of standalone cache servers.

Batched lookups (:meth:`CacheCluster.multi_lookup`) group requests by
responsible node and issue one round trip per node, which is where a
networked topology recovers most of its RPC cost.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.cache.entry import LookupRequest, LookupResult
from repro.cache.hashring import ConsistentHashRing
from repro.cache.netserver import CacheServerProcess, SocketTransport
from repro.cache.server import CacheServer, CacheServerStats
from repro.clock import Clock, SystemClock
from repro.comm.multicast import InvalidationBus
from repro.comm.transport import CacheTransport, InProcessTransport
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

__all__ = ["CacheCluster"]

#: Supported values of the ``transport`` constructor argument.
TRANSPORT_KINDS = ("inprocess", "socket")


class CacheCluster:
    """Routes cache operations to the responsible cache node's transport."""

    def __init__(
        self,
        node_count: int = 2,
        capacity_bytes_per_node: int = 64 * 1024 * 1024,
        clock: Optional[Clock] = None,
        invalidation_bus: Optional[InvalidationBus] = None,
        virtual_nodes: int = 100,
        node_names: Optional[Sequence[str]] = None,
        transport: str = "inprocess",
    ) -> None:
        if transport not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORT_KINDS}"
            )
        self.transport_kind = transport
        self._clock = clock or SystemClock()
        self._bus: Optional[InvalidationBus] = None
        self._servers: Dict[str, CacheServer] = {}
        self._transports: Dict[str, CacheTransport] = {}
        self._processes: Dict[str, CacheServerProcess] = {}
        if node_names is None:
            node_names = [f"cache{i}" for i in range(node_count)]
        try:
            for name in node_names:
                self._start_node(name, capacity_bytes_per_node, self._clock)
        except BaseException:
            # Don't orphan already-started networked nodes (listener sockets
            # and threads) when a later node fails to come up.
            self._teardown_nodes()
            raise
        self.ring = ConsistentHashRing(nodes=list(self._servers), virtual_nodes=virtual_nodes)
        if invalidation_bus is not None:
            self.attach_invalidation_bus(invalidation_bus)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def servers(self) -> Dict[str, CacheServer]:
        """Mapping of node name to the underlying cache server.

        The server objects live in this process under both transports (the
        socket transport serves them from a node thread), so they remain
        available for introspection; live traffic always goes through the
        transports.
        """
        return dict(self._servers)

    @property
    def transports(self) -> Dict[str, CacheTransport]:
        """Mapping of node name to the transport reaching that node."""
        return dict(self._transports)

    @property
    def node_count(self) -> int:
        """Number of cache nodes."""
        return len(self._transports)

    def server_for(self, key: str) -> CacheServer:
        """The underlying server responsible for ``key`` (introspection)."""
        return self._servers[self.ring.node_for(key)]

    def transport_for(self, key: str) -> CacheTransport:
        """The transport to the node responsible for ``key``."""
        return self._transports[self.ring.node_for(key)]

    def attach_invalidation_bus(self, bus: InvalidationBus) -> None:
        """Subscribe every node's transport to the invalidation stream.

        The cluster remembers the bus so nodes removed later are also
        unsubscribed (otherwise a removed node would keep consuming the
        stream forever).
        """
        self._bus = bus
        for transport in self._transports.values():
            bus.subscribe(transport)

    def add_node(self, name: str, capacity_bytes: int, clock: Optional[Clock] = None) -> CacheServer:
        """Add a cache node to the cluster (keys re-map via the ring)."""
        if name in self._transports:
            raise ValueError(f"cache node {name!r} already exists")
        server = self._start_node(name, capacity_bytes, clock or self._clock)
        self.ring.add_node(name)
        if self._bus is not None:
            self._bus.subscribe(self._transports[name])
        return server

    def remove_node(self, name: str) -> None:
        """Remove a cache node; its contents are lost (cache semantics).

        The node's transport is unsubscribed from the invalidation bus and
        closed, and a networked node's server is shut down.
        """
        transport = self._transports.pop(name, None)
        self._servers.pop(name, None)
        self.ring.remove_node(name)
        if transport is None:
            return
        if self._bus is not None:
            self._bus.unsubscribe(transport)
        transport.close()
        process = self._processes.pop(name, None)
        if process is not None:
            process.shutdown()

    def close(self) -> None:
        """Shut down every node (connections, socket servers, subscriptions)."""
        for name in list(self._transports):
            self.remove_node(name)

    def _teardown_nodes(self) -> None:
        """Close every transport and stop every node (no ring/bus updates)."""
        for transport in self._transports.values():
            transport.close()
        for process in self._processes.values():
            process.shutdown()
        self._transports.clear()
        self._processes.clear()
        self._servers.clear()

    def _start_node(self, name: str, capacity_bytes: int, clock: Clock) -> CacheServer:
        server = CacheServer(name=name, capacity_bytes=capacity_bytes, clock=clock)
        self._servers[name] = server
        if self.transport_kind == "socket":
            process = CacheServerProcess(server)
            self._processes[name] = process
            try:
                self._transports[name] = SocketTransport(process.address, name=name)
            except BaseException:
                # Connecting failed: stop the just-started node instead of
                # leaving its listener thread orphaned.
                self._processes.pop(name).shutdown()
                self._servers.pop(name)
                raise
        else:
            self._transports[name] = InProcessTransport(server)
        return server

    # ------------------------------------------------------------------
    # Cache operations (routed)
    # ------------------------------------------------------------------
    def lookup(self, key: str, lo: int, hi: int) -> LookupResult:
        """Route a versioned lookup to the responsible node."""
        return self.transport_for(key).lookup(key, lo, hi)

    def multi_lookup(self, requests: Sequence[LookupRequest]) -> List[LookupResult]:
        """Answer a batch of lookups/probes, one round trip per node touched.

        Requests are grouped by responsible node, each group is sent as one
        batched operation, and the answers are reassembled in request order.
        Results are identical to issuing the requests one at a time.
        """
        by_node: Dict[str, List[int]] = {}
        for index, request in enumerate(requests):
            by_node.setdefault(self.ring.node_for(request.key), []).append(index)
        results: List[Optional[LookupResult]] = [None] * len(requests)
        for node, indices in by_node.items():
            batch = [requests[i] for i in indices]
            for i, result in zip(indices, self._transports[node].multi_lookup(batch)):
                results[i] = result
        return results  # type: ignore[return-value]  # every slot is filled

    def put(
        self,
        key: str,
        value: object,
        interval: Interval,
        tags: FrozenSet[InvalidationTag] = frozenset(),
    ) -> bool:
        """Route an insertion to the responsible node."""
        return self.transport_for(key).put(key, value, interval, tags)

    def probe(self, key: str, lo: int, hi: int) -> bool:
        """Statistics-free hit check on the responsible node (see server)."""
        return self.transport_for(key).probe(key, lo, hi)

    def was_ever_stored(self, key: str) -> bool:
        """True if the responsible node has ever stored ``key``."""
        return self.transport_for(key).was_ever_stored(key)

    def evict_stale(self, oldest_useful_timestamp: int) -> int:
        """Eagerly drop too-stale entries on every node."""
        return sum(
            transport.evict_stale(oldest_useful_timestamp)
            for transport in self._transports.values()
        )

    def clear(self) -> None:
        """Empty every node."""
        for transport in self._transports.values():
            transport.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def aggregate_stats(self) -> CacheServerStats:
        """Sum the per-node counters into one stats object."""
        total = CacheServerStats()
        for transport in self._transports.values():
            total += transport.stats()
        return total

    def reset_stats(self) -> None:
        """Reset the counters of every node."""
        for transport in self._transports.values():
            transport.reset_stats()

    @property
    def used_bytes(self) -> int:
        """Total bytes in use across the cluster."""
        return sum(server.used_bytes for server in self._servers.values())

    @property
    def capacity_bytes(self) -> int:
        """Total capacity across the cluster."""
        return sum(server.capacity_bytes for server in self._servers.values())

    @property
    def entry_count(self) -> int:
        """Total entries across the cluster."""
        return sum(server.entry_count for server in self._servers.values())

    def key_distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """How a set of keys spreads over nodes (for balance diagnostics)."""
        return self.ring.distribution(list(keys))
