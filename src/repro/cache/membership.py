"""Cluster membership: epochs, live key migration, failure-driven eviction.

The paper assumes a mostly static cache-server list; this module is what
turns the reproduction's cache tier into an *elastic* one.  A
:class:`ClusterMembership` coordinator sits next to a
:class:`repro.cache.cluster.CacheCluster` and versions its node set into
**epochs**: every join, leave, rejoin, or failure-driven eviction advances
the epoch and is recorded in the membership history.

**Live key migration.**  Consistent hashing already guarantees a membership
change remaps only ~1/n of the key space, but without migration that slice
cold-starts: every remapped key misses until traffic refills it.  A planned
change instead *streams* the affected entries to their new owner before the
ring is switched:

1. stage the change on a copy of the ring and diff ownership
   (:func:`repro.cache.hashring.diff_ownership`) to find the arcs — and
   therefore the source nodes — that change hands;
2. carry each source's invalidation watermark over to the target
   (``note_timestamp``), so migrated still-valid entries remain usable at
   current timestamps on arrival;
3. page through each source with ``extract_entries`` (bounded chunks, all
   versions of a key in one chunk), keep the records the new ring routes
   elsewhere, and ``install_entries`` them on their new owner — the
   install path reuses the server's put semantics, so the
   insert/invalidate race protection applies to in-flight records too;
4. atomically adopt the new ring, then ``discard_keys`` the moved keys from
   the sources (join) or shut the drained node down (leave).

Because every node subscribes to the same invalidation stream throughout,
invalidations published during a migration reach both the old and the new
owner; a record extracted before an invalidation and installed after it is
truncated on insert by the target's tag history.

**Failure handling.**  The cluster itself degrades operations against an
unreachable node to misses/no-ops and evicts the node from the ring after
``failure_threshold`` consecutive failures (see
:class:`repro.cache.cluster.CacheCluster`); the coordinator observes those
evictions through the cluster's ``on_node_evicted`` hook, records an epoch,
and allows the node (or a replacement with the same name) to *rejoin* later
via :meth:`join` — warmed by migration like any other joiner.

**Replication.**  When the cluster runs with ``replication_factor=R > 1``
the planner works on *replica sets* rather than single owners
(:func:`repro.cache.hashring.diff_replica_ownership`): a join streams to the
newcomer exactly the arcs whose successor list it enters, sources discard
only keys they no longer replicate, and a leave drains the departing node's
entries to every member of each key's new replica set (installs on nodes
that already hold a copy are rejected as duplicates, so this is idempotent).
After a *failure* eviction the crashed node's arcs are under-replicated —
the surviving copies serve reads, but a second crash would lose them — so
the coordinator runs an **anti-entropy repair** (:meth:`repair`): replicas
first compare cheap per-arc key digests, then live holders stream entries
(the same ``extract_entries``/``install_entries`` ops as migration) to the
replicas of each key that lack a copy — and only for the arcs whose digests
actually disagree.  When the coordinator carries a
:class:`repro.cache.maintenance.MaintenancePlane`, the whole sweep runs as a
resumable chunked background job under the plane's op/byte budget instead of
synchronously at the epoch boundary.  Repair never
advances a destination's invalidation watermark: established members are
already current, and force-advancing a node that *missed* messages (a healed
partition) would let its un-truncated still-valid entries claim validity
through timestamps whose invalidations it never processed — a stale read.
The watermark carry-over is therefore reserved for join targets, which are
freshly provisioned (empty, subscribed to the stream from birth) and safe to
advance per the paper's staleness rules.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

# _FAILURE_EXCEPTIONS: the cluster's definition of "node unreachable";
# migration treats a vanished source/target the same way routing does.
from repro.cache.cluster import _FAILURE_EXCEPTIONS, CacheCluster
from repro.cache.entry import EntryRecord
from repro.cache.hashring import ConsistentHashRing, diff_replica_ownership
from repro.cache.maintenance import ChunkedJob, MaintenancePlane
from repro.cache.server import CacheServer

__all__ = ["ClusterMembership", "MembershipStats", "EpochRecord"]


@dataclass
class MembershipStats:
    """Counters kept by the membership coordinator."""

    joins: int = 0
    leaves: int = 0
    rejoins: int = 0
    #: Failure-driven ring evictions observed via the cluster hook.
    failure_evictions: int = 0
    #: Administrative :meth:`ClusterMembership.evict` calls (no migration).
    manual_evictions: int = 0
    #: Planned changes that ran with migration enabled.
    migrations: int = 0
    #: Hash-ring arcs that changed owner across all planned changes.
    ranges_moved: int = 0
    #: Entry versions shipped to a new owner.
    entries_migrated: int = 0
    #: Distinct keys shipped to a new owner.
    keys_migrated: int = 0
    #: extract_entries pages issued.
    migration_chunks: int = 0
    #: Entry versions dropped from sources after a successful handoff.
    entries_discarded: int = 0
    #: Sources that disappeared mid-migration (their slice cold-starts).
    migration_sources_lost: int = 0
    #: Install batches lost because the destination was unreachable.
    migration_install_failures: int = 0
    #: Anti-entropy repair sweeps run (after failure evictions, or manual).
    repairs: int = 0
    #: Entry versions actually (re-)stored on an under-replicated node by
    #: repair sweeps (duplicate installs on up-to-date replicas don't count).
    entries_re_replicated: int = 0
    #: ``key_digest`` round trips issued by repair sweeps (one per node).
    repair_digest_rpcs: int = 0
    #: ``keys_in_range`` round trips issued for arcs whose digests disagreed.
    repair_key_fetches: int = 0
    #: Ring arcs whose replica digests all matched (no key traffic at all).
    repair_arcs_clean: int = 0
    #: Ring arcs whose replica digests disagreed (key lists were fetched).
    repair_arcs_dirty: int = 0
    #: Budgeted re-warm sweeps started for a respawned/rejoined node.
    rewarms: int = 0
    #: Entry versions streamed onto a rejoined node by re-warm sweeps.
    entries_rewarmed: int = 0


@dataclass(frozen=True)
class EpochRecord:
    """One entry of the membership history."""

    epoch: int
    change: str  # "genesis" | "join" | "rejoin" | "leave" | "evict"
    node: Optional[str]
    #: Node set after the change took effect.
    members: Tuple[str, ...] = ()


@dataclass
class ClusterMembership:
    """Epoch-versioned membership coordinator for one cache cluster."""

    cluster: CacheCluster
    #: Keys per extract_entries page during migration.
    chunk_size: int = 128
    #: Run an anti-entropy repair sweep automatically after a failure-driven
    #: eviction leaves key ranges under-replicated (replicated clusters only).
    auto_repair: bool = True
    #: Background maintenance plane.  When set, :meth:`repair` submits a
    #: resumable chunked job to it (drained by the plane's pump under its
    #: op/byte budget) instead of sweeping synchronously.
    plane: Optional[MaintenancePlane] = None

    epoch: int = field(init=False, default=0)
    history: List[EpochRecord] = field(init=False, default_factory=list)
    stats: MembershipStats = field(init=False, default_factory=MembershipStats)

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        #: Names that departed (leave or eviction); joining one again is a
        #: rejoin rather than a first join.
        self._departed: set = set()
        self.history.append(
            EpochRecord(epoch=0, change="genesis", node=None, members=self._members())
        )
        self.cluster.on_node_evicted = self._on_failure_eviction

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def members(self) -> List[str]:
        """Current ring members."""
        return self.cluster.ring.nodes

    def _members(self) -> Tuple[str, ...]:
        return tuple(sorted(self.cluster.ring.nodes))

    def _advance(self, change: str, node: Optional[str]) -> None:
        self.epoch += 1
        self.history.append(
            EpochRecord(epoch=self.epoch, change=change, node=node, members=self._members())
        )

    # ------------------------------------------------------------------
    # Planned membership changes
    # ------------------------------------------------------------------
    def join(
        self,
        name: str,
        capacity_bytes: int = 64 * 1024 * 1024,
        weight: float = 1.0,
        migrate: bool = True,
    ) -> CacheServer:
        """Add a node, optionally warming it by live migration.

        The node is provisioned outside the ring (it already receives the
        invalidation stream), the entries its arcs will own are streamed
        onto it from their current owners, and only then does the ring —
        and with it live traffic — switch over.  With ``migrate=False``
        this is a cold join: remapped keys start over.
        """
        if name in self.cluster.ring:
            raise ValueError(f"cache node {name!r} is already a member")
        rejoining = name in self._departed
        server = self.cluster.provision_node(name, capacity_bytes)
        new_ring = self.cluster.ring.copy()
        new_ring.add_node(name, weight=weight)
        if migrate and len(new_ring) > 1:
            self._migrate_for_join(name, new_ring)
        self.cluster.adopt_ring(new_ring)
        if rejoining:
            self._departed.discard(name)
            self.stats.rejoins += 1
            self._advance("rejoin", name)
        else:
            self.stats.joins += 1
            self._advance("join", name)
        return server

    def rejoin(self, name: str, capacity_bytes: int = 64 * 1024 * 1024, weight: float = 1.0) -> int:
        """Cold-join a respawned node, then re-warm it under the budget.

        The supervisor's rejoin path: the node enters the ring immediately
        (serving cold misses from its slice — availability first), and its
        working set is streamed back as a resumable :class:`ChunkedJob` on
        the maintenance plane, so recovery traffic is paced by the plane's
        op/byte budget instead of spiking foreground p99 the way
        ``join(migrate=True)``'s synchronous pre-warm would.  Without a
        plane the sweep drains synchronously and the installed count is
        returned; with one, 0 is returned and
        ``stats.entries_rewarmed`` advances as the job is pumped.
        """
        self.join(name, capacity_bytes=capacity_bytes, weight=weight, migrate=False)
        job = ChunkedJob("rewarm", self._rewarm_chunks(name))
        if self.plane is not None:
            self.plane.submit(job)
            return 0
        job.drain()
        return int(job.result or 0)

    def _rewarm_chunks(self, target: str) -> Generator[Tuple[int, int], None, int]:
        """Stream ``target``'s arcs back onto it, one budget chunk per RPC.

        The re-warm plan mirrors :meth:`_migrate_for_join` — each key is
        shipped once, by the first ring-ordered holder — but runs *after*
        ring adoption, chunked for the maintenance budget.  The watermark
        carry-over is safe here for the same reason as a join target: the
        respawned node is freshly provisioned (empty, subscribed to the
        invalidation stream from birth), so it has missed no messages and
        advancing it cannot fabricate validity (the PR-3 rule).  Displaced
        copies on the nodes that absorbed the victim's slice are left to
        age out, exactly like repair sources.
        """
        cluster = self.cluster
        ring = cluster.ring
        factor = cluster.replication_factor
        if target not in ring.nodes or len(ring) <= 1:
            return 0
        self.stats.rewarms += 1
        arcs = ring.replica_ranges(target, factor)
        sources = [node for node in sorted(ring.nodes) if node != target]
        # Watermark frontier first, so entries installed below are usable
        # at current timestamps the moment they land.
        frontier = 0
        for node in sources:
            try:
                frontier = max(frontier, cluster.watermark(node))
            except _FAILURE_EXCEPTIONS:
                cluster.note_transport_failure(node)
            yield (1, 16)
        try:
            transport = cluster.transports[target]
            if frontier and transport.watermark() < frontier:
                transport.note_timestamp(frontier)
            yield (2, 16)
        except _FAILURE_EXCEPTIONS:
            cluster.note_transport_failure(target)
            return 0  # the rejoined node died again; the supervisor re-runs
        except KeyError:
            return 0  # already evicted again
        # Which keys belong on the target now, and who holds a copy?
        held_by: Dict[str, set] = {}
        for node in sources:
            try:
                keys = cluster.keys_in_range(node, arcs)
            except _FAILURE_EXCEPTIONS:
                cluster.note_transport_failure(node)
                continue
            held_by[node] = set(keys)
            yield (1, sum(len(key) for key in keys) or 16)
        assigned: Dict[str, set] = {}
        claimed: set = set()
        for node in sources:  # sorted: the designated source is deterministic
            for key in sorted(held_by.get(node, ())):
                if key in claimed or target not in ring.successors(key, factor):
                    continue
                claimed.add(key)
                assigned.setdefault(node, set()).add(key)
        installed = 0
        for source in sorted(assigned):
            installed += yield from self._ship_missing(
                source, {target: assigned[source]}, held_by.get(source) or set()
            )
        self.stats.entries_rewarmed += installed
        return installed

    def leave(self, name: str, migrate: bool = True) -> None:
        """Remove a node, optionally draining its entries to the survivors.

        With migration, every entry the departing node holds is streamed to
        the node that owns its key under the new ring before routing
        switches and the node shuts down; the departing slice stays warm.
        """
        if name not in self.cluster.ring:
            raise KeyError(name)
        new_ring = self.cluster.ring.copy()
        new_ring.remove_node(name)
        if migrate and len(new_ring) > 0:
            self._migrate_for_leave(name, new_ring)
        self.cluster.adopt_ring(new_ring)
        self.cluster.remove_node(name)  # ring removal already done; detaches node
        self._departed.add(name)
        self.stats.leaves += 1
        self._advance("leave", name)

    def evict(self, name: str) -> None:
        """Forcibly drop a (presumed dead) node: no migration, epoch bump.

        This is the manual form of what the cluster does automatically after
        repeated transport failures, including the follow-up: on a
        replicated cluster the eviction leaves the victim's arcs one copy
        short, so the same anti-entropy repair runs afterwards.  Without
        replication the node's slice of the key space cold-starts on the
        survivors.
        """
        if name not in self.cluster.ring:
            raise KeyError(name)
        new_ring = self.cluster.ring.copy()
        new_ring.remove_node(name)
        self.cluster.adopt_ring(new_ring)
        self.cluster.remove_node(name)
        self.stats.manual_evictions += 1
        self._record_eviction(name)
        if self.auto_repair and self.cluster.replication_factor > 1:
            self.repair()

    def _on_failure_eviction(self, name: str) -> None:
        """Cluster hook: a node crossed the failure threshold and was evicted.

        A crash (unlike a drained leave) leaves every range the victim
        replicated one copy short, so a replicated cluster follows the epoch
        bump with an anti-entropy repair that restores the replication
        factor from the surviving copies.
        """
        self.stats.failure_evictions += 1
        self._record_eviction(name)
        if self.auto_repair and self.cluster.replication_factor > 1:
            self.repair()

    def _record_eviction(self, name: str) -> None:
        self._departed.add(name)
        self._advance("evict", name)

    # ------------------------------------------------------------------
    # Anti-entropy repair (re-replication after a crash)
    # ------------------------------------------------------------------
    def repair(self) -> int:
        """Restore the replication factor from the surviving copies.

        Three passes, all resumable at chunk granularity.  A *digest* pass
        fetches every member's per-arc key digests (one ``key_digest`` round
        trip per node; see :meth:`repro.cache.server.CacheServer.key_digest`)
        and compares the replicas of each arc — an arc whose digests all
        match is provably in sync and generates **no key traffic at all**,
        so the steady-state sweep costs N digest round trips and ships
        nothing.  A *key* pass then fetches key lists only for the arcs
        whose digests disagreed (``keys_in_range``) and plans, per key,
        which replicas lack a copy and which live holder should supply it.
        A *shipping* pass streams exactly the missing copies (bounded
        chunks, the same migration ops); installs go through the server's
        put semantics, so anything invalidated meanwhile is truncated on
        insert.  Reconciliation is key-granular: a replica that holds *any*
        version of a key is considered current (finer, per-version
        divergence ages out or is refilled by traffic).

        Without a :attr:`plane` the sweep runs synchronously and returns
        the number of entry versions actually re-stored.  With one, the
        sweep is submitted as a chunked background job — drained by the
        plane's pump under its op/byte budget — and this returns 0
        immediately; ``stats.entries_re_replicated`` advances as the job
        completes.  A no-op for unreplicated clusters and rings too small
        to replicate.
        """
        job = ChunkedJob("repair", self._repair_chunks())
        if self.plane is not None:
            self.plane.submit(job)
            return 0
        job.drain()
        return int(job.result or 0)

    def _repair_chunks(self) -> Generator[Tuple[int, int], None, int]:
        """The repair sweep as a chunk generator (one yield per RPC page)."""
        factor = self.cluster.replication_factor
        ring = self.cluster.ring
        if factor <= 1 or len(ring) <= 1:
            return 0
        self.stats.repairs += 1
        nodes = sorted(ring.nodes)
        # Replicas of one ring segment report the segment under the *same*
        # (start, end) arc tuple (see ``replica_ranges``), so digests are
        # directly comparable per arc across nodes.
        arcs_of: Dict[str, List[Tuple[int, int]]] = {
            node: ring.replica_ranges(node, factor) for node in nodes
        }
        replicas_of: Dict[Tuple[int, int], List[str]] = {}
        for node in nodes:
            for arc in arcs_of[node]:
                replicas_of.setdefault(arc, []).append(node)
        # Digest pass: one cheap round trip per node.
        arc_digest: Dict[Tuple[str, Tuple[int, int]], Tuple[int, int, int]] = {}
        reachable: Dict[str, bool] = {}
        for node in nodes:
            try:
                digests = self.cluster.key_digest(node, arcs_of[node])
            except _FAILURE_EXCEPTIONS:
                self.cluster.note_transport_failure(node)
                reachable[node] = False
                continue
            finally:
                self.stats.repair_digest_rpcs += 1
            reachable[node] = True
            for arc, digest in zip(arcs_of[node], digests):
                arc_digest[(node, arc)] = tuple(digest)
            yield (1, 24 * max(1, len(arcs_of[node])))
        # An arc is dirty when its reachable replicas disagree; unreachable
        # replicas are neither repair sources nor targets (same stance as
        # the old full-inventory sweep).
        dirty_arcs: Set[Tuple[int, int]] = set()
        for arc, replicas in sorted(replicas_of.items()):
            seen = {
                arc_digest[(node, arc)] for node in replicas if (node, arc) in arc_digest
            }
            if len(seen) > 1:
                dirty_arcs.add(arc)
                self.stats.repair_arcs_dirty += 1
            else:
                self.stats.repair_arcs_clean += 1
        if not dirty_arcs:
            return 0
        # Key pass: fetch key lists only for the arcs that disagreed.  Every
        # replica of a dirty-arc key replicates that arc, so nodes with no
        # dirty arcs can never be a source or target and are skipped.
        held: Dict[str, Optional[set]] = {}
        for node in nodes:
            if not reachable[node]:
                held[node] = None
                continue
            node_dirty = [arc for arc in arcs_of[node] if arc in dirty_arcs]
            if not node_dirty:
                held[node] = set()
                continue
            try:
                keys = self.cluster.keys_in_range(node, node_dirty)
            except _FAILURE_EXCEPTIONS:
                self.cluster.note_transport_failure(node)
                held[node] = None
                continue
            finally:
                self.stats.repair_key_fetches += 1
            held[node] = set(keys)
            yield (1, sum(len(key) for key in keys))
        # source -> destination -> the keys the destination is missing.
        plan: Dict[str, Dict[str, set]] = {}
        key_sets = [keys for keys in held.values() if keys]
        for key in set().union(*key_sets) if key_sets else ():
            replicas = ring.successors(key, factor)
            holders = [node for node in replicas if held.get(node) and key in held[node]]
            if not holders:
                continue  # no reachable replica holds it; nothing to copy
            source = holders[0]
            for destination in replicas:
                if held.get(destination) is not None and key not in held[destination]:
                    plan.setdefault(source, {}).setdefault(destination, set()).add(key)
        installed = 0
        for source in sorted(plan):
            installed += yield from self._ship_missing(
                source, plan[source], held[source] or set()
            )
        self.stats.entries_re_replicated += installed
        return installed

    def _key_inventory(self, nodes) -> Dict[str, Optional[set]]:
        """Each node's stored key set; None for unreachable nodes."""
        held: Dict[str, Optional[set]] = {}
        for node in sorted(nodes):
            try:
                held[node] = set(self.cluster.node_keys(node))
            except _FAILURE_EXCEPTIONS:
                self.cluster.note_transport_failure(node)
                held[node] = None  # neither a repair source nor a target
        return held

    def _ship_missing(
        self, source: str, missing_by_dest: Dict[str, set], held_keys: set
    ) -> Generator[Tuple[int, int], None, int]:
        """Stream exactly the planned missing copies out of ``source``.

        A chunk generator: yields ``(ops, approx_bytes)`` after each extract
        page (the page plus its install fan-out) and returns the number of
        entry versions installed.
        """
        wanted = set().union(*missing_by_dest.values())
        installed = 0
        # Pages arrive in ascending key order, so seed the cursor with the
        # largest held key below the first wanted one: the head pages —
        # which by construction contain nothing to ship — are never paged.
        first = min(wanted)
        cursor: Optional[str] = max(
            (key for key in held_keys if key < first), default=None
        )
        while True:
            try:
                records, cursor = self.cluster.extract_entries(
                    source, cursor, self.chunk_size
                )
            except _FAILURE_EXCEPTIONS:
                self.stats.migration_sources_lost += 1
                self.cluster.note_transport_failure(source)
                return installed
            self.stats.migration_chunks += 1
            by_target: Dict[str, List[EntryRecord]] = {}
            for record in records:
                if record.key not in wanted:
                    continue
                for destination, keys in missing_by_dest.items():
                    if record.key in keys:
                        by_target.setdefault(destination, []).append(record)
            for destination, batch in by_target.items():
                # Deliberately no watermark carry-over here (see the module
                # docstring): repair peers are live stream subscribers, and
                # force-advancing one that missed messages would fabricate
                # validity its entries never earned.
                try:
                    installed += self.cluster.install_entries(destination, batch)
                except _FAILURE_EXCEPTIONS:
                    self.stats.migration_install_failures += 1
                    self.cluster.note_transport_failure(destination)
            yield (
                1 + len(by_target),
                sum(
                    len(record.key) + sys.getsizeof(record.value) + 48
                    for batch in by_target.values()
                    for record in batch
                )
                or 64,
            )
            # Pages arrive in ascending key order, so once the cursor passes
            # the last wanted key the remaining pages ship nothing.
            if cursor is None or cursor >= max(wanted):
                break
        return installed

    # ------------------------------------------------------------------
    # Migration internals
    # ------------------------------------------------------------------
    def _migrate_for_join(self, target: str, new_ring: ConsistentHashRing) -> None:
        """Stream the arcs whose replica set ``target`` enters, from their owners.

        With ``replication_factor=1`` the replica diff degenerates to the
        plain ownership diff and this is exactly the unreplicated plan: the
        arcs the newcomer takes over, streamed from their previous owners
        and discarded there afterwards.  With replication every moved key is
        held by up to R old replicas, so each key is streamed once, by its
        *designated* source — the first member of its old replica set that
        actually holds a copy (per a key-list inventory), not R times by
        every holder; ranking by the replica order rather than just "the
        primary" also warms keys the primary happens to lack (e.g. a put
        that landed while it was partitioned).  Afterwards each source
        discards exactly the keys the newcomer displaced it from, but only
        those whose arrival on the target was confirmed: a key whose
        install failed keeps its old copies, the same conservatism as the
        unreplicated path.
        """
        factor = self.cluster.replication_factor
        old_ring = self.cluster.ring
        changes = diff_replica_ownership(old_ring, new_ring, factor)
        relevant = [change for change in changes if target in change.new_owners]
        self.stats.ranges_moved += len(relevant)
        sources = sorted({owner for change in relevant for owner in change.old_owners})
        self.stats.migrations += 1
        held = self._key_inventory(sources)

        def designated(key: str) -> Optional[str]:
            for node in old_ring.successors(key, factor):
                if held.get(node) and key in held[node]:
                    return node
            return None

        confirmed: set = set()
        for source in sources:
            moved_keys = self._stream_entries(
                source,
                keep=lambda key, source=source: (
                    target in new_ring.successors(key, factor)
                    and designated(key) == source
                ),
                target=target,
                carry_watermark=True,
            )
            if moved_keys is not None:
                confirmed.update(moved_keys)
            # A None (source died mid-stream) cold-starts that slice on the
            # target, exactly as before; other replicas keep their copies.
        for source in sources:
            try:
                dropped = [
                    key
                    for key in self.cluster.node_keys(source)
                    if key in confirmed
                    and source not in new_ring.successors(key, factor)
                ]
                if dropped:
                    self.stats.entries_discarded += self.cluster.discard_keys(
                        source, dropped
                    )
            except _FAILURE_EXCEPTIONS:
                # Stale copies age out; routing never returns there.
                self.cluster.note_transport_failure(source)

    def _migrate_for_leave(self, source: str, new_ring: ConsistentHashRing) -> None:
        """Drain everything the departing ``source`` holds to the new owners."""
        factor = self.cluster.replication_factor
        self.stats.migrations += 1
        # The replica diff lists the same arcs; for a leave every entry of
        # the source moves, so the per-key route below is the whole story —
        # but the ranges still feed the counters for observability.
        self.stats.ranges_moved += len(
            diff_replica_ownership(self.cluster.ring, new_ring, factor)
        )
        self._stream_entries(source, keep=lambda key: True, target=None, route=new_ring)
        # No discard: the node is shut down right after routing switches.

    def _stream_entries(
        self, source, keep, target, route=None, carry_watermark=False
    ) -> Optional[set]:
        """Page entries out of ``source`` and install the kept ones.

        ``target`` fixes the destination (join); with ``route`` instead, each
        record goes to every member of its key's replica set under that ring
        (leave; one node when unreplicated).  ``carry_watermark`` advances
        each destination's invalidation watermark to the source's before
        installing, so still-valid records are usable at current timestamps
        on arrival — safe only for freshly provisioned join targets, which
        hold no entries predating their stream subscription (an established
        node whose watermark trails the source's has *missed* invalidations,
        and advancing it would let its own still-valid entries serve stale
        data).  Returns the set of moved keys, or None if the source became
        unreachable mid-stream.
        """
        try:
            source_watermark = self.cluster.watermark(source)
        except _FAILURE_EXCEPTIONS:
            self.stats.migration_sources_lost += 1
            self.cluster.note_transport_failure(source)
            return None
        factor = self.cluster.replication_factor
        watermarked: set = set()
        moved_keys: set = set()
        cursor: Optional[str] = None
        while True:
            try:
                records, cursor = self.cluster.extract_entries(
                    source, cursor, self.chunk_size
                )
            except _FAILURE_EXCEPTIONS:
                self.stats.migration_sources_lost += 1
                self.cluster.note_transport_failure(source)
                return None
            self.stats.migration_chunks += 1
            by_target: Dict[str, List[EntryRecord]] = {}
            for record in records:
                if not keep(record.key):
                    continue
                if target is not None:
                    destinations = [target]
                else:
                    destinations = [
                        node
                        for node in route.successors(record.key, factor)
                        if node != source
                    ]
                for destination in destinations:
                    by_target.setdefault(destination, []).append(record)
            for destination, batch in by_target.items():
                try:
                    if carry_watermark and destination not in watermarked:
                        transport = self.cluster.transports[destination]
                        if transport.watermark() < source_watermark:
                            transport.note_timestamp(source_watermark)
                        watermarked.add(destination)
                    self.cluster.install_entries(destination, batch)
                except _FAILURE_EXCEPTIONS:
                    # Destination died mid-install: its slice cold-starts.
                    # Record the failure (suspect marking) without evicting,
                    # so the staged ring stays valid; the first routed
                    # failure after the epoch switch completes the eviction.
                    self.stats.migration_install_failures += 1
                    self.cluster.note_transport_failure(destination)
                    continue
                self.stats.entries_migrated += len(batch)
                moved_keys.update(record.key for record in batch)
            if cursor is None:
                break
        self.stats.keys_migrated += len(moved_keys)
        return moved_keys
