"""Cluster membership: epochs, live key migration, failure-driven eviction.

The paper assumes a mostly static cache-server list; this module is what
turns the reproduction's cache tier into an *elastic* one.  A
:class:`ClusterMembership` coordinator sits next to a
:class:`repro.cache.cluster.CacheCluster` and versions its node set into
**epochs**: every join, leave, rejoin, or failure-driven eviction advances
the epoch and is recorded in the membership history.

**Live key migration.**  Consistent hashing already guarantees a membership
change remaps only ~1/n of the key space, but without migration that slice
cold-starts: every remapped key misses until traffic refills it.  A planned
change instead *streams* the affected entries to their new owner before the
ring is switched:

1. stage the change on a copy of the ring and diff ownership
   (:func:`repro.cache.hashring.diff_ownership`) to find the arcs — and
   therefore the source nodes — that change hands;
2. carry each source's invalidation watermark over to the target
   (``note_timestamp``), so migrated still-valid entries remain usable at
   current timestamps on arrival;
3. page through each source with ``extract_entries`` (bounded chunks, all
   versions of a key in one chunk), keep the records the new ring routes
   elsewhere, and ``install_entries`` them on their new owner — the
   install path reuses the server's put semantics, so the
   insert/invalidate race protection applies to in-flight records too;
4. atomically adopt the new ring, then ``discard_keys`` the moved keys from
   the sources (join) or shut the drained node down (leave).

Because every node subscribes to the same invalidation stream throughout,
invalidations published during a migration reach both the old and the new
owner; a record extracted before an invalidation and installed after it is
truncated on insert by the target's tag history.

**Failure handling.**  The cluster itself degrades operations against an
unreachable node to misses/no-ops and evicts the node from the ring after
``failure_threshold`` consecutive failures (see
:class:`repro.cache.cluster.CacheCluster`); the coordinator observes those
evictions through the cluster's ``on_node_evicted`` hook, records an epoch,
and allows the node (or a replacement with the same name) to *rejoin* later
via :meth:`join` — warmed by migration like any other joiner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# _FAILURE_EXCEPTIONS: the cluster's definition of "node unreachable";
# migration treats a vanished source/target the same way routing does.
from repro.cache.cluster import _FAILURE_EXCEPTIONS, CacheCluster
from repro.cache.entry import EntryRecord
from repro.cache.hashring import ConsistentHashRing, diff_ownership
from repro.cache.server import CacheServer

__all__ = ["ClusterMembership", "MembershipStats", "EpochRecord"]


@dataclass
class MembershipStats:
    """Counters kept by the membership coordinator."""

    joins: int = 0
    leaves: int = 0
    rejoins: int = 0
    #: Failure-driven ring evictions observed via the cluster hook.
    failure_evictions: int = 0
    #: Administrative :meth:`ClusterMembership.evict` calls (no migration).
    manual_evictions: int = 0
    #: Planned changes that ran with migration enabled.
    migrations: int = 0
    #: Hash-ring arcs that changed owner across all planned changes.
    ranges_moved: int = 0
    #: Entry versions shipped to a new owner.
    entries_migrated: int = 0
    #: Distinct keys shipped to a new owner.
    keys_migrated: int = 0
    #: extract_entries pages issued.
    migration_chunks: int = 0
    #: Entry versions dropped from sources after a successful handoff.
    entries_discarded: int = 0
    #: Sources that disappeared mid-migration (their slice cold-starts).
    migration_sources_lost: int = 0
    #: Install batches lost because the destination was unreachable.
    migration_install_failures: int = 0


@dataclass(frozen=True)
class EpochRecord:
    """One entry of the membership history."""

    epoch: int
    change: str  # "genesis" | "join" | "rejoin" | "leave" | "evict"
    node: Optional[str]
    #: Node set after the change took effect.
    members: Tuple[str, ...] = ()


@dataclass
class ClusterMembership:
    """Epoch-versioned membership coordinator for one cache cluster."""

    cluster: CacheCluster
    #: Keys per extract_entries page during migration.
    chunk_size: int = 128

    epoch: int = field(init=False, default=0)
    history: List[EpochRecord] = field(init=False, default_factory=list)
    stats: MembershipStats = field(init=False, default_factory=MembershipStats)

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        #: Names that departed (leave or eviction); joining one again is a
        #: rejoin rather than a first join.
        self._departed: set = set()
        self.history.append(
            EpochRecord(epoch=0, change="genesis", node=None, members=self._members())
        )
        self.cluster.on_node_evicted = self._on_failure_eviction

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def members(self) -> List[str]:
        """Current ring members."""
        return self.cluster.ring.nodes

    def _members(self) -> Tuple[str, ...]:
        return tuple(sorted(self.cluster.ring.nodes))

    def _advance(self, change: str, node: Optional[str]) -> None:
        self.epoch += 1
        self.history.append(
            EpochRecord(epoch=self.epoch, change=change, node=node, members=self._members())
        )

    # ------------------------------------------------------------------
    # Planned membership changes
    # ------------------------------------------------------------------
    def join(
        self,
        name: str,
        capacity_bytes: int = 64 * 1024 * 1024,
        weight: float = 1.0,
        migrate: bool = True,
    ) -> CacheServer:
        """Add a node, optionally warming it by live migration.

        The node is provisioned outside the ring (it already receives the
        invalidation stream), the entries its arcs will own are streamed
        onto it from their current owners, and only then does the ring —
        and with it live traffic — switch over.  With ``migrate=False``
        this is a cold join: remapped keys start over.
        """
        if name in self.cluster.ring:
            raise ValueError(f"cache node {name!r} is already a member")
        rejoining = name in self._departed
        server = self.cluster.provision_node(name, capacity_bytes)
        new_ring = self.cluster.ring.copy()
        new_ring.add_node(name, weight=weight)
        if migrate and len(new_ring) > 1:
            self._migrate_for_join(name, new_ring)
        self.cluster.adopt_ring(new_ring)
        if rejoining:
            self._departed.discard(name)
            self.stats.rejoins += 1
            self._advance("rejoin", name)
        else:
            self.stats.joins += 1
            self._advance("join", name)
        return server

    def leave(self, name: str, migrate: bool = True) -> None:
        """Remove a node, optionally draining its entries to the survivors.

        With migration, every entry the departing node holds is streamed to
        the node that owns its key under the new ring before routing
        switches and the node shuts down; the departing slice stays warm.
        """
        if name not in self.cluster.ring:
            raise KeyError(name)
        new_ring = self.cluster.ring.copy()
        new_ring.remove_node(name)
        if migrate and len(new_ring) > 0:
            self._migrate_for_leave(name, new_ring)
        self.cluster.adopt_ring(new_ring)
        self.cluster.remove_node(name)  # ring removal already done; detaches node
        self._departed.add(name)
        self.stats.leaves += 1
        self._advance("leave", name)

    def evict(self, name: str) -> None:
        """Forcibly drop a (presumed dead) node: no migration, epoch bump.

        This is the manual form of what the cluster does automatically after
        repeated transport failures; the node's slice of the key space
        cold-starts on the survivors.
        """
        if name not in self.cluster.ring:
            raise KeyError(name)
        new_ring = self.cluster.ring.copy()
        new_ring.remove_node(name)
        self.cluster.adopt_ring(new_ring)
        self.cluster.remove_node(name)
        self.stats.manual_evictions += 1
        self._record_eviction(name)

    def _on_failure_eviction(self, name: str) -> None:
        """Cluster hook: a node crossed the failure threshold and was evicted."""
        self.stats.failure_evictions += 1
        self._record_eviction(name)

    def _record_eviction(self, name: str) -> None:
        self._departed.add(name)
        self._advance("evict", name)

    # ------------------------------------------------------------------
    # Migration internals
    # ------------------------------------------------------------------
    def _migrate_for_join(self, target: str, new_ring: ConsistentHashRing) -> None:
        """Stream the arcs the joining ``target`` gains from their owners."""
        changes = diff_ownership(self.cluster.ring, new_ring)
        self.stats.ranges_moved += len(changes)
        sources = sorted({change.old_owner for change in changes if change.new_owner == target})
        self.stats.migrations += 1
        for source in sources:
            moved_keys = self._stream_entries(
                source, keep=lambda key: new_ring.node_for(key) == target, target=target
            )
            if moved_keys is None:
                continue  # source died; its slice cold-starts on the target
            if moved_keys:
                try:
                    self.stats.entries_discarded += self.cluster.discard_keys(
                        source, sorted(moved_keys)
                    )
                except _FAILURE_EXCEPTIONS:
                    # Stale copies age out; routing never returns there.
                    self.cluster.note_transport_failure(source)

    def _migrate_for_leave(self, source: str, new_ring: ConsistentHashRing) -> None:
        """Drain everything the departing ``source`` holds to the new owners."""
        self.stats.migrations += 1
        # diff_ownership would list the same arcs; for a leave every entry of
        # the source moves, so the per-key route below is the whole story —
        # but the ranges still feed the counters for observability.
        self.stats.ranges_moved += len(diff_ownership(self.cluster.ring, new_ring))
        self._stream_entries(source, keep=lambda key: True, target=None, route=new_ring)
        # No discard: the node is shut down right after routing switches.

    def _stream_entries(self, source, keep, target, route=None) -> Optional[set]:
        """Page entries out of ``source`` and install the kept ones.

        ``target`` fixes the destination (join); with ``route`` instead, each
        record goes to the node owning its key under that ring (leave).
        Returns the set of moved keys, or None if the source became
        unreachable mid-stream.
        """
        try:
            source_watermark = self.cluster.watermark(source)
        except _FAILURE_EXCEPTIONS:
            self.stats.migration_sources_lost += 1
            self.cluster.note_transport_failure(source)
            return None
        watermarked: set = set()
        moved_keys: set = set()
        cursor: Optional[str] = None
        while True:
            try:
                records, cursor = self.cluster.extract_entries(
                    source, cursor, self.chunk_size
                )
            except _FAILURE_EXCEPTIONS:
                self.stats.migration_sources_lost += 1
                self.cluster.note_transport_failure(source)
                return None
            self.stats.migration_chunks += 1
            by_target: Dict[str, List[EntryRecord]] = {}
            for record in records:
                if not keep(record.key):
                    continue
                destination = target if target is not None else route.node_for(record.key)
                by_target.setdefault(destination, []).append(record)
            for destination, batch in by_target.items():
                try:
                    if destination not in watermarked:
                        # Advance the destination's invalidation watermark to
                        # the source's before installing, so still-valid
                        # records are usable at current timestamps on arrival.
                        transport = self.cluster.transports[destination]
                        if transport.watermark() < source_watermark:
                            transport.note_timestamp(source_watermark)
                        watermarked.add(destination)
                    self.cluster.install_entries(destination, batch)
                except _FAILURE_EXCEPTIONS:
                    # Destination died mid-install: its slice cold-starts.
                    # Record the failure (suspect marking) without evicting,
                    # so the staged ring stays valid; the first routed
                    # failure after the epoch switch completes the eviction.
                    self.stats.migration_install_failures += 1
                    self.cluster.note_transport_failure(destination)
                    continue
                self.stats.entries_migrated += len(batch)
                moved_keys.update(record.key for record in batch)
            if cursor is None:
                break
        self.stats.keys_migrated += len(moved_keys)
        return moved_keys
