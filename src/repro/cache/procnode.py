"""Out-of-process cache nodes: one OS process (and one core) per node.

Thread-hosted "networked" nodes (:class:`repro.cache.netserver.CacheServerProcess`)
share the coordinator's interpreter, so N nodes on one machine share one
GIL — the binary codec and mux work of the fast wire stack is capped by a
single interpreter's CPU.  :class:`CacheNodeHost` breaks that cap: it
spawns the node as its **own OS process** running the same event-loop
serving engine, so a machine scales with cores instead of threads.

Design notes:

* **Spawn-safe entry point.**  :func:`_node_main` is a module-level
  function whose arguments are all picklable (node name, bind address,
  capacity, wire-codec/coalescing knobs, optional CPU to pin), so the
  host works under every multiprocessing start method.  ``fork`` is
  preferred when available — a forked node is serving in single-digit
  milliseconds, where ``spawn`` pays a full interpreter start.
* **Readiness handshake over a pipe.**  The child builds its
  :class:`~repro.cache.server.CacheServer` +
  :class:`~repro.cache.netserver.CacheServerProcess` and reports
  ``("ready", address)`` — or ``("error", message)`` — before the parent's
  constructor returns, so a node that fails to bind or crashes on import
  surfaces as a constructor exception, never a hung dial.
* **Invalidation delivery.**  The in-process
  :class:`~repro.comm.multicast.InvalidationBus` cannot call into another
  address space; out-of-process nodes receive the invalidation stream
  over the wire instead (the ``invalidate_tags`` op — see
  :meth:`repro.cache.netserver.SocketTransport.process_invalidations`).
* **Supervision.**  The parent end exposes ``running`` / ``exitcode``;
  a dead child makes every RPC fail with
  :class:`~repro.cache.netserver.CacheNodeUnreachableError`, which feeds
  the cluster's existing suspect → evict path.  :meth:`shutdown`
  escalates graceful pipe shutdown → ``terminate()`` → ``kill()`` and
  always reaps the child — no zombies, and the node's port dies with the
  process.  :meth:`kill` (SIGKILL, no warning) exists for crash tests.
* **CPU affinity** is an opt-in knob (``cpu_affinity=<cpu index>``),
  applied by the child via ``os.sched_setaffinity`` where the platform
  has it; one node per core is the intended deployment shape.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Optional, Tuple

from repro.cache.netserver import (
    DEFAULT_MAX_QUEUED_PER_CONNECTION,
    DEFAULT_WORKER_THREADS,
    CacheNodeUnreachableError,
)

__all__ = ["CacheNodeHost", "preferred_start_method"]

#: How long the parent waits for the child's readiness message before
#: declaring the node unreachable and reaping it.
DEFAULT_READY_TIMEOUT_SECONDS = 30.0


def preferred_start_method() -> str:
    """The multiprocessing start method node hosts use by default.

    ``fork`` where the platform offers it (fast enough to start nodes in
    tests by the dozen), otherwise ``spawn``.  The entry point is
    spawn-safe either way.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _node_main(
    parent_conn,
    conn,
    name: str,
    host: str,
    port: int,
    capacity_bytes: int,
    simulated_latency_seconds: float,
    worker_threads: int,
    max_queued_per_connection: int,
    wire_codec: Optional[str],
    write_coalescing: bool,
    cpu_affinity: Optional[int],
) -> None:
    """Child entry point: serve one cache node until told to stop.

    Module-level and fully picklable-argument so it survives ``spawn``.
    The main thread parks on the control pipe; the serving engine runs on
    the event-loop thread.  EOF on the pipe (the parent died without
    calling :meth:`CacheNodeHost.shutdown`) counts as a shutdown order, so
    an orphaned node exits instead of squatting on its port forever.
    """
    # Under fork the child inherits the parent's end of the pipe too; close
    # it so EOF detection works (otherwise this process itself holds the
    # write end open and recv() below could never see EOF).
    if parent_conn is not None:
        try:
            parent_conn.close()
        except OSError:
            pass
    if cpu_affinity is not None and hasattr(os, "sched_setaffinity"):
        try:
            os.sched_setaffinity(0, {cpu_affinity})
        except OSError:
            pass  # affinity is advisory: an invalid CPU must not kill the node
    try:
        # Imported here, not at module top: the child needs them, and under
        # spawn the import cost lands in the child where it belongs.
        from repro.cache.netserver import CacheServerProcess
        from repro.cache.server import CacheServer

        server = CacheServer(name=name, capacity_bytes=capacity_bytes)
        process = CacheServerProcess(
            server,
            host=host,
            port=port,
            simulated_latency_seconds=simulated_latency_seconds,
            style="eventloop",
            worker_threads=worker_threads,
            max_queued_per_connection=max_queued_per_connection,
            wire_codec=wire_codec,
            write_coalescing=write_coalescing,
        )
    except BaseException as exc:  # noqa: BLE001 - reported over the pipe
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        sys.exit(1)
    try:
        conn.send(("ready", process.address))
        try:
            conn.recv()  # blocks until the shutdown order (or parent EOF)
        except (EOFError, OSError):
            pass  # parent died: treat as shutdown
    finally:
        process.shutdown()
        try:
            conn.close()
        except OSError:
            pass
    sys.exit(0)


class CacheNodeHost:
    """One cache node hosted in its own OS process.

    Duck-types the lifecycle surface of
    :class:`~repro.cache.netserver.CacheServerProcess` that the cluster
    uses (``address``, ``running``, ``shutdown()``, context manager), plus
    process-only surface: ``pid``, ``exitcode``, and :meth:`kill` for
    crash testing.  The wrapped :class:`CacheServer` lives in the child,
    so :attr:`server` is ``None`` — callers introspect the node over the
    wire (``stats``/``keys``/...) like any remote deployment would.
    """

    #: Marks this host as process-styled for diagnostics/labels.
    style = "process"

    #: No in-process server object to reach into (it lives in the child).
    server = None

    def __init__(
        self,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity_bytes: int = 64 * 1024 * 1024,
        simulated_latency_seconds: float = 0.0,
        worker_threads: int = DEFAULT_WORKER_THREADS,
        max_queued_per_connection: int = DEFAULT_MAX_QUEUED_PER_CONNECTION,
        wire_codec: Optional[str] = None,
        write_coalescing: bool = True,
        cpu_affinity: Optional[int] = None,
        start_method: Optional[str] = None,
        ready_timeout_seconds: float = DEFAULT_READY_TIMEOUT_SECONDS,
    ) -> None:
        self.name = name
        self.wire_codec = wire_codec
        self.cpu_affinity = cpu_affinity
        context = multiprocessing.get_context(start_method or preferred_start_method())
        self._conn, child_conn = context.Pipe()
        # Under spawn the parent's end is not inherited, so the child gets
        # None for it; under fork it must close its inherited copy.
        inherited_parent_end = self._conn if context.get_start_method() == "fork" else None
        self._proc = context.Process(
            target=_node_main,
            args=(
                inherited_parent_end,
                child_conn,
                name,
                host,
                port,
                capacity_bytes,
                simulated_latency_seconds,
                worker_threads,
                max_queued_per_connection,
                wire_codec,
                write_coalescing,
                cpu_affinity,
            ),
            name=f"cache-node-{name}",
            daemon=True,  # a crashed coordinator must not leave nodes behind
        )
        self._shutdown = False
        self._final_exitcode: Optional[int] = None
        self._proc.start()
        self._pid = self._proc.pid
        child_conn.close()  # the child's end lives in the child now
        self.address: Tuple[str, int] = self._await_ready(ready_timeout_seconds)

    def _await_ready(self, timeout: float) -> Tuple[str, int]:
        try:
            if not self._conn.poll(timeout):
                raise CacheNodeUnreachableError(
                    f"cache node process {self.name!r} (pid {self._proc.pid}) "
                    f"sent no readiness handshake within {timeout}s"
                )
            message = self._conn.recv()
        except CacheNodeUnreachableError:
            self._abort()
            raise
        except (EOFError, OSError) as exc:
            self._abort()
            raise CacheNodeUnreachableError(
                f"cache node process {self.name!r} died before becoming ready "
                f"(exit code {self.exitcode}): {exc}"
            ) from exc
        if message[0] != "ready":
            self._abort()
            raise CacheNodeUnreachableError(
                f"cache node process {self.name!r} failed to start: {message[1]}"
            )
        return tuple(message[1])

    def _abort(self) -> None:
        """Startup failed: make sure the child is dead, then reap it."""
        self._shutdown = True
        self._proc.join(timeout=1.0)  # a failed child normally exits itself
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=5.0)
        self._reap()

    # ------------------------------------------------------------------
    @property
    def pid(self) -> Optional[int]:
        return self._pid

    @property
    def exitcode(self) -> Optional[int]:
        """The child's exit code (None while it is still running).

        0 is a graceful shutdown; negative N means signal N (e.g. -9 after
        :meth:`kill`).  Still readable after :meth:`shutdown` reaps the
        process object.
        """
        if self._final_exitcode is not None:
            return self._final_exitcode
        try:
            return self._proc.exitcode
        except ValueError:  # pragma: no cover - reaped without a code
            return self._final_exitcode

    @property
    def running(self) -> bool:
        """True while the child process is alive and not shut down."""
        if self._shutdown:
            return False
        try:
            return self._proc.is_alive()
        except ValueError:  # pragma: no cover - already reaped
            return False

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """SIGKILL the child (crash injection for lifecycle tests).

        Does *not* mark the host as shut down: the supervision path is
        expected to notice the dead node (RPC failures → suspect → evict)
        and :meth:`shutdown` still reaps the corpse afterwards.
        """
        self._proc.kill()
        self._proc.join(timeout=5.0)

    def shutdown(self) -> None:
        """Stop and reap the node; idempotent.

        Escalation ladder: a shutdown order over the pipe (the child exits
        gracefully, closing its listener), then ``terminate()`` (SIGTERM),
        then ``kill()`` (SIGKILL) — each with a bounded join, so this
        never hangs and never leaves a zombie or a bound port behind.
        """
        if self._shutdown:
            return
        self._shutdown = True
        try:
            self._conn.send(("shutdown",))
        except (OSError, ValueError, BrokenPipeError):
            pass  # child already dead (or pipe torn down): escalate below
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=2.0)
        if self._proc.is_alive():  # pragma: no cover - SIGTERM ignored
            self._proc.kill()
            self._proc.join(timeout=2.0)
        self._reap()

    def _reap(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass
        if self._proc.is_alive():  # pragma: no cover - defensive
            return
        self._proc.join(timeout=0.0)
        self._final_exitcode = self._proc.exitcode
        try:
            self._proc.close()  # releases the Process object's resources
        except ValueError:  # pragma: no cover - still alive (defensive above)
            pass

    def __enter__(self) -> "CacheNodeHost":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.address
        state = "up" if self.running else f"exit={self.exitcode}"
        return f"CacheNodeHost({self.name!r} @ {host}:{port}, pid={self.pid}, {state})"
