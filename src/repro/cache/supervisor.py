"""Self-healing supervision of cache nodes: detect, respawn, re-warm.

A crashed cache node used to be *only* evicted: the ring healed around the
corpse (replicas served its keys, repair restored the replication factor),
but the cluster stayed one node short until an operator called
``add_cache_node``.  :class:`NodeSupervisor` closes that loop.  It watches
every registered node and drives a small per-node state machine::

    serving ──death──▶ backoff ──respawn──▶ rejoining ──▶ serving
                         │  ▲                  (re-warm trickles in
                         │  └── spawn failed       under the budget)
                         ▼
                      gave_up   (circuit breaker: too many restarts
                                 inside the window — permanent eviction)

**Detection** is pull-based, from :meth:`pump` (called by the deployment's
``housekeeping()`` — no hidden threads): a process-hosted node whose child
has an exit code is dead even if routing has not noticed yet (it is evicted
on the spot, through the membership coordinator so the epoch history and
auto-repair fire exactly as for a routed eviction); a node that is simply
*gone* from the cluster was evicted by routing failures or a gossip death
confirmation, and is picked up for respawn the same way.  Suspect nodes get
a cheap wire probe so a wedged-but-alive child is either cleared or pushed
toward the failure threshold without waiting for foreground traffic.

**Respawn** waits out an exponential backoff with jitter (on the injected
clock, so tests are deterministic), then rejoins through
:meth:`repro.cache.membership.ClusterMembership.rejoin`: the node enters the
ring cold and its working set streams back as a budgeted
:class:`~repro.cache.maintenance.ChunkedJob` on the maintenance plane, so
recovery traffic cannot spike foreground p99.  When gossip runs, the rejoin
is registered with the runner — the incarnation bump above the dead
tombstone (PR-8 semantics) is what lets the reborn node's alive records
propagate instead of losing to the tombstone.

**Circuit breaker**: a node that keeps crashing is not worth respawning
forever.  More than ``max_restarts`` successful respawns inside
``restart_window_seconds`` trips the breaker: the node falls back to the
pre-supervisor behaviour — permanent eviction — and stays down until an
operator intervenes (:meth:`reset`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.cluster import _FAILURE_EXCEPTIONS, CacheCluster
from repro.cache.membership import ClusterMembership
from repro.clock import Clock, SystemClock

__all__ = ["NodeSupervisor", "SupervisorStats", "NODE_STATES"]

#: The per-node states of the supervision state machine.
NODE_STATES = ("serving", "backoff", "gave_up")


@dataclass
class SupervisorStats:
    """Counters kept by one :class:`NodeSupervisor`."""

    #: Node deaths noticed (dead child process, or an eviction observed).
    deaths_detected: int = 0
    #: Dead children the supervisor evicted itself (exit code seen before
    #: routing or gossip got there).
    direct_evictions: int = 0
    #: Successful respawns (node provisioned, rejoined, re-warm queued).
    respawns: int = 0
    #: Respawn attempts that failed to bring a node up (retried later).
    respawn_failures: int = 0
    #: Budgeted re-warm jobs queued (or drained, without a plane).
    rewarm_jobs: int = 0
    #: Health probes sent to suspect nodes.
    probes: int = 0
    #: Probes that failed (counted toward the routing failure threshold).
    probe_failures: int = 0
    #: Circuit-breaker trips: nodes given up on after crash-looping.
    circuit_breaker_trips: int = 0


@dataclass
class _NodeRecord:
    """What the supervisor knows about one registered node."""

    name: str
    capacity_bytes: int
    weight: float = 1.0
    state: str = "serving"
    #: Consecutive failed respawn attempts (drives the backoff ladder
    #: together with the recent-restart count).
    failed_attempts: int = 0
    #: Earliest clock time of the next respawn attempt (backoff state).
    next_attempt_at: float = 0.0
    #: Clock times of successful respawns (circuit-breaker window).
    restart_times: List[float] = field(default_factory=list)


class NodeSupervisor:
    """Crash-respawn supervisor for one cache cluster.

    Built by :class:`repro.deployment.TxCacheDeployment` (knob:
    ``supervision``) and pumped from its ``housekeeping()``; usable
    standalone for tests.  All timing runs on the injected clock.
    """

    def __init__(
        self,
        cluster: CacheCluster,
        membership: ClusterMembership,
        gossip_runner=None,
        clock: Optional[Clock] = None,
        backoff_base_seconds: float = 0.1,
        backoff_multiplier: float = 2.0,
        backoff_max_seconds: float = 5.0,
        jitter_fraction: float = 0.5,
        max_restarts: int = 5,
        restart_window_seconds: float = 60.0,
        probe_suspects: bool = True,
        seed: int = 0,
    ) -> None:
        if max_restarts < 1:
            raise ValueError("max_restarts must be positive")
        self.cluster = cluster
        self.membership = membership
        self.gossip_runner = gossip_runner
        self.clock = clock or SystemClock()
        self.backoff_base_seconds = backoff_base_seconds
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max_seconds = backoff_max_seconds
        self.jitter_fraction = jitter_fraction
        self.max_restarts = max_restarts
        self.restart_window_seconds = restart_window_seconds
        self.probe_suspects = probe_suspects
        self.stats = SupervisorStats()
        self._rng = random.Random(seed)
        self._nodes: Dict[str, _NodeRecord] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, capacity_bytes: int, weight: float = 1.0) -> None:
        """Start supervising ``name`` (idempotent; spec is remembered for
        respawn — a crashed node comes back at its registered capacity)."""
        record = self._nodes.get(name)
        if record is None:
            self._nodes[name] = _NodeRecord(
                name=name, capacity_bytes=capacity_bytes, weight=weight
            )
        else:
            record.capacity_bytes = capacity_bytes
            record.weight = weight

    def forget(self, name: str) -> None:
        """Stop supervising ``name`` (planned removals must not respawn)."""
        self._nodes.pop(name, None)

    def reset(self, name: str) -> None:
        """Operator override: clear the breaker and re-arm supervision."""
        record = self._nodes.get(name)
        if record is not None:
            record.state = (
                "serving" if name in self.cluster.transports else "backoff"
            )
            record.failed_attempts = 0
            record.restart_times.clear()
            record.next_attempt_at = self.clock.now()

    @property
    def states(self) -> Dict[str, str]:
        """Current supervision state per registered node."""
        return {name: record.state for name, record in self._nodes.items()}

    # ------------------------------------------------------------------
    # The pump (one pass of the state machine; no threads)
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Run one supervision pass; returns the number of respawns done."""
        now = self.clock.now()
        respawned = 0
        for record in list(self._nodes.values()):
            if record.state == "gave_up":
                continue
            present = record.name in self.cluster.transports
            if record.state == "serving":
                if present:
                    self._check_live_node(record)
                    # _check_live_node may have moved it to backoff.
                    if record.state == "serving":
                        continue
                else:
                    # Evicted behind our back (routing threshold or a gossip
                    # death confirmation): same death, different detector.
                    self._mark_dead(record, now)
            if record.state == "backoff" and now >= record.next_attempt_at:
                if self._breaker_tripped(record, now):
                    continue
                respawned += self._attempt_respawn(record, now)
        return respawned

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _check_live_node(self, record: _NodeRecord) -> None:
        """Death checks for a node still in the ring."""
        host = self.cluster.processes.get(record.name)
        exitcode = getattr(host, "exitcode", None)
        if host is not None and exitcode is not None:
            # The child is a corpse even though routing still points at it:
            # evict now (epoch + auto-repair via the membership coordinator)
            # instead of waiting for foreground traffic to trip over it.
            self.stats.direct_evictions += 1
            try:
                self.membership.evict(record.name)
            except KeyError:
                pass  # raced with a routed eviction; same outcome
            self._mark_dead(record, self.clock.now())
            return
        if self.probe_suspects and record.name in self.cluster.suspect_nodes:
            # A cheap idempotent probe: either clears the suspicion via the
            # routed success path or pushes the node toward the threshold
            # without waiting for more foreground failures.
            self.stats.probes += 1
            transport = self.cluster.transports.get(record.name)
            if transport is None:
                return
            try:
                transport.watermark()
            except _FAILURE_EXCEPTIONS:
                self.stats.probe_failures += 1
                self.cluster._note_failure(record.name)
                if record.name not in self.cluster.transports:
                    self._mark_dead(record, self.clock.now())
            else:
                self.cluster._note_success(record.name)

    def _mark_dead(self, record: _NodeRecord, now: float) -> None:
        self.stats.deaths_detected += 1
        record.state = "backoff"
        record.failed_attempts = 0
        record.next_attempt_at = now + self._backoff_delay(record, now)

    # ------------------------------------------------------------------
    # Respawn
    # ------------------------------------------------------------------
    def _backoff_delay(self, record: _NodeRecord, now: float) -> float:
        """Exponential backoff with jitter; the rung is the worse of the
        crash-loop depth (recent restarts) and failed spawn attempts."""
        self._prune_window(record, now)
        rung = max(len(record.restart_times), record.failed_attempts)
        delay = min(
            self.backoff_base_seconds * (self.backoff_multiplier**rung),
            self.backoff_max_seconds,
        )
        if self.jitter_fraction > 0:
            delay *= 1.0 - self.jitter_fraction * self._rng.random()
        return delay

    def _prune_window(self, record: _NodeRecord, now: float) -> None:
        cutoff = now - self.restart_window_seconds
        record.restart_times = [t for t in record.restart_times if t > cutoff]

    def _breaker_tripped(self, record: _NodeRecord, now: float) -> bool:
        self._prune_window(record, now)
        if len(record.restart_times) >= self.max_restarts:
            record.state = "gave_up"
            self.stats.circuit_breaker_trips += 1
            return True
        return False

    def _attempt_respawn(self, record: _NodeRecord, now: float) -> int:
        name = record.name
        if name in self.cluster.transports:
            # Someone else (an operator add_cache_node) brought it back.
            record.state = "serving"
            record.failed_attempts = 0
            return 0
        try:
            self.membership.rejoin(
                name, capacity_bytes=record.capacity_bytes, weight=record.weight
            )
        except Exception:
            # Spawn failed (port, fork, handshake…): climb the backoff
            # ladder and try again later.  Never let a bad spawn take the
            # housekeeping pass down with it.
            self.stats.respawn_failures += 1
            record.failed_attempts += 1
            record.next_attempt_at = now + self._backoff_delay(record, now)
            return 0
        if self.gossip_runner is not None:
            # Incarnation bump above the tombstone: without it the reborn
            # node's alive records lose to the circulating dead record and
            # gossip would re-evict it immediately.
            self.gossip_runner.register(name)
        record.state = "serving"
        record.failed_attempts = 0
        record.restart_times.append(now)
        self.stats.respawns += 1
        self.stats.rewarm_jobs += 1
        return 1
