"""The throttled background maintenance plane of the cache tier.

Migration and anti-entropy repair used to run *synchronously* at the epoch
boundary: the coordinator swept whole nodes (``keys()`` inventories,
whole-store extract pages) while foreground traffic waited on the same
servers.  This module turns those sweeps into **resumable chunked jobs**
drained by a pump under a **per-interval op/byte budget**, so maintenance
interleaves with live traffic at a bounded rate instead of monopolizing the
tier right when it is degraded.

* :class:`MaintenanceBudget` — a windowed allowance on an injected clock:
  every ``interval_seconds`` the budget refills to ``ops_per_interval``
  RPCs and ``bytes_per_interval`` payload bytes.  A chunk may start only
  while both allowances are positive; its actual cost is charged after it
  runs (chunk sizes are estimates until the page arrives), so a single
  chunk can overdraw the window — the *next* chunk then waits for the
  refill.  Totals (``consumed_ops``/``consumed_bytes``) are exact sums of
  the per-chunk charges, which the budget-accounting tests pin.
* :class:`ChunkedJob` — wraps a generator that yields ``(ops, bytes)`` per
  chunk and returns its result; each :meth:`ChunkedJob.step` runs exactly
  one chunk, so a job is resumable at chunk granularity.
* :class:`MaintenancePlane` — a FIFO of jobs and the pump.  ``pump()`` runs
  chunks while the budget allows, stopping (and counting a deferral) the
  moment it does not; callers re-pump from housekeeping or a timer.  A
  chunk that raises fails its job without poisoning the queue.

The plane deliberately owns no thread: the deployment's housekeeping (or a
test, or the simulator's virtual time) decides when to pump, which keeps
chunk scheduling deterministic and the foreground path free of hidden
background threads.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Generator, Optional, Tuple

from repro.clock import Clock, SystemClock

__all__ = [
    "MaintenanceBudget",
    "MaintenancePlane",
    "MaintenanceStats",
    "ChunkedJob",
]


@dataclass
class MaintenanceStats:
    """What the plane has done, summed exactly across chunks."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    chunks_run: int = 0
    #: Maintenance RPCs charged (sum of every chunk's op count).
    ops_charged: int = 0
    #: Approximate payload bytes charged (sum of every chunk's estimate).
    bytes_charged: int = 0
    #: Pumps cut short because the budget window was exhausted.
    budget_deferrals: int = 0


class MaintenanceBudget:
    """Op/byte allowance per clock interval for background maintenance."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        ops_per_interval: int = 64,
        bytes_per_interval: int = 1 << 20,
        interval_seconds: float = 1.0,
    ) -> None:
        if ops_per_interval < 1:
            raise ValueError("ops_per_interval must be positive")
        if bytes_per_interval < 1:
            raise ValueError("bytes_per_interval must be positive")
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.clock = clock if clock is not None else SystemClock()
        self.ops_per_interval = ops_per_interval
        self.bytes_per_interval = bytes_per_interval
        self.interval_seconds = interval_seconds
        self.consumed_ops = 0
        self.consumed_bytes = 0
        #: Refills performed (the first window counts as 1).
        self.windows = 1
        self._window_start = self.clock.now()
        self._ops_left = ops_per_interval
        self._bytes_left = bytes_per_interval
        self._lock = threading.Lock()

    def allows(self) -> bool:
        """May another chunk start in the current window?"""
        with self._lock:
            self._refill()
            return self._ops_left > 0 and self._bytes_left > 0

    def charge(self, ops: int, nbytes: int) -> None:
        """Debit one chunk's actual cost (post-hoc; may overdraw the window)."""
        with self._lock:
            self._ops_left -= ops
            self._bytes_left -= nbytes
            self.consumed_ops += ops
            self.consumed_bytes += nbytes

    def _refill(self) -> None:
        now = self.clock.now()
        if now - self._window_start >= self.interval_seconds:
            self._window_start = now
            self._ops_left = self.ops_per_interval
            self._bytes_left = self.bytes_per_interval
            self.windows += 1


class ChunkedJob:
    """A resumable maintenance job: one generator, one chunk per step.

    The generator yields ``(ops, approx_bytes)`` after each unit of work
    (one RPC page, one digest round trip, ...) and may ``return`` a result;
    :attr:`result` holds it once :meth:`step` reports completion.
    """

    def __init__(self, label: str, chunks: Generator[Tuple[int, int], None, object]) -> None:
        self.label = label
        self.result: object = None
        self._chunks = chunks

    def step(self) -> Tuple[bool, int, int]:
        """Run one chunk; returns ``(done, ops, approx_bytes)``."""
        try:
            ops, nbytes = next(self._chunks)
        except StopIteration as stop:
            self.result = stop.value
            return True, 0, 0
        return False, int(ops), int(nbytes)

    def drain(self) -> object:
        """Run every remaining chunk back-to-back (the synchronous path)."""
        while not self.step()[0]:
            pass
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChunkedJob({self.label!r})"


@dataclass
class MaintenancePlane:
    """FIFO of chunked jobs drained by :meth:`pump` under the budget."""

    budget: Optional[MaintenanceBudget] = None
    stats: MaintenanceStats = field(default_factory=MaintenanceStats)

    def __post_init__(self) -> None:
        self._jobs: Deque[ChunkedJob] = deque()
        self._lock = threading.RLock()

    @property
    def idle(self) -> bool:
        with self._lock:
            return not self._jobs

    @property
    def pending_jobs(self) -> int:
        with self._lock:
            return len(self._jobs)

    def submit(self, job: ChunkedJob) -> ChunkedJob:
        with self._lock:
            self._jobs.append(job)
            self.stats.jobs_submitted += 1
        return job

    def pump(self, max_chunks: Optional[int] = None) -> int:
        """Run queued chunks while the budget window allows; returns chunks run.

        Stops at the first exhausted window (counted as a deferral — call
        again after the interval), after ``max_chunks`` chunks, or when the
        queue drains.  One pump call never blocks foreground traffic beyond
        the chunk currently in flight: chunk boundaries are the preemption
        points of the whole maintenance plane.
        """
        ran = 0
        with self._lock:
            while self._jobs:
                if max_chunks is not None and ran >= max_chunks:
                    break
                if self.budget is not None and not self.budget.allows():
                    self.stats.budget_deferrals += 1
                    break
                job = self._jobs[0]
                try:
                    done, ops, nbytes = job.step()
                except Exception:  # noqa: BLE001 - a bad job must not wedge the plane
                    self._jobs.popleft()
                    self.stats.jobs_failed += 1
                    continue
                ran += 1
                self.stats.chunks_run += 1
                self.stats.ops_charged += ops
                self.stats.bytes_charged += nbytes
                if self.budget is not None:
                    self.budget.charge(ops, nbytes)
                if done:
                    self._jobs.popleft()
                    self.stats.jobs_completed += 1
        return ran

    def drain(self) -> int:
        """Pump ignoring the budget until every job completes (teardown aid)."""
        ran = 0
        with self._lock:
            while self._jobs:
                job = self._jobs[0]
                try:
                    done, ops, nbytes = job.step()
                except Exception:  # noqa: BLE001
                    self._jobs.popleft()
                    self.stats.jobs_failed += 1
                    continue
                ran += 1
                self.stats.chunks_run += 1
                self.stats.ops_charged += ops
                self.stats.bytes_charged += nbytes
                if self.budget is not None:
                    self.budget.charge(ops, nbytes)
                if done:
                    self._jobs.popleft()
                    self.stats.jobs_completed += 1
        return ran
