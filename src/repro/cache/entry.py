"""Cache entries and lookup results."""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Optional, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

__all__ = ["CacheEntry", "EntryRecord", "LookupRequest", "LookupResult", "estimate_size"]

# Binary wire layouts (see repro.comm.wire).  Values and tags are encoded by
# the codec callbacks the wire module passes in, which keeps this module
# free of any dependency on the codec's tag table.  Keys carry a one-byte
# length (255 escapes to a u32 for longer keys) and records pack all their
# interval bounds with a single struct call — both measured wins over the
# straightforward one-struct-per-field layout.
_KEYLEN = struct.Struct("<I")
_LO_HI_PROBE = struct.Struct("<qqB")
_COUNT = struct.Struct("<I")
#: Interval bounds of a LookupResult, all packed at once; indexed by count.
_QS = (
    None,
    struct.Struct("<q"),
    struct.Struct("<qq"),
    struct.Struct("<qqq"),
    struct.Struct("<qqqq"),
)
_unpack_keylen = _KEYLEN.unpack_from
_unpack_lo_hi_probe = _LO_HI_PROBE.unpack_from
_QS_PACK = (None,) + tuple(s.pack for s in _QS[1:])
_QS_UNPACK = (None,) + tuple(s.unpack_from for s in _QS[1:])

# LookupResult flag bits (one byte on the wire).  The interval bits say
# which bounds are present in the packed-bounds block: a bounded interval
# contributes (lo, hi), an unbounded one just lo.
_F_HIT = 1
_F_EVER_STORED = 2
_F_FRESH_EXISTS = 4
_F_DEGRADED = 8
_F_HAS_INTERVAL = 16
_F_INTERVAL_UNBOUNDED = 32
_F_HAS_RAW = 64
_F_RAW_UNBOUNDED = 128

_new = object.__new__
_set = object.__setattr__
_EMPTY_TAGS: FrozenSet[InvalidationTag] = frozenset()

#: Fixed per-entry bookkeeping overhead charged against the byte budget, in
#: addition to the serialized size of the key and value.
ENTRY_OVERHEAD_BYTES = 64


def estimate_size(key: str, value: Any) -> int:
    """Approximate memory footprint of a cache entry in bytes.

    The cache's byte budget models the RAM of a memcached-style server, so
    the estimate is based on the serialized size of the value (which is also
    what a networked cache would store) plus the key and a fixed overhead.
    """
    try:
        value_bytes = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        value_bytes = len(repr(value).encode())
    return len(key.encode()) + value_bytes + ENTRY_OVERHEAD_BYTES


@dataclass(**DATACLASS_SLOTS)
class CacheEntry:
    """One version of one cached key.

    Attributes:
        key: cache key (derived from the cacheable function and arguments).
        value: the cached result.
        interval: validity interval of the value.  An unbounded interval
            means the value was current when inserted and the entry is
            *still-valid*: invalidation messages may later truncate it.
        tags: invalidation tags (only meaningful for still-valid entries).
        size: charged size in bytes.
        last_access: wall-clock time of the most recent hit (LRU ordering).
    """

    key: str
    value: Any
    interval: Interval
    tags: FrozenSet[InvalidationTag] = frozenset()
    size: int = 0
    last_access: float = 0.0

    @property
    def still_valid(self) -> bool:
        """True while no invalidation has truncated the entry."""
        return self.interval.unbounded

    def effective_interval(self, last_invalidation_ts: int) -> Interval:
        """The interval a lookup may rely on right now.

        A still-valid entry has survived every invalidation processed so far,
        so it is known valid through the last invalidation timestamp (but no
        further: a not-yet-seen update may already have changed it).  A
        truncated entry's interval is exact.
        """
        if not self.still_valid:
            return self.interval
        known_through = max(self.interval.lo, last_invalidation_ts)
        return Interval(self.interval.lo, known_through + 1)


@dataclass(frozen=True, **DATACLASS_SLOTS)
class EntryRecord:
    """One cache-entry version in transit between nodes (key migration).

    A record carries everything needed to reinstall the version on another
    node with identical semantics: the value, its validity interval, and —
    for still-valid entries — the invalidation tags that keep it truncatable.
    Records are produced by ``extract_entries`` and consumed by
    ``install_entries`` (see :class:`repro.comm.transport.CacheTransport`).
    """

    key: str
    value: Any
    interval: Interval
    tags: FrozenSet[InvalidationTag] = frozenset()

    # ------------------------------------------------------------------
    # Binary wire codec (see repro.comm.wire)
    # ------------------------------------------------------------------
    def pack_into(self, out: bytearray, enc_value: Callable[[bytearray, Any], None]) -> None:
        """Append key, interval, tags and value; values via ``enc_value``."""
        try:
            raw = self.key.encode("utf-8")
        except UnicodeEncodeError:
            raw = self.key.encode("utf-8", "surrogatepass")
        size = len(raw)
        if size < 255:
            out.append(size)
        else:
            out.append(255)
            out += _KEYLEN.pack(size)
        out += raw
        self.interval.pack_into(out)
        out += _COUNT.pack(len(self.tags))
        for tag in self.tags:
            enc_value(out, tag)
        enc_value(out, self.value)

    @classmethod
    def unpack_from(
        cls,
        buf: bytes,
        offset: int,
        dec_value: Callable[[bytes, int], Tuple[Any, int]],
    ) -> Tuple["EntryRecord", int]:
        keylen = buf[offset]
        offset += 1
        if keylen == 255:
            (keylen,) = _unpack_keylen(buf, offset)
            offset += 4
        end = offset + keylen
        raw = buf[offset:end]
        try:
            key = raw.decode("utf-8")
        except UnicodeDecodeError:
            key = raw.decode("utf-8", "surrogatepass")
        interval, offset = Interval.unpack_from(buf, end)
        (count,) = _COUNT.unpack_from(buf, offset)
        offset += _COUNT.size
        tags = []
        for _ in range(count):
            tag, offset = dec_value(buf, offset)
            tags.append(tag)
        value, offset = dec_value(buf, offset)
        record = _new(cls)
        _set(record, "key", key)
        _set(record, "value", value)
        _set(record, "interval", interval)
        _set(record, "tags", frozenset(tags))
        return record, offset


@dataclass(frozen=True, **DATACLASS_SLOTS)
class LookupRequest:
    """One element of a batched (multi-key) cache lookup.

    ``probe=True`` requests a statistics-free hit check instead of a full
    lookup: the server answers whether a lookup over ``[lo, hi]`` would hit
    without counting towards hit/miss statistics or touching LRU ordering.
    Bundling a probe with the lookup it classifies lets the client library
    resolve a miss's type in the same round trip as the lookup itself.
    """

    key: str
    lo: int
    hi: int
    probe: bool = False

    # ------------------------------------------------------------------
    # Binary wire codec (see repro.comm.wire)
    # ------------------------------------------------------------------
    def pack_into(self, out: bytearray) -> None:
        """Append the fixed little-endian encoding of this request."""
        try:
            raw = self.key.encode("utf-8")
        except UnicodeEncodeError:
            raw = self.key.encode("utf-8", "surrogatepass")
        size = len(raw)
        if size < 255:
            out.append(size)
        else:
            out.append(255)
            out += _KEYLEN.pack(size)
        out += raw
        out += _LO_HI_PROBE.pack(self.lo, self.hi, 1 if self.probe else 0)

    @classmethod
    def unpack_from(cls, buf: bytes, offset: int) -> Tuple["LookupRequest", int]:
        keylen = buf[offset]
        offset += 1
        if keylen == 255:
            (keylen,) = _unpack_keylen(buf, offset)
            offset += 4
        end = offset + keylen
        raw = buf[offset:end]
        try:
            key = raw.decode("utf-8")
        except UnicodeDecodeError:
            key = raw.decode("utf-8", "surrogatepass")
        lo, hi, probe = _unpack_lo_hi_probe(buf, end)
        request = _new(cls)
        _set(request, "key", key)
        _set(request, "lo", lo)
        _set(request, "hi", hi)
        _set(request, "probe", True if probe else False)
        return request, end + 17


@dataclass(frozen=True, **DATACLASS_SLOTS)
class LookupResult:
    """Outcome of a cache lookup.

    Slotted (with the other wire-crossing records above) where the
    interpreter supports it: lookup results are created once per cacheable
    call and pickled across the socket transports, so skipping the
    per-instance ``__dict__`` pays on both allocation and codec time.
    """

    hit: bool
    key: str
    value: Any = None
    #: Effective validity interval of the returned entry: for a still-valid
    #: entry the upper bound reflects only invalidations processed so far,
    #: which is what the transaction's pin set may safely be narrowed to.
    interval: Optional[Interval] = None
    #: The entry's stored validity interval (unbounded for still-valid
    #: entries); used when propagating dependencies to enclosing cacheable
    #: functions.
    raw_interval: Optional[Interval] = None
    #: Invalidation tags of the returned entry (still-valid entries only).
    tags: FrozenSet[InvalidationTag] = frozenset()
    #: True if the key has ever been stored on the contacted server; used by
    #: the client library to classify misses (compulsory vs other).
    key_ever_stored: bool = False
    #: True if some version of the key exists whose *true* validity interval
    #: intersects the transaction's staleness window even though it did not
    #: satisfy this lookup; used to classify consistency misses.
    fresh_version_exists: bool = False
    #: True if this result is a synthetic miss produced because the
    #: responsible cache node was unreachable (failure-aware routing degraded
    #: the lookup instead of raising); such misses are classified separately.
    degraded: bool = False

    # ------------------------------------------------------------------
    # Binary wire codec (see repro.comm.wire)
    # ------------------------------------------------------------------
    def pack_into(self, out: bytearray, enc_value: Callable[[bytearray, Any], None]) -> None:
        """Append flags, has-tags byte, key, packed bounds, tags, value."""
        flags = 0
        if self.hit:
            flags |= _F_HIT
        if self.key_ever_stored:
            flags |= _F_EVER_STORED
        if self.fresh_version_exists:
            flags |= _F_FRESH_EXISTS
        if self.degraded:
            flags |= _F_DEGRADED
        interval = self.interval
        raw_interval = self.raw_interval
        tags = self.tags
        bounds = []
        if interval is not None:
            flags |= _F_HAS_INTERVAL
            bounds.append(interval.lo)
            hi = interval.hi
            if hi is None:
                flags |= _F_INTERVAL_UNBOUNDED
            else:
                bounds.append(hi)
        if raw_interval is not None:
            flags |= _F_HAS_RAW
            bounds.append(raw_interval.lo)
            hi = raw_interval.hi
            if hi is None:
                flags |= _F_RAW_UNBOUNDED
            else:
                bounds.append(hi)
        append = out.append
        append(flags)
        # Tag count as one byte (255 escapes to a u32): nearly every hit
        # carries a handful of tags, so the count never needs four bytes —
        # or the struct call that packing them would cost.
        count = len(tags)
        if count < 255:
            append(count)
        else:
            append(255)
            out += _COUNT.pack(count)
        try:
            raw = self.key.encode("utf-8")
        except UnicodeEncodeError:
            raw = self.key.encode("utf-8", "surrogatepass")
        size = len(raw)
        if size < 255:
            append(size)
        else:
            append(255)
            out += _KEYLEN.pack(size)
        out += raw
        if bounds:
            out += _QS_PACK[len(bounds)](*bounds)
        if count:
            for tag in tags:
                enc_value(out, tag)
        enc_value(out, self.value)

    @classmethod
    def unpack_from(
        cls,
        buf: bytes,
        offset: int,
        dec_value: Callable[[bytes, int], Tuple[Any, int]],
    ) -> Tuple["LookupResult", int]:
        flags = buf[offset]
        tag_count = buf[offset + 1]
        offset += 2
        if tag_count == 255:
            (tag_count,) = _COUNT.unpack_from(buf, offset)
            offset += 4
        keylen = buf[offset]
        offset += 1
        if keylen == 255:
            (keylen,) = _unpack_keylen(buf, offset)
            offset += 4
        end = offset + keylen
        raw = buf[offset:end]
        try:
            key = raw.decode("utf-8")
        except UnicodeDecodeError:
            key = raw.decode("utf-8", "surrogatepass")
        offset = end
        interval = None
        raw_interval = None
        if flags & 80:  # _F_HAS_INTERVAL | _F_HAS_RAW
            count = 0
            if flags & 16:
                count = 1 if flags & 32 else 2
            if flags & 64:
                count += 1 if flags & 128 else 2
            bounds = _QS_UNPACK[count](buf, offset)
            offset += count * 8
            index = 0
            # Construction bypasses __init__, so the hi >= lo invariant is
            # re-checked — a malformed frame must not mint an interval the
            # validity algebra would misinterpret.
            if flags & 16:
                lo = bounds[0]
                if flags & 32:
                    hi = None
                    index = 1
                else:
                    hi = bounds[1]
                    if hi < lo:
                        raise ValueError(f"invalid interval: hi={hi} < lo={lo}")
                    index = 2
                interval = _new(Interval)
                _set(interval, "lo", lo)
                _set(interval, "hi", hi)
            if flags & 64:
                lo = bounds[index]
                if flags & 128:
                    hi = None
                else:
                    hi = bounds[index + 1]
                    if hi < lo:
                        raise ValueError(f"invalid interval: hi={hi} < lo={lo}")
                if interval is not None and lo == interval.lo and hi == interval.hi:
                    # The server hands out the *same* Interval object as both
                    # the effective and the raw interval of a truncated entry;
                    # pickle's memo preserves that sharing across the wire, so
                    # the binary codec reconstructs it too (transport parity
                    # requires byte-identical re-pickles of results).
                    raw_interval = interval
                else:
                    raw_interval = _new(Interval)
                    _set(raw_interval, "lo", lo)
                    _set(raw_interval, "hi", hi)
        tags: FrozenSet[InvalidationTag] = _EMPTY_TAGS
        if tag_count == 1:
            # One tag is the overwhelmingly common hit shape (one table/
            # column pair invalidates the entry); skip the list round trip.
            tag, offset = dec_value(buf, offset)
            tags = frozenset((tag,))
        elif tag_count:
            items = []
            for _ in range(tag_count):
                tag, offset = dec_value(buf, offset)
                items.append(tag)
            tags = frozenset(items)
        value, offset = dec_value(buf, offset)
        result = _new(cls)
        _set(result, "hit", True if flags & 1 else False)
        _set(result, "key", key)
        _set(result, "value", value)
        _set(result, "interval", interval)
        _set(result, "raw_interval", raw_interval)
        _set(result, "tags", tags)
        _set(result, "key_ever_stored", True if flags & 2 else False)
        _set(result, "fresh_version_exists", True if flags & 4 else False)
        _set(result, "degraded", True if flags & 8 else False)
        return result, offset
