"""Cache entries and lookup results."""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, FrozenSet, Optional

from repro._compat import DATACLASS_SLOTS
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

__all__ = ["CacheEntry", "EntryRecord", "LookupRequest", "LookupResult", "estimate_size"]

#: Fixed per-entry bookkeeping overhead charged against the byte budget, in
#: addition to the serialized size of the key and value.
ENTRY_OVERHEAD_BYTES = 64


def estimate_size(key: str, value: Any) -> int:
    """Approximate memory footprint of a cache entry in bytes.

    The cache's byte budget models the RAM of a memcached-style server, so
    the estimate is based on the serialized size of the value (which is also
    what a networked cache would store) plus the key and a fixed overhead.
    """
    try:
        value_bytes = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        value_bytes = len(repr(value).encode())
    return len(key.encode()) + value_bytes + ENTRY_OVERHEAD_BYTES


@dataclass(**DATACLASS_SLOTS)
class CacheEntry:
    """One version of one cached key.

    Attributes:
        key: cache key (derived from the cacheable function and arguments).
        value: the cached result.
        interval: validity interval of the value.  An unbounded interval
            means the value was current when inserted and the entry is
            *still-valid*: invalidation messages may later truncate it.
        tags: invalidation tags (only meaningful for still-valid entries).
        size: charged size in bytes.
        last_access: wall-clock time of the most recent hit (LRU ordering).
    """

    key: str
    value: Any
    interval: Interval
    tags: FrozenSet[InvalidationTag] = frozenset()
    size: int = 0
    last_access: float = 0.0

    @property
    def still_valid(self) -> bool:
        """True while no invalidation has truncated the entry."""
        return self.interval.unbounded

    def effective_interval(self, last_invalidation_ts: int) -> Interval:
        """The interval a lookup may rely on right now.

        A still-valid entry has survived every invalidation processed so far,
        so it is known valid through the last invalidation timestamp (but no
        further: a not-yet-seen update may already have changed it).  A
        truncated entry's interval is exact.
        """
        if not self.still_valid:
            return self.interval
        known_through = max(self.interval.lo, last_invalidation_ts)
        return Interval(self.interval.lo, known_through + 1)


@dataclass(frozen=True, **DATACLASS_SLOTS)
class EntryRecord:
    """One cache-entry version in transit between nodes (key migration).

    A record carries everything needed to reinstall the version on another
    node with identical semantics: the value, its validity interval, and —
    for still-valid entries — the invalidation tags that keep it truncatable.
    Records are produced by ``extract_entries`` and consumed by
    ``install_entries`` (see :class:`repro.comm.transport.CacheTransport`).
    """

    key: str
    value: Any
    interval: Interval
    tags: FrozenSet[InvalidationTag] = frozenset()


@dataclass(frozen=True, **DATACLASS_SLOTS)
class LookupRequest:
    """One element of a batched (multi-key) cache lookup.

    ``probe=True`` requests a statistics-free hit check instead of a full
    lookup: the server answers whether a lookup over ``[lo, hi]`` would hit
    without counting towards hit/miss statistics or touching LRU ordering.
    Bundling a probe with the lookup it classifies lets the client library
    resolve a miss's type in the same round trip as the lookup itself.
    """

    key: str
    lo: int
    hi: int
    probe: bool = False


@dataclass(frozen=True, **DATACLASS_SLOTS)
class LookupResult:
    """Outcome of a cache lookup.

    Slotted (with the other wire-crossing records above) where the
    interpreter supports it: lookup results are created once per cacheable
    call and pickled across the socket transports, so skipping the
    per-instance ``__dict__`` pays on both allocation and codec time.
    """

    hit: bool
    key: str
    value: Any = None
    #: Effective validity interval of the returned entry: for a still-valid
    #: entry the upper bound reflects only invalidations processed so far,
    #: which is what the transaction's pin set may safely be narrowed to.
    interval: Optional[Interval] = None
    #: The entry's stored validity interval (unbounded for still-valid
    #: entries); used when propagating dependencies to enclosing cacheable
    #: functions.
    raw_interval: Optional[Interval] = None
    #: Invalidation tags of the returned entry (still-valid entries only).
    tags: FrozenSet[InvalidationTag] = frozenset()
    #: True if the key has ever been stored on the contacted server; used by
    #: the client library to classify misses (compulsory vs other).
    key_ever_stored: bool = False
    #: True if some version of the key exists whose *true* validity interval
    #: intersects the transaction's staleness window even though it did not
    #: satisfy this lookup; used to classify consistency misses.
    fresh_version_exists: bool = False
    #: True if this result is a synthetic miss produced because the
    #: responsible cache node was unreachable (failure-aware routing degraded
    #: the lookup instead of raising); such misses are classified separately.
    degraded: bool = False
