"""Consistent hashing of cache keys onto cache nodes.

The paper partitions data among cache nodes with consistent hashing (as in
DHTs), but assumes the deployment is small enough that every application node
knows the full server list and can map a key to its node directly.  This is
that scheme: a hash ring with virtual nodes for balance, plus successor
lookup for a key.

Beyond plain key routing the ring answers *ownership-range* queries, which is
what the membership subsystem (:mod:`repro.cache.membership`) needs to plan a
live migration: :meth:`ConsistentHashRing.owned_ranges` lists the hash-space
arcs a node is responsible for, and :func:`diff_ownership` computes exactly
which arcs change hands between two ring configurations (e.g. before and
after a node joins).  Nodes may carry a *weight*, scaling their virtual-node
count and therefore the share of the key space they own.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "ConsistentHashRing",
    "OwnershipChange",
    "diff_ownership",
    "range_contains",
    "HASH_SPACE",
]

#: Size of the hash space: points are 64-bit unsigned integers.
HASH_SPACE = 2**64


def _hash(data: str) -> int:
    """Stable 64-bit hash of a string (first 8 bytes of its SHA-1)."""
    digest = hashlib.sha1(data.encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class OwnershipChange:
    """One hash-space arc whose owner differs between two rings.

    The arc is the half-open interval ``[lo, hi)``; when ``lo >= hi`` it
    wraps around the top of the hash space.  Keys hashing into the arc were
    routed to ``old_owner`` by the old ring and to ``new_owner`` by the new
    one.
    """

    lo: int
    hi: int
    old_owner: str
    new_owner: str


def range_contains(lo: int, hi: int, point: int) -> bool:
    """True if ``point`` lies in the (possibly wrapping) arc ``[lo, hi)``.

    ``lo == hi`` denotes the full circle (a single-point ring owns
    everything).
    """
    if lo == hi:
        return True
    if lo < hi:
        return lo <= point < hi
    return point >= lo or point < hi


class ConsistentHashRing:
    """A consistent-hash ring mapping keys to node names."""

    def __init__(self, nodes: Sequence[str] = (), virtual_nodes: int = 100) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")
        self._virtual_nodes = virtual_nodes
        self._ring: List[Tuple[int, str]] = []
        self._points: List[int] = []
        #: node name -> number of virtual points it placed on the ring.
        self._nodes: Dict[str, int] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_node(self, node: str, weight: float = 1.0) -> None:
        """Add a node and its virtual points to the ring.

        ``weight`` scales the node's virtual-node count (and therefore its
        expected share of the key space): a weight-2 node owns roughly twice
        as many keys as a weight-1 node.
        """
        if node in self._nodes:
            return
        if weight <= 0:
            raise ValueError("weight must be positive")
        replicas = max(1, round(self._virtual_nodes * weight))
        self._nodes[node] = replicas
        for replica in range(replicas):
            point = _hash(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._ring.insert(index, (point, node))

    def remove_node(self, node: str) -> None:
        """Remove a node; its keys fall to their ring successors.

        Only the victim's virtual points are deleted (located by bisect),
        rather than rebuilding the whole ring: O(vnodes * log points) instead
        of O(nodes * vnodes).
        """
        replicas = self._nodes.pop(node, None)
        if replicas is None:
            return
        for replica in range(replicas):
            point = _hash(f"{node}#{replica}")
            index = bisect.bisect_left(self._points, point)
            # Several nodes could collide on one point; scan the equal run
            # for the entry that belongs to the victim.
            while index < len(self._ring) and self._points[index] == point:
                if self._ring[index][1] == node:
                    del self._points[index]
                    del self._ring[index]
                    break
                index += 1

    def copy(self) -> "ConsistentHashRing":
        """An independent copy (used to stage a membership change)."""
        clone = ConsistentHashRing(virtual_nodes=self._virtual_nodes)
        clone._ring = list(self._ring)
        clone._points = list(self._points)
        clone._nodes = dict(self._nodes)
        return clone

    @property
    def nodes(self) -> List[str]:
        """Current member node names."""
        return list(self._nodes)

    def weight_of(self, node: str) -> float:
        """The node's weight, expressed as its virtual-node fraction."""
        return self._nodes[node] / self._virtual_nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """Return the node responsible for ``key``."""
        return self.node_for_point(_hash(key))

    def node_for_point(self, point: int) -> str:
        """Return the node owning a raw hash-space ``point`` (its successor)."""
        if not self._ring:
            raise LookupError("hash ring has no nodes")
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._ring[index][1]

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Count how many of ``keys`` map to each node (for balance tests)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    # ------------------------------------------------------------------
    # Ownership ranges
    # ------------------------------------------------------------------
    def owned_ranges(self, node: str) -> List[Tuple[int, int]]:
        """The hash-space arcs ``[lo, hi)`` that route to ``node``.

        Each virtual point owns the arc from its predecessor point (inclusive,
        since a key hashing exactly onto a point routes to the point's
        successor) up to itself (exclusive).  Arcs may wrap; ``lo == hi``
        denotes the full circle of a single-point ring.
        """
        if node not in self._nodes:
            raise KeyError(node)
        ranges: List[Tuple[int, int]] = []
        count = len(self._ring)
        for index, (point, owner) in enumerate(self._ring):
            if owner == node:
                predecessor = self._points[(index - 1) % count]
                ranges.append((predecessor, point))
        return ranges


def diff_ownership(
    old: ConsistentHashRing, new: ConsistentHashRing
) -> List[OwnershipChange]:
    """Every hash-space arc whose owner differs between ``old`` and ``new``.

    Ownership is piecewise constant between ring points, so the combined
    point set of both rings partitions the circle into arcs on which both
    rings' routing is constant; comparing the owners at each arc's start
    point yields the exact set of ranges a membership change moves.  This is
    what makes migration *incremental*: only the returned arcs' keys need to
    be touched.
    """
    points = sorted(set(old._points) | set(new._points))
    if not points or not old._points or not new._points:
        return []
    changes: List[OwnershipChange] = []
    count = len(points)
    for index, lo in enumerate(points):
        hi = points[(index + 1) % count]
        old_owner = old.node_for_point(lo)
        new_owner = new.node_for_point(lo)
        if old_owner != new_owner:
            changes.append(OwnershipChange(lo=lo, hi=hi, old_owner=old_owner, new_owner=new_owner))
    return changes
