"""Consistent hashing of cache keys onto cache nodes.

The paper partitions data among cache nodes with consistent hashing (as in
DHTs), but assumes the deployment is small enough that every application node
knows the full server list and can map a key to its node directly.  This is
that scheme: a hash ring with virtual nodes for balance, plus successor
lookup for a key.

Beyond plain key routing the ring answers *ownership-range* queries, which is
what the membership subsystem (:mod:`repro.cache.membership`) needs to plan a
live migration: :meth:`ConsistentHashRing.owned_ranges` lists the hash-space
arcs a node is responsible for, and :func:`diff_ownership` computes exactly
which arcs change hands between two ring configurations (e.g. before and
after a node joins).  Nodes may carry a *weight*, scaling their virtual-node
count and therefore the share of the key space they own.

**Replication.**  For R-way replication the ring also answers *successor
list* queries, the classic DHT construction: the replica set of a key is the
first R **distinct physical nodes** encountered walking the ring clockwise
from the key's hash point (virtual points of a node already in the list are
skipped).  :meth:`ConsistentHashRing.successors` returns that list (the
primary first), :meth:`ConsistentHashRing.replica_ranges` inverts it into
the arcs a node replicates, and :func:`diff_replica_ownership` generalizes
:func:`diff_ownership` to whole replica sets, which is what lets the
migration planner stream only the arcs whose replica set actually changed.
Successor lists are minimally disruptive by construction: adding a node
inserts it at one position of each key's distinct-owner walk (displacing at
most the last replica), and removing one promotes the next distinct owner.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "ConsistentHashRing",
    "OwnershipChange",
    "ReplicaOwnershipChange",
    "diff_ownership",
    "diff_replica_ownership",
    "range_contains",
    "HASH_SPACE",
]

#: Size of the hash space: points are 64-bit unsigned integers.
HASH_SPACE = 2**64


def _hash(data: str) -> int:
    """Stable 64-bit hash of a string (first 8 bytes of its SHA-1)."""
    digest = hashlib.sha1(data.encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class OwnershipChange:
    """One hash-space arc whose owner differs between two rings.

    The arc is the half-open interval ``[lo, hi)``; when ``lo >= hi`` it
    wraps around the top of the hash space.  Keys hashing into the arc were
    routed to ``old_owner`` by the old ring and to ``new_owner`` by the new
    one.
    """

    lo: int
    hi: int
    old_owner: str
    new_owner: str


@dataclass(frozen=True)
class ReplicaOwnershipChange:
    """One hash-space arc whose *replica set* differs between two rings.

    Generalizes :class:`OwnershipChange` from a single owner to the ordered
    R-node successor list (primary first).  ``lo``/``hi`` follow the same
    wrapping ``[lo, hi)`` convention.
    """

    lo: int
    hi: int
    old_owners: Tuple[str, ...]
    new_owners: Tuple[str, ...]


def range_contains(lo: int, hi: int, point: int) -> bool:
    """True if ``point`` lies in the (possibly wrapping) arc ``[lo, hi)``.

    ``lo == hi`` denotes the full circle (a single-point ring owns
    everything).
    """
    if lo == hi:
        return True
    if lo < hi:
        return lo <= point < hi
    return point >= lo or point < hi


class ConsistentHashRing:
    """A consistent-hash ring mapping keys to node names."""

    def __init__(self, nodes: Sequence[str] = (), virtual_nodes: int = 100) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")
        self._virtual_nodes = virtual_nodes
        self._ring: List[Tuple[int, str]] = []
        self._points: List[int] = []
        #: node name -> number of virtual points it placed on the ring.
        self._nodes: Dict[str, int] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_node(self, node: str, weight: float = 1.0) -> None:
        """Add a node and its virtual points to the ring.

        ``weight`` scales the node's virtual-node count (and therefore its
        expected share of the key space): a weight-2 node owns roughly twice
        as many keys as a weight-1 node.
        """
        if node in self._nodes:
            return
        if weight <= 0:
            raise ValueError("weight must be positive")
        replicas = max(1, round(self._virtual_nodes * weight))
        self._nodes[node] = replicas
        for replica in range(replicas):
            point = _hash(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._ring.insert(index, (point, node))

    def remove_node(self, node: str) -> None:
        """Remove a node; its keys fall to their ring successors.

        Only the victim's virtual points are deleted (located by bisect),
        rather than rebuilding the whole ring: O(vnodes * log points) instead
        of O(nodes * vnodes).
        """
        replicas = self._nodes.pop(node, None)
        if replicas is None:
            return
        for replica in range(replicas):
            point = _hash(f"{node}#{replica}")
            index = bisect.bisect_left(self._points, point)
            # Several nodes could collide on one point; scan the equal run
            # for the entry that belongs to the victim.
            while index < len(self._ring) and self._points[index] == point:
                if self._ring[index][1] == node:
                    del self._points[index]
                    del self._ring[index]
                    break
                index += 1

    def copy(self) -> "ConsistentHashRing":
        """An independent copy (used to stage a membership change)."""
        clone = ConsistentHashRing(virtual_nodes=self._virtual_nodes)
        clone._ring = list(self._ring)
        clone._points = list(self._points)
        clone._nodes = dict(self._nodes)
        return clone

    @property
    def nodes(self) -> List[str]:
        """Current member node names."""
        return list(self._nodes)

    def weight_of(self, node: str) -> float:
        """The node's weight, expressed as its virtual-node fraction."""
        return self._nodes[node] / self._virtual_nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """Return the node responsible for ``key``."""
        return self.node_for_point(_hash(key))

    def node_for_point(self, point: int) -> str:
        """Return the node owning a raw hash-space ``point`` (its successor)."""
        if not self._ring:
            raise LookupError("hash ring has no nodes")
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._ring[index][1]

    def successors(self, key: str, r: int) -> List[str]:
        """The first ``r`` distinct nodes clockwise from ``key``'s point.

        This is the key's replica set under R-way replication: the primary
        (``node_for``) first, then the next distinct physical nodes on the
        ring.  Fewer than ``r`` nodes are returned when the ring is smaller
        than ``r``.
        """
        return self.successors_for_point(_hash(key), r)

    def successors_for_point(self, point: int, r: int) -> List[str]:
        """Successor list of a raw hash-space point (see :meth:`successors`)."""
        if r < 1:
            raise ValueError("replication factor must be positive")
        if not self._ring:
            raise LookupError("hash ring has no nodes")
        index = bisect.bisect(self._points, point) % len(self._ring)
        return self._successors_at(index, r)

    def _successors_at(self, index: int, r: int) -> List[str]:
        """Distinct owners walking the ring from virtual point ``index``."""
        owners: List[str] = []
        count = len(self._ring)
        for step in range(count):
            owner = self._ring[(index + step) % count][1]
            if owner not in owners:
                owners.append(owner)
                if len(owners) == r:
                    break
        return owners

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Count how many of ``keys`` map to each node (for balance tests)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    # ------------------------------------------------------------------
    # Ownership ranges
    # ------------------------------------------------------------------
    def owned_ranges(self, node: str) -> List[Tuple[int, int]]:
        """The hash-space arcs ``[lo, hi)`` that route to ``node``.

        Each virtual point owns the arc from its predecessor point (inclusive,
        since a key hashing exactly onto a point routes to the point's
        successor) up to itself (exclusive).  Arcs may wrap; ``lo == hi``
        denotes the full circle of a single-point ring.
        """
        if node not in self._nodes:
            raise KeyError(node)
        ranges: List[Tuple[int, int]] = []
        count = len(self._ring)
        for index, (point, owner) in enumerate(self._ring):
            if owner == node:
                predecessor = self._points[(index - 1) % count]
                ranges.append((predecessor, point))
        return ranges

    def replica_ranges(self, node: str, r: int) -> List[Tuple[int, int]]:
        """The arcs ``[lo, hi)`` for which ``node`` is one of the ``r`` replicas.

        With ``r == 1`` this equals :meth:`owned_ranges`.  Across all member
        nodes the returned arcs cover every point of the hash space exactly
        ``min(r, len(ring))`` times — each arc belongs to precisely the nodes
        of its successor list — which is what makes them usable as a
        replica-placement *partition* of the ring.
        """
        if node not in self._nodes:
            raise KeyError(node)
        if r < 1:
            raise ValueError("replication factor must be positive")
        ranges: List[Tuple[int, int]] = []
        count = len(self._ring)
        for index, (point, _owner) in enumerate(self._ring):
            if node in self._successors_at(index, r):
                ranges.append((self._points[(index - 1) % count], point))
        return ranges


def diff_ownership(
    old: ConsistentHashRing, new: ConsistentHashRing
) -> List[OwnershipChange]:
    """Every hash-space arc whose owner differs between ``old`` and ``new``.

    Ownership is piecewise constant between ring points, so the combined
    point set of both rings partitions the circle into arcs on which both
    rings' routing is constant; comparing the owners at each arc's start
    point yields the exact set of ranges a membership change moves.  This is
    what makes migration *incremental*: only the returned arcs' keys need to
    be touched.
    """
    points = sorted(set(old._points) | set(new._points))
    if not points or not old._points or not new._points:
        return []
    changes: List[OwnershipChange] = []
    count = len(points)
    for index, lo in enumerate(points):
        hi = points[(index + 1) % count]
        old_owner = old.node_for_point(lo)
        new_owner = new.node_for_point(lo)
        if old_owner != new_owner:
            changes.append(OwnershipChange(lo=lo, hi=hi, old_owner=old_owner, new_owner=new_owner))
    return changes


def diff_replica_ownership(
    old: ConsistentHashRing, new: ConsistentHashRing, r: int
) -> List[ReplicaOwnershipChange]:
    """Every arc whose R-node replica set differs between ``old`` and ``new``.

    The replica-set generalization of :func:`diff_ownership` (to which it
    reduces for ``r == 1``): successor lists are piecewise constant between
    ring points, so comparing them at each combined-point arc yields exactly
    the ranges a membership change under R-way replication needs to touch —
    an arc whose successor list is unchanged needs no migration traffic even
    if other arcs moved.
    """
    if r < 1:
        raise ValueError("replication factor must be positive")
    points = sorted(set(old._points) | set(new._points))
    if not points or not old._points or not new._points:
        return []
    changes: List[ReplicaOwnershipChange] = []
    count = len(points)
    for index, lo in enumerate(points):
        hi = points[(index + 1) % count]
        old_owners = tuple(old.successors_for_point(lo, r))
        new_owners = tuple(new.successors_for_point(lo, r))
        if old_owners != new_owners:
            changes.append(
                ReplicaOwnershipChange(lo=lo, hi=hi, old_owners=old_owners, new_owners=new_owners)
            )
    return changes
