"""Consistent hashing of cache keys onto cache nodes.

The paper partitions data among cache nodes with consistent hashing (as in
DHTs), but assumes the deployment is small enough that every application node
knows the full server list and can map a key to its node directly.  This is
that scheme: a hash ring with virtual nodes for balance, plus successor
lookup for a key.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["ConsistentHashRing"]


def _hash(data: str) -> int:
    """Stable 64-bit hash of a string (first 8 bytes of its SHA-1)."""
    digest = hashlib.sha1(data.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """A consistent-hash ring mapping keys to node names."""

    def __init__(self, nodes: Sequence[str] = (), virtual_nodes: int = 100) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")
        self._virtual_nodes = virtual_nodes
        self._ring: List[Tuple[int, str]] = []
        self._points: List[int] = []
        self._nodes: Dict[str, bool] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        """Add a node and its virtual points to the ring."""
        if node in self._nodes:
            return
        self._nodes[node] = True
        for replica in range(self._virtual_nodes):
            point = _hash(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._ring.insert(index, (point, node))

    def remove_node(self, node: str) -> None:
        """Remove a node; its keys fall to their ring successors."""
        if node not in self._nodes:
            return
        del self._nodes[node]
        kept = [(point, owner) for point, owner in self._ring if owner != node]
        self._ring = kept
        self._points = [point for point, _owner in kept]

    @property
    def nodes(self) -> List[str]:
        """Current member node names."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """Return the node responsible for ``key``."""
        if not self._ring:
            raise LookupError("hash ring has no nodes")
        point = _hash(key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._ring[index][1]

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Count how many of ``keys`` map to each node (for balance tests)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
