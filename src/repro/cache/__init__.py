"""Versioned cache substrate: cache servers, consistent hashing, cluster."""

from repro.cache.cluster import CacheCluster
from repro.cache.entry import CacheEntry, LookupResult
from repro.cache.hashring import ConsistentHashRing
from repro.cache.server import CacheServer, CacheServerStats

__all__ = [
    "CacheCluster",
    "CacheEntry",
    "LookupResult",
    "ConsistentHashRing",
    "CacheServer",
    "CacheServerStats",
]
