"""Versioned cache substrate: cache servers, consistent hashing, cluster.

Cache nodes can be reached in-process (zero overhead) or as real networked
servers over TCP (:mod:`repro.cache.netserver`); the cluster routes through
either via the :class:`repro.comm.transport.CacheTransport` abstraction.
"""

from repro.cache.cluster import CacheCluster
from repro.cache.entry import CacheEntry, LookupRequest, LookupResult
from repro.cache.hashring import ConsistentHashRing
from repro.cache.netserver import CacheServerProcess, CacheTransportError, SocketTransport
from repro.cache.server import CacheServer, CacheServerStats

__all__ = [
    "CacheCluster",
    "CacheEntry",
    "LookupRequest",
    "LookupResult",
    "ConsistentHashRing",
    "CacheServer",
    "CacheServerStats",
    "CacheServerProcess",
    "SocketTransport",
    "CacheTransportError",
]
