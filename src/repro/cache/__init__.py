"""Versioned cache substrate: cache servers, consistent hashing, cluster.

Cache nodes can be reached in-process (zero overhead) or as real networked
servers over TCP (:mod:`repro.cache.netserver`); the cluster routes through
either via the :class:`repro.comm.transport.CacheTransport` abstraction.
The cache tier is elastic: :mod:`repro.cache.membership` versions the node
set into epochs, live-migrates keys on planned joins/leaves, and records
failure-driven evictions performed by the cluster's failure-aware routing.
"""

from repro.cache.cluster import CacheCluster, ClusterHealthStats
from repro.cache.entry import CacheEntry, EntryRecord, LookupRequest, LookupResult
from repro.cache.hashring import ConsistentHashRing, OwnershipChange, diff_ownership
from repro.cache.membership import ClusterMembership, EpochRecord, MembershipStats
from repro.cache.netserver import (
    CacheNodeUnreachableError,
    CacheServerProcess,
    CacheTransportError,
    SocketTransport,
)
from repro.cache.server import CacheServer, CacheServerStats

__all__ = [
    "CacheCluster",
    "ClusterHealthStats",
    "CacheEntry",
    "EntryRecord",
    "LookupRequest",
    "LookupResult",
    "ConsistentHashRing",
    "OwnershipChange",
    "diff_ownership",
    "ClusterMembership",
    "EpochRecord",
    "MembershipStats",
    "CacheServer",
    "CacheServerStats",
    "CacheServerProcess",
    "SocketTransport",
    "CacheTransportError",
    "CacheNodeUnreachableError",
]
