"""Pin sets: the state behind lazy timestamp selection (paper section 6.2).

A read-only transaction's *pin set* is the set of timestamps at which the
transaction can still be serialized.  It starts as the set of all
sufficiently fresh pinned snapshots plus the special element ``?`` (rendered
here as :data:`STAR`), meaning "the transaction could also run in the
present, on a newly pinned snapshot".  Every time the transaction observes a
cached value or a database query result, the pin set is intersected with that
value's validity interval; once any data has been observed the transaction
can no longer run on an arbitrary new snapshot, so ``?`` is removed.

Two invariants (paper section 6.2.1) govern the pin set:

* **Invariant 1** — everything the transaction has seen is consistent with
  the database state at every timestamp in the pin set.
* **Invariant 2** — the pin set is never empty.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.exceptions import EmptyPinSetError
from repro.interval import Interval

__all__ = ["STAR", "PinSet"]


class _Star:
    """Singleton sentinel for the ``?`` element of a pin set."""

    _instance: Optional["_Star"] = None

    def __new__(cls) -> "_Star":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"


#: The special pin-set element meaning "run in the present on a new snapshot".
STAR = _Star()


class PinSet:
    """The set of timestamps at which a transaction may be serialized."""

    def __init__(self, timestamps: Iterable[int] = (), star: bool = True) -> None:
        self._timestamps: Set[int] = set(int(t) for t in timestamps)
        self._star = bool(star)
        if not self._timestamps and not self._star:
            raise EmptyPinSetError("a pin set must start with at least one element")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> FrozenSet[int]:
        """The concrete pinned-snapshot timestamps currently in the set."""
        return frozenset(self._timestamps)

    @property
    def has_star(self) -> bool:
        """True while the transaction may still run on a new snapshot."""
        return self._star

    @property
    def empty(self) -> bool:
        """True if the pin set has neither timestamps nor ``?``."""
        return not self._timestamps and not self._star

    def __len__(self) -> int:
        return len(self._timestamps) + (1 if self._star else 0)

    def __contains__(self, element: object) -> bool:
        if element is STAR:
            return self._star
        return element in self._timestamps

    def bounds(self) -> Optional[Tuple[int, int]]:
        """Lowest and highest concrete timestamps, or ``None`` if only ``?``.

        These bounds are what the library sends with a cache LOOKUP: any
        cached value whose validity interval overlaps them keeps the
        transaction serializable at one or more timestamps.
        """
        if not self._timestamps:
            return None
        return (min(self._timestamps), max(self._timestamps))

    def most_recent(self) -> Optional[int]:
        """The highest concrete timestamp, or ``None`` if only ``?``."""
        return max(self._timestamps) if self._timestamps else None

    def sorted_timestamps(self) -> List[int]:
        """All concrete timestamps, ascending."""
        return sorted(self._timestamps)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_timestamp(self, timestamp: int) -> None:
        """Add a concrete timestamp (used when ``?`` is reified)."""
        self._timestamps.add(int(timestamp))

    def remove_star(self) -> None:
        """Drop ``?``: the transaction has observed data and can no longer
        run on an arbitrary new snapshot."""
        if self._star and not self._timestamps:
            raise EmptyPinSetError("removing ? would empty the pin set")
        self._star = False

    def reify_star(self, timestamp: int) -> None:
        """Replace ``?`` with a newly pinned snapshot's timestamp."""
        self.add_timestamp(timestamp)
        self._star = False

    def restrict(self, interval: Interval) -> None:
        """Intersect the pin set with a validity interval.

        Removes every timestamp outside ``interval`` and drops ``?`` (the
        observed value need not be valid at a future new snapshot).  Raises
        :class:`EmptyPinSetError` if the restriction would empty the set —
        callers check :meth:`would_survive` first and treat that case as a
        cache miss instead.
        """
        survivors = {t for t in self._timestamps if interval.contains(t)}
        if not survivors:
            raise EmptyPinSetError(
                f"restricting pin set {sorted(self._timestamps)} to {interval!r} "
                "would leave no serialization point"
            )
        self._timestamps = survivors
        self._star = False

    def would_survive(self, interval: Interval) -> bool:
        """True if :meth:`restrict` with ``interval`` would keep a timestamp."""
        return any(interval.contains(t) for t in self._timestamps)

    def copy(self) -> "PinSet":
        """An independent copy (used for what-if checks in tests)."""
        clone = PinSet(self._timestamps, star=self._star)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        elements = [str(t) for t in sorted(self._timestamps)]
        if self._star:
            elements.append("?")
        return "PinSet{" + ", ".join(elements) + "}"
