"""Exceptions raised by the TxCache client library."""

from __future__ import annotations

__all__ = [
    "TxCacheError",
    "NotInTransactionError",
    "TransactionInProgressError",
    "EmptyPinSetError",
    "CacheableInRWTransactionWarning",
]


class TxCacheError(Exception):
    """Base class for TxCache library errors."""


class NotInTransactionError(TxCacheError):
    """A cacheable function or query was invoked outside a transaction."""


class TransactionInProgressError(TxCacheError):
    """BEGIN was called while another transaction is still open."""


class EmptyPinSetError(TxCacheError):
    """Internal invariant violation: a transaction's pin set became empty.

    The lazy timestamp selection algorithm guarantees this never happens
    (paper Invariant 2); the library treats would-be violations as cache
    misses instead, so seeing this exception indicates a bug.
    """


class CacheableInRWTransactionWarning(UserWarning):
    """A cacheable function was called inside a read/write transaction.

    Read/write transactions bypass the cache entirely (paper section 2.2),
    so the call executes the implementation directly.
    """
