"""The TxCache client library (the paper's primary contribution).

This package implements the application-side library described in sections 2
and 6 of the paper:

* the transactional programming model — ``BEGIN-RO(staleness)`` /
  ``BEGIN-RW`` / ``COMMIT`` / ``ABORT`` — in which everything an application
  reads inside a read-only transaction reflects one consistent (possibly
  slightly stale) snapshot of the database;
* *cacheable functions*: pure functions designated with
  :meth:`TxCacheClient.cacheable`, whose results are transparently memoised
  in the versioned cache and automatically invalidated when the database
  changes;
* *lazy timestamp selection*: a transaction's serialization point is chosen
  from its *pin set* as late as possible, based on which cached results are
  actually available;
* nested cacheable calls with per-frame validity/tag accumulation;
* cache-miss classification (compulsory / staleness / capacity / consistency)
  used by the paper's Figure 8.
"""

from repro.core.api import ConsistencyMode, TxCacheClient
from repro.core.exceptions import (
    CacheableInRWTransactionWarning,
    NotInTransactionError,
    TransactionInProgressError,
    TxCacheError,
)
from repro.core.keys import cache_key
from repro.core.pinset import STAR, PinSet
from repro.core.stats import ClientStats, MissType

__all__ = [
    "TxCacheClient",
    "ConsistencyMode",
    "TxCacheError",
    "NotInTransactionError",
    "TransactionInProgressError",
    "CacheableInRWTransactionWarning",
    "cache_key",
    "PinSet",
    "STAR",
    "ClientStats",
    "MissType",
]
