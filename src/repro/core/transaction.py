"""Per-transaction state kept by the TxCache library.

A read-only transaction carries its pin set, the snapshot ids it fetched (and
marked in-use) from the pincushion, the lazily started database transaction,
and the stack of *frames* for nested cacheable functions.  Each frame
accumulates the validity intervals and invalidation tags of everything the
function observed; on return, the frame's cumulative interval and tag set
become the cache entry's metadata (paper sections 6.1 and 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.core.pinset import PinSet
from repro.db.invalidation import InvalidationTag
from repro.db.transactions import ReadOnlyTransaction, ReadWriteTransaction
from repro.interval import Interval

__all__ = ["CacheableFrame", "ReadOnlyState", "ReadWriteState"]


@dataclass
class CacheableFrame:
    """Accumulated metadata for one in-flight cacheable function call."""

    function_name: str
    key: str
    validity: Interval = field(default_factory=lambda: Interval(0, None))
    tags: Set[InvalidationTag] = field(default_factory=set)

    def accumulate(self, interval: Interval, tags=()) -> None:
        """Fold one observed value's validity interval and tags into the frame."""
        self.validity = self.validity.intersect(interval)
        self.tags.update(tags)


@dataclass
class ReadOnlyState:
    """State of one read-only transaction."""

    staleness: float
    pin_set: PinSet
    #: bounds of the pin set at BEGIN, before any narrowing.  Used to
    #: classify consistency misses: a miss is a consistency miss if a lookup
    #: over these original bounds would have hit.
    initial_bounds: Optional[tuple]
    #: snapshot ids whose in-use count we bumped at the pincushion.
    held_snapshot_ids: List[int] = field(default_factory=list)
    #: snapshot ids this transaction itself pinned on the database.
    pinned_by_us: List[int] = field(default_factory=list)
    #: lazily created database read-only transaction (None until the first
    #: database query forces a timestamp choice).
    db_transaction: Optional[ReadOnlyTransaction] = None
    #: the timestamp chosen for database queries, once reified.
    chosen_timestamp: Optional[int] = None
    #: stack of in-flight cacheable function frames (innermost last).
    frames: List[CacheableFrame] = field(default_factory=list)

    @property
    def read_only(self) -> bool:
        return True

    def accumulate_into_frames(self, interval: Interval, tags=()) -> None:
        """Fold an observed value into every frame on the call stack.

        The value was observed while each of these functions was executing,
        so each of their results now depends on it (paper section 6.3).
        """
        for frame in self.frames:
            frame.accumulate(interval, tags)


@dataclass
class ReadWriteState:
    """State of one read/write transaction (a thin wrapper around the DB's)."""

    db_transaction: ReadWriteTransaction

    @property
    def read_only(self) -> bool:
        return False
