"""Cache-key derivation for cacheable functions.

The TxCache library, not the application, chooses cache keys: the key is a
stable serialization of the cacheable function's identity and its arguments
(paper section 6.1).  This removes a whole class of memcached bugs the paper
catalogues, where hand-chosen keys were insufficiently descriptive and two
different objects overwrote each other.

Keys also incorporate a fingerprint of the function's code object when it is
available, so that deploying a new version of a function naturally stops
matching entries computed by the old version (the paper suggests hashing the
function's code for exactly this reason).
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Optional, Tuple

__all__ = ["cache_key", "stable_repr", "function_fingerprint"]


def stable_repr(value: Any) -> str:
    """A deterministic textual form of an argument value.

    Dictionaries and sets are rendered with sorted keys/elements so that two
    logically equal arguments always produce the same key.  Nested containers
    are handled recursively.
    """
    if isinstance(value, dict):
        items = ", ".join(
            f"{stable_repr(k)}: {stable_repr(v)}" for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return "{" + items + "}"
    if isinstance(value, (set, frozenset)):
        items = ", ".join(sorted(stable_repr(v) for v in value))
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        open_, close = ("[", "]") if isinstance(value, list) else ("(", ")")
        return open_ + ", ".join(stable_repr(v) for v in value) + close
    if isinstance(value, float) and value.is_integer():
        # Avoid 1.0 vs 1 producing different keys for numerically equal args.
        return repr(int(value))
    return repr(value)


def function_fingerprint(fn: Callable[..., Any]) -> str:
    """A short fingerprint of a function's identity and implementation."""
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))
    module = getattr(fn, "__module__", "")
    code = getattr(fn, "__code__", None)
    if code is not None:
        payload = code.co_code + repr(code.co_consts).encode()
        digest = hashlib.sha1(payload).hexdigest()[:8]
    else:
        digest = "builtin"
    return f"{module}.{name}@{digest}"


def cache_key(
    fn_or_name: Callable[..., Any] | str,
    args: Tuple[Any, ...] = (),
    kwargs: Optional[dict] = None,
) -> str:
    """Derive the cache key for a call to a cacheable function.

    ``fn_or_name`` may be the function itself (preferred — its code
    fingerprint becomes part of the key) or an explicit name supplied by the
    application.
    """
    kwargs = kwargs or {}
    if callable(fn_or_name):
        identity = function_fingerprint(fn_or_name)
    else:
        identity = str(fn_or_name)
    arg_part = stable_repr(tuple(args))
    kwarg_part = stable_repr(kwargs) if kwargs else ""
    raw = f"{identity}|{arg_part}|{kwarg_part}"
    digest = hashlib.sha1(raw.encode()).hexdigest()[:16]
    # Keep a readable prefix for debugging plus a hash for uniqueness.
    readable = identity.split(".")[-1][:40]
    return f"{readable}:{digest}"
