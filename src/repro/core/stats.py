"""Client-side statistics, including cache-miss classification.

The paper's Figure 8 breaks cache misses down by type, borrowing the CPU
cache taxonomy:

* **compulsory** — the object was never in the cache;
* **staleness** — the object was invalidated and its staleness limit has
  been exceeded;
* **capacity** — the object was previously evicted;
* **consistency** — some sufficiently fresh version of the object was
  available, but it was inconsistent with data the transaction had already
  read.

Like the paper's cache server, the reproduction cannot always distinguish
staleness from capacity misses (an evicted entry and an expired entry look
identical to a later lookup), so those two are reported together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

__all__ = ["MissType", "ClientStats"]


class MissType(Enum):
    """Classification of one cache miss (paper section 8.3).

    ``DEGRADED`` extends the paper's taxonomy for the elastic deployment:
    the responsible cache node was unreachable, so the library treated the
    lookup as a miss rather than failing the transaction.  Keeping these out
    of the other buckets stops a dead node from polluting the compulsory
    counts of Figure 8.  With R-way replication a lookup degrades only when
    *every* replica of the key is unreachable — a single node crash in a
    replicated tier produces no DEGRADED misses at all (reads fail over).
    """

    COMPULSORY = "compulsory"
    STALE_OR_CAPACITY = "stale_or_capacity"
    CONSISTENCY = "consistency"
    DEGRADED = "degraded"


@dataclass
class ClientStats:
    """Counters maintained by one TxCache client library instance."""

    ro_transactions: int = 0
    rw_transactions: int = 0
    commits: int = 0
    aborts: int = 0
    cacheable_calls: int = 0
    hits: int = 0
    misses: int = 0
    misses_by_type: Dict[MissType, int] = field(
        default_factory=lambda: {miss_type: 0 for miss_type in MissType}
    )
    db_queries: int = 0
    pins_created: int = 0
    cache_bypassed_calls: int = 0
    #: Cache round trips issued (a batched multi-key lookup counts once, a
    #: put counts once); the cost model charges network cost per round trip.
    cache_rpcs: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_hit(self) -> None:
        self.cacheable_calls += 1
        self.hits += 1

    def record_miss(self, miss_type: MissType) -> None:
        self.cacheable_calls += 1
        self.misses += 1
        self.misses_by_type[miss_type] += 1

    def record_bypass(self) -> None:
        """A cacheable call that bypassed the cache (read/write transaction)."""
        self.cacheable_calls += 1
        self.cache_bypassed_calls += 1

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        """Cacheable calls that consulted the cache."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over cacheable calls that consulted the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def miss_fractions(self) -> Dict[MissType, float]:
        """Each miss type as a fraction of total misses (Figure 8's rows)."""
        if not self.misses:
            return {miss_type: 0.0 for miss_type in MissType}
        return {
            miss_type: count / self.misses
            for miss_type, count in self.misses_by_type.items()
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.ro_transactions = 0
        self.rw_transactions = 0
        self.commits = 0
        self.aborts = 0
        self.cacheable_calls = 0
        self.hits = 0
        self.misses = 0
        self.misses_by_type = {miss_type: 0 for miss_type in MissType}
        self.db_queries = 0
        self.pins_created = 0
        self.cache_bypassed_calls = 0
        self.cache_rpcs = 0

    def merge(self, other: "ClientStats") -> "ClientStats":
        """Add another client's counters into this one; returns ``self``.

        Mirrors :meth:`repro.cache.server.CacheServerStats.merge` so
        multi-client aggregation composes the same way (``total += stats``).
        """
        self.ro_transactions += other.ro_transactions
        self.rw_transactions += other.rw_transactions
        self.commits += other.commits
        self.aborts += other.aborts
        self.cacheable_calls += other.cacheable_calls
        self.hits += other.hits
        self.misses += other.misses
        for miss_type in MissType:
            self.misses_by_type[miss_type] += other.misses_by_type[miss_type]
        self.db_queries += other.db_queries
        self.pins_created += other.pins_created
        self.cache_bypassed_calls += other.cache_bypassed_calls
        self.cache_rpcs += other.cache_rpcs
        return self

    def __iadd__(self, other: "ClientStats") -> "ClientStats":
        return self.merge(other)
