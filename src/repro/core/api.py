"""The TxCache client library API (paper Figure 2 and section 6).

:class:`TxCacheClient` is what applications link against.  It exposes the
programming model of the paper:

* ``begin_ro(staleness)`` / ``begin_rw()`` / ``commit()`` / ``abort()``;
* ``make_cacheable(fn)`` (and the :meth:`TxCacheClient.cacheable` decorator)
  to designate pure functions whose results are transparently cached;
* ``query`` / ``insert`` / ``update`` / ``delete`` to access the database
  within a transaction.

Inside a read-only transaction every value the application sees — cached or
freshly queried — is consistent with the database state at one timestamp.
The library maintains a *pin set* of candidate serialization timestamps and
narrows it lazily as data is observed (section 6.2); database queries are
forced to a specific pinned snapshot only when they can no longer be avoided.

Read/write transactions bypass the cache and run directly on the database, so
TxCache never weakens the database's own isolation level (section 2.2).

For the paper's baselines the client can also run in two degraded modes:
``NO_CONSISTENCY`` uses the cache and the invalidation machinery but accepts
any value fresh enough for the staleness limit, ignoring mutual consistency
(the "No consistency" line of Figure 5a), and ``NO_CACHE`` bypasses the cache
entirely (the "No caching" baseline).
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from enum import Enum
from typing import Any, Callable, Dict, Iterator, Optional, Union

from repro.cache.cluster import CacheCluster
from repro.cache.entry import LookupRequest
from repro.clock import Clock, SystemClock
from repro.core.exceptions import (
    NotInTransactionError,
    TransactionInProgressError,
    TxCacheError,
)
from repro.core.keys import cache_key
from repro.core.pinset import PinSet
from repro.core.stats import ClientStats, MissType
from repro.core.transaction import CacheableFrame, ReadOnlyState, ReadWriteState
from repro.db.database import Database
from repro.db.executor import QueryResult
from repro.db.query import Predicate, Query
from repro.pincushion.pincushion import Pincushion

__all__ = ["ConsistencyMode", "TxCacheClient"]

#: Upper bound used when probing the cache over "any time from X until now".
_FAR_FUTURE = 2**62


class ConsistencyMode(Enum):
    """How the client treats cached data."""

    #: Full TxCache semantics: transactional consistency across cache and
    #: database (the paper's system).
    CONSISTENT = "consistent"
    #: Use the cache and invalidations, but accept any sufficiently fresh
    #: value regardless of mutual consistency (Figure 5a's "No consistency").
    NO_CONSISTENCY = "no-consistency"
    #: Never use the cache (the "No caching" baseline).
    NO_CACHE = "no-cache"


class TxCacheClient:
    """Application-side TxCache library instance.

    One client corresponds to one application server process in the paper's
    deployment; several clients may share the same database, cache cluster,
    and pincushion.
    """

    def __init__(
        self,
        database: Database,
        cache: CacheCluster,
        pincushion: Pincushion,
        clock: Optional[Clock] = None,
        mode: ConsistencyMode = ConsistencyMode.CONSISTENT,
        default_staleness: float = 30.0,
        new_pin_threshold: float = 5.0,
    ) -> None:
        self.database = database
        self.cache = cache
        self.pincushion = pincushion
        self.clock = clock or SystemClock()
        self.mode = mode
        self.default_staleness = default_staleness
        #: If the freshest pinned snapshot is older than this many seconds
        #: and ``?`` is still available, a database access pins a brand new
        #: snapshot instead of reusing an old one (the paper's policy for
        #: bounding the number of pinned snapshots, section 6.2).
        self.new_pin_threshold = new_pin_threshold
        self.stats = ClientStats()
        self._state: Optional[Union[ReadOnlyState, ReadWriteState]] = None

    # ==================================================================
    # Transaction control
    # ==================================================================
    def begin_ro(self, staleness: Optional[float] = None) -> None:
        """BEGIN-RO: start a read-only transaction.

        ``staleness`` is the maximum age, in seconds, of the snapshot the
        transaction is willing to observe; it defaults to the client's
        ``default_staleness``.
        """
        self._check_no_transaction()
        staleness = self.default_staleness if staleness is None else staleness
        fresh = self.pincushion.fresh_snapshots(staleness, mark_in_use=True)
        held = [snapshot.snapshot_id for snapshot in fresh]
        pinned_by_us: list = []
        if not held:
            # No sufficiently fresh pinned snapshot exists: pin the latest
            # one now (paper section 5.4) so the pin set always has at least
            # one concrete serialization point.
            snapshot_id = self._pin_new_snapshot()
            held = [snapshot_id]
            pinned_by_us = [snapshot_id]
        pin_set = PinSet(held, star=True)
        self._state = ReadOnlyState(
            staleness=staleness,
            pin_set=pin_set,
            initial_bounds=pin_set.bounds(),
            held_snapshot_ids=list(held),
            pinned_by_us=pinned_by_us,
        )
        self.stats.ro_transactions += 1

    def begin_rw(self) -> None:
        """BEGIN-RW: start a read/write transaction (bypasses the cache)."""
        self._check_no_transaction()
        self._state = ReadWriteState(db_transaction=self.database.begin_rw())
        self.stats.rw_transactions += 1

    def commit(self) -> int:
        """COMMIT: finish the current transaction.

        Returns the timestamp the transaction ran at (read-only) or committed
        at (read/write).  Applications can carry this timestamp into the
        staleness bound of a later transaction to guarantee they never
        observe time moving backwards (paper section 2.2).
        """
        state = self._require_transaction()
        try:
            if isinstance(state, ReadWriteState):
                timestamp = state.db_transaction.commit()
            else:
                timestamp = self._finish_read_only(state, abort=False)
            self.stats.commits += 1
            return timestamp
        finally:
            self._state = None

    def abort(self) -> None:
        """ABORT: abandon the current transaction."""
        state = self._require_transaction()
        try:
            if isinstance(state, ReadWriteState):
                state.db_transaction.abort()
            else:
                self._finish_read_only(state, abort=True)
            self.stats.aborts += 1
        finally:
            self._state = None

    @property
    def in_transaction(self) -> bool:
        """True while a transaction is open."""
        return self._state is not None

    @property
    def current_read_only(self) -> bool:
        """True if the open transaction is read-only."""
        state = self._require_transaction()
        return state.read_only

    @contextmanager
    def read_only(self, staleness: Optional[float] = None) -> Iterator["TxCacheClient"]:
        """Context manager form of BEGIN-RO ... COMMIT/ABORT."""
        self.begin_ro(staleness)
        try:
            yield self
        except BaseException:
            if self.in_transaction:
                self.abort()
            raise
        else:
            if self.in_transaction:
                self.commit()

    @contextmanager
    def read_write(self) -> Iterator["TxCacheClient"]:
        """Context manager form of BEGIN-RW ... COMMIT/ABORT."""
        self.begin_rw()
        try:
            yield self
        except BaseException:
            if self.in_transaction:
                self.abort()
            raise
        else:
            if self.in_transaction:
                self.commit()

    # ==================================================================
    # Cacheable functions
    # ==================================================================
    def make_cacheable(
        self, fn: Callable[..., Any], name: Optional[str] = None
    ) -> Callable[..., Any]:
        """MAKE-CACHEABLE: wrap a pure function so its results are cached.

        The wrapper checks the cache for a previous call with the same
        arguments that is consistent with the current transaction's snapshot;
        on a miss it runs ``fn``, records the validity interval and
        invalidation tags of everything it observed, and stores the result.
        """
        key_identity: Union[Callable[..., Any], str] = name if name is not None else fn
        display_name = name or getattr(fn, "__qualname__", repr(fn))

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            return self._call_cacheable(fn, key_identity, display_name, args, kwargs)

        wrapper.__txcache_wrapped__ = fn  # type: ignore[attr-defined]
        wrapper.__txcache_name__ = display_name  # type: ignore[attr-defined]
        return wrapper

    def cacheable(
        self, fn: Optional[Callable[..., Any]] = None, *, name: Optional[str] = None
    ) -> Callable[..., Any]:
        """Decorator form of :meth:`make_cacheable`.

        Usable both bare (``@client.cacheable``) and with arguments
        (``@client.cacheable(name="get_item")``).
        """
        if fn is not None:
            return self.make_cacheable(fn, name=name)

        def decorator(inner: Callable[..., Any]) -> Callable[..., Any]:
            return self.make_cacheable(inner, name=name)

        return decorator

    # ==================================================================
    # Database access within a transaction
    # ==================================================================
    def query(self, query: Query) -> QueryResult:
        """Run a query inside the current transaction.

        In a read-only transaction the query runs at the transaction's
        (lazily chosen) snapshot; its validity interval narrows the pin set
        and is folded into any enclosing cacheable functions.
        """
        state = self._require_transaction()
        if isinstance(state, ReadWriteState):
            return state.db_transaction.query(query)

        db_tx = self._ensure_db_transaction(state)
        result = db_tx.query(query)
        self.stats.db_queries += 1
        if self.mode is ConsistencyMode.CONSISTENT:
            state.pin_set.restrict(result.validity)
        state.accumulate_into_frames(result.validity, result.tags)
        return result

    def insert(self, table: str, values: Dict[str, Any]):
        """Insert a row (read/write transactions only)."""
        return self._require_rw().db_transaction.insert(table, values)

    def update(self, table: str, predicate: Predicate, changes: Dict[str, Any]) -> int:
        """Update matching rows (read/write transactions only)."""
        return self._require_rw().db_transaction.update(table, predicate, changes)

    def delete(self, table: str, predicate: Predicate) -> int:
        """Delete matching rows (read/write transactions only)."""
        return self._require_rw().db_transaction.delete(table, predicate)

    # ==================================================================
    # Internals: cacheable call handling
    # ==================================================================
    def _call_cacheable(
        self,
        fn: Callable[..., Any],
        key_identity: Union[Callable[..., Any], str],
        display_name: str,
        args: tuple,
        kwargs: dict,
    ) -> Any:
        state = self._state
        if state is None:
            raise NotInTransactionError(
                f"cacheable function {display_name!r} called outside a transaction"
            )

        # Read/write transactions bypass the cache entirely; NO_CACHE mode
        # does so for read-only transactions as well.
        if isinstance(state, ReadWriteState) or self.mode is ConsistencyMode.NO_CACHE:
            self.stats.record_bypass()
            return fn(*args, **kwargs)

        key = cache_key(key_identity, args, kwargs)
        lookup_bounds = self._lookup_bounds(state)
        # One batched round trip fetches both the lookup over the pin-set
        # bounds and the statistics-free probe over the transaction's
        # original staleness window that classifies an eventual miss, so a
        # networked transport pays a single RPC either way.
        probe_bounds = self._probe_bounds(state)
        requests = [LookupRequest(key, lookup_bounds[0], lookup_bounds[1])]
        if probe_bounds != lookup_bounds:
            requests.append(LookupRequest(key, probe_bounds[0], probe_bounds[1], probe=True))
        responses = self.cache.multi_lookup(requests)
        self.stats.cache_rpcs += 1
        result = responses[0]
        probe_hit = responses[1].hit if len(responses) > 1 else result.hit

        if result.hit:
            usable = True
            if self.mode is ConsistencyMode.CONSISTENT:
                usable = state.pin_set.would_survive(result.interval)
            if usable:
                if self.mode is ConsistencyMode.CONSISTENT:
                    state.pin_set.restrict(result.interval)
                state.accumulate_into_frames(result.raw_interval, result.tags)
                self.stats.record_hit()
                return result.value

        self.stats.record_miss(self._classify_miss(result, probe_hit))
        return self._execute_and_store(state, fn, key, display_name, args, kwargs)

    def _execute_and_store(
        self,
        state: ReadOnlyState,
        fn: Callable[..., Any],
        key: str,
        display_name: str,
        args: tuple,
        kwargs: dict,
    ) -> Any:
        frame = CacheableFrame(function_name=display_name, key=key)
        state.frames.append(frame)
        try:
            value = fn(*args, **kwargs)
        finally:
            state.frames.pop()
        interval = frame.validity
        tags = frozenset(frame.tags) if interval.unbounded else frozenset()
        self.cache.put(key, value, interval, tags)
        # A replicated put fans out to the key's replica set, so it costs one
        # round trip per replica actually in the ring (one with
        # replication_factor=1, the paper's deployment; fewer than R after a
        # crash shrinks the ring below the factor).
        self.stats.cache_rpcs += max(1, len(self.cache.replicas_for(key)))
        # The enclosing functions (if any) already accumulated everything the
        # inner function observed, because database/cache observations are
        # folded into every frame on the stack as they happen.
        return value

    def _lookup_bounds(self, state: ReadOnlyState) -> tuple:
        if self.mode is ConsistencyMode.NO_CONSISTENCY:
            # Accept anything fresh enough, ignoring what we already read.
            bounds = state.initial_bounds
            if bounds is None:  # pragma: no cover - begin_ro guarantees bounds
                return (0, _FAR_FUTURE)
            return (bounds[0], _FAR_FUTURE)
        bounds = state.pin_set.bounds()
        if bounds is None:  # pragma: no cover - begin_ro guarantees bounds
            raise TxCacheError("pin set has no concrete timestamps")
        return bounds

    def _probe_bounds(self, state: ReadOnlyState) -> tuple:
        """The transaction's original staleness window (miss classification).

        A miss is a consistency miss if a lookup over this window — ignoring
        the narrowing caused by data already read — would have hit.
        """
        initial = state.initial_bounds
        lo = initial[0] if initial else 0
        return (lo, _FAR_FUTURE)

    @staticmethod
    def _classify_miss(result, probe_hit: bool) -> MissType:
        """Classify a miss as compulsory, stale/capacity, or consistency.

        A degraded result (the responsible cache node was unreachable and
        failure-aware routing synthesized a miss) is its own category: it
        says nothing about whether the key was ever cached.
        """
        if result.degraded:
            return MissType.DEGRADED
        if not result.key_ever_stored:
            return MissType.COMPULSORY
        if probe_hit:
            return MissType.CONSISTENCY
        return MissType.STALE_OR_CAPACITY

    # ==================================================================
    # Internals: snapshots and database transactions
    # ==================================================================
    def _ensure_db_transaction(self, state: ReadOnlyState):
        """Choose a timestamp and open the underlying DB transaction lazily."""
        if state.db_transaction is not None:
            return state.db_transaction

        if self.mode is ConsistencyMode.CONSISTENT:
            chosen = self._choose_timestamp(state)
        else:
            # Baseline modes behave like an unmodified deployment: database
            # reads simply run against the latest committed state.
            chosen = self.database.latest_timestamp
        state.chosen_timestamp = chosen
        state.db_transaction = self.database.begin_ro(snapshot_id=chosen)
        return state.db_transaction

    def _choose_timestamp(self, state: ReadOnlyState) -> int:
        """The paper's timestamp-selection policy (section 6.2).

        Prefer the most recent timestamp in the pin set; but if that
        timestamp is older than ``new_pin_threshold`` seconds and ``?`` is
        still available, pin a fresh snapshot instead so transactions do not
        keep piling onto an ageing snapshot.
        """
        pin_set = state.pin_set
        most_recent = pin_set.most_recent()
        if most_recent is None:
            if not pin_set.has_star:  # pragma: no cover - invariant 2
                raise TxCacheError("pin set has neither timestamps nor ?")
            fresh_ts = self._pin_new_snapshot()
            state.pinned_by_us.append(fresh_ts)
            state.held_snapshot_ids.append(fresh_ts)
            pin_set.reify_star(fresh_ts)
            return fresh_ts

        if pin_set.has_star:
            age = self.clock.now() - self._wallclock_of_snapshot(most_recent)
            if age > self.new_pin_threshold:
                fresh_ts = self._pin_new_snapshot()
                state.pinned_by_us.append(fresh_ts)
                state.held_snapshot_ids.append(fresh_ts)
                pin_set.reify_star(fresh_ts)
                return fresh_ts
        return most_recent

    def _pin_new_snapshot(self) -> int:
        """Pin the database's latest snapshot and register it."""
        snapshot_id = self.database.pin_latest()
        self.pincushion.register(
            snapshot_id, self.database.wallclock_of(snapshot_id), in_use=True
        )
        self.stats.pins_created += 1
        return snapshot_id

    def _wallclock_of_snapshot(self, snapshot_id: int) -> float:
        record = self.pincushion.snapshot(snapshot_id)
        if record is not None:
            return record.wallclock
        return self.database.wallclock_of(snapshot_id)

    def _finish_read_only(self, state: ReadOnlyState, abort: bool) -> int:
        if state.frames:
            raise TxCacheError(
                "transaction finished while cacheable functions are still executing"
            )
        if state.db_transaction is not None and state.db_transaction.active:
            if abort:
                state.db_transaction.abort()
            else:
                state.db_transaction.commit()
        self.pincushion.release(state.held_snapshot_ids)
        if state.chosen_timestamp is not None:
            return state.chosen_timestamp
        most_recent = state.pin_set.most_recent()
        return most_recent if most_recent is not None else self.database.latest_timestamp

    # ==================================================================
    # Internals: transaction-state plumbing
    # ==================================================================
    def _check_no_transaction(self) -> None:
        if self._state is not None:
            raise TransactionInProgressError("a transaction is already in progress")

    def _require_transaction(self) -> Union[ReadOnlyState, ReadWriteState]:
        if self._state is None:
            raise NotInTransactionError("no transaction in progress")
        return self._state

    def _require_rw(self) -> ReadWriteState:
        state = self._require_transaction()
        if not isinstance(state, ReadWriteState):
            raise NotInTransactionError(
                "write operations require a read/write transaction (BEGIN-RW)"
            )
        return state

    # ==================================================================
    # Introspection helpers (used by tests and the benchmark harness)
    # ==================================================================
    @property
    def current_pin_set(self) -> Optional[PinSet]:
        """The open read-only transaction's pin set, if any."""
        state = self._state
        if isinstance(state, ReadOnlyState):
            return state.pin_set
        return None

    @property
    def current_timestamp(self) -> Optional[int]:
        """The reified snapshot timestamp of the open transaction, if any."""
        state = self._state
        if isinstance(state, ReadOnlyState):
            return state.chosen_timestamp
        if isinstance(state, ReadWriteState):
            return state.db_transaction.snapshot_timestamp
        return None
