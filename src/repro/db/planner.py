"""Access-method selection (a miniature query planner).

The planner inspects a select's predicate and the available indexes and picks
one of three access paths, mirroring the access methods the paper's modified
PostgreSQL distinguishes when assigning invalidation tags (section 5.3):

* **index equality lookup** — when the predicate contains an ``Eq`` (or
  ``In``) conjunct on an indexed column.  Produces precise ``TABLE:KEY``
  invalidation tags, one per looked-up key.
* **index range scan** — when the predicate contains a ``Range`` conjunct on
  an ordered index.  Produces a wildcard ``TABLE:?`` tag.
* **sequential scan** — everything else.  Also a wildcard tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, List, Optional, Tuple

from repro.db.invalidation import InvalidationTag
from repro.db.query import And, Eq, In, Predicate, Range, Select
from repro.db.table import Table
from repro.db.tuples import TupleVersion

__all__ = ["AccessPath", "IndexEqualityPath", "IndexRangePath", "SeqScanPath", "plan_select"]


@dataclass(frozen=True)
class AccessPath:
    """Base class: how the executor obtains candidate tuple versions."""

    table: str

    def candidates(self, table: Table) -> Iterable[TupleVersion]:
        """Yield every candidate version (visible or not)."""
        raise NotImplementedError

    def tags(self) -> FrozenSet[InvalidationTag]:
        """Invalidation tags describing what this access depends on."""
        raise NotImplementedError

    @property
    def kind(self) -> str:
        """Short name of the access method (for diagnostics and stats)."""
        raise NotImplementedError


@dataclass(frozen=True)
class IndexEqualityPath(AccessPath):
    """Equality lookup(s) against an index."""

    column: str = ""
    keys: Tuple[Any, ...] = ()

    def candidates(self, table: Table) -> Iterable[TupleVersion]:
        index = table.index_on(self.column)
        for key in self.keys:
            yield from index.lookup(key)

    def tags(self) -> FrozenSet[InvalidationTag]:
        return frozenset(
            InvalidationTag.key(self.table, self.column, key) for key in self.keys
        )

    @property
    def kind(self) -> str:
        return "index_eq"


@dataclass(frozen=True)
class IndexRangePath(AccessPath):
    """Range scan against an ordered index."""

    column: str = ""
    lo: Optional[Any] = None
    hi: Optional[Any] = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    def candidates(self, table: Table) -> Iterable[TupleVersion]:
        index = table.ordered_index_on(self.column)
        assert index is not None, "planner selected a range path without an ordered index"
        yield from index.range_scan(self.lo, self.hi, self.lo_inclusive, self.hi_inclusive)

    def tags(self) -> FrozenSet[InvalidationTag]:
        return frozenset({InvalidationTag.wildcard(self.table)})

    @property
    def kind(self) -> str:
        return "index_range"


@dataclass(frozen=True)
class SeqScanPath(AccessPath):
    """Full sequential scan of the table."""

    def candidates(self, table: Table) -> Iterable[TupleVersion]:
        yield from table.scan_versions()

    def tags(self) -> FrozenSet[InvalidationTag]:
        return frozenset({InvalidationTag.wildcard(self.table)})

    @property
    def kind(self) -> str:
        return "seq_scan"


def _conjuncts(predicate: Predicate) -> List[Predicate]:
    """Flatten a predicate into top-level AND conjuncts."""
    if isinstance(predicate, And):
        return list(predicate.parts)
    return [predicate]


def plan_select(select: Select, table: Table) -> AccessPath:
    """Choose the access path for ``select`` against ``table``.

    Preference order: index equality lookup, then index range scan, then
    sequential scan.  The full predicate is always re-applied by the
    executor, so the path only needs to be a superset of the matching rows.
    """
    conjuncts = _conjuncts(select.predicate)

    # Index equality lookup: Eq or In on any indexed column.
    for part in conjuncts:
        if isinstance(part, Eq) and table.has_index_on(part.column):
            return IndexEqualityPath(table=select.table, column=part.column, keys=(part.value,))
        if isinstance(part, In) and table.has_index_on(part.column) and part.values:
            return IndexEqualityPath(table=select.table, column=part.column, keys=tuple(part.values))

    # Index range scan: Range on an ordered index.
    for part in conjuncts:
        if isinstance(part, Range) and table.ordered_index_on(part.column) is not None:
            return IndexRangePath(
                table=select.table,
                column=part.column,
                lo=part.lo,
                hi=part.hi,
                lo_inclusive=part.lo_inclusive,
                hi_inclusive=part.hi_inclusive,
            )

    return SeqScanPath(table=select.table)
