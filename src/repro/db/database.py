"""The database server facade.

:class:`Database` ties together the storage, executor, transaction machinery,
snapshot pinning, and the invalidation stream, exposing the interface the
TxCache library expects from its modified PostgreSQL (paper section 5):

* ``begin_rw()`` — read/write transactions run on the latest snapshot and
  publish invalidation tags at commit;
* ``begin_ro(snapshot_id)`` — read-only transactions can run against the
  latest state or against a previously *pinned* snapshot (``BEGIN
  SNAPSHOTID``);
* ``pin_latest()`` / ``unpin()`` — retain a recent snapshot so later queries
  can still run at that point in time (``PIN`` / ``UNPIN``);
* per-query validity intervals and invalidation tags via the executor;
* an ordered invalidation stream published on an
  :class:`repro.comm.multicast.InvalidationBus`;
* a vacuum that reclaims tuple versions no pinned snapshot can see.

Thread safety
-------------
The coarse-grained pieces concurrent clients contend on are protected by
:attr:`Database.commit_lock`, a reentrant lock serializing the commit
critical section (timestamp allocation, version stamping, and the
invalidation *enqueue* — held together so the bus always sees commits in
timestamp order), snapshot pinning, and vacuum.  Invalidation *delivery*
runs after the lock is released (:meth:`Database.flush_invalidations`):
it can block on networked cache nodes, and a hung node must never stall
readers queued on the commit lock.  Read-only queries run lock-free
against the no-overwrite storage: a reader's snapshot timestamp makes
versions stamped by later commits invisible, so the only requirement is
that a version's ``xmin`` assignment is a single reference store (it is).
The lock order is database -> invalidation bus -> cache server; no path
takes them in the other direction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.clock import Clock, SystemClock
from repro.comm.multicast import InvalidationBus, InvalidationMessage
from repro.db.errors import SnapshotTooOldError, UnknownTableError
from repro.db.executor import Executor
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.db.transactions import ReadOnlyTransaction, ReadWriteTransaction
from repro.db.tuples import next_uncommitted_mark_id

__all__ = ["Database", "DatabaseStats"]


@dataclass
class DatabaseStats:
    """Aggregate counters for one database instance."""

    commits: int = 0
    aborts: int = 0
    ro_transactions: int = 0
    rw_transactions: int = 0
    invalidations_published: int = 0
    pins: int = 0
    unpins: int = 0
    vacuum_runs: int = 0
    versions_vacuumed: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


class Database:
    """An in-process multiversion database with TxCache support."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        invalidation_bus: Optional[InvalidationBus] = None,
        track_validity: bool = True,
        name: str = "db",
    ) -> None:
        self.name = name
        self.clock = clock or SystemClock()
        self.invalidation_bus = invalidation_bus or InvalidationBus()
        self._catalog: Dict[str, Table] = {}
        self.executor = Executor(self._catalog, track_validity=track_validity)
        self.stats = DatabaseStats()
        #: Serializes commits (timestamp allocation through invalidation
        #: publish), pin bookkeeping, and vacuum; see "Thread safety" above.
        #: Reentrant because a committing transaction re-enters the database
        #: (allocate_commit_timestamp, register_commit) under the same lock.
        self.commit_lock = threading.RLock()
        #: last committed logical timestamp; the initial load commits at 0.
        self._last_committed = 0
        #: logical timestamp -> wall-clock time of the commit.
        self._commit_wallclock: Dict[int, float] = {0: self.clock.now()}
        #: pinned snapshot timestamp -> pin reference count.
        self._pins: Dict[int, int] = {}
        #: snapshots older than this may have been vacuumed away.
        self._oldest_available = 0

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from ``schema`` and register it in the catalog."""
        if schema.name in self._catalog:
            raise ValueError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._catalog[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        """Return the table named ``name``."""
        try:
            return self._catalog[name]
        except KeyError:
            raise UnknownTableError(f"unknown table {name!r}") from None

    @property
    def tables(self) -> Dict[str, Table]:
        """The full table catalog."""
        return dict(self._catalog)

    def bulk_load(self, table_name: str, rows) -> int:
        """Load initial data outside any transaction.

        Rows become visible at timestamp 0 (the initial state of the
        database) and no invalidations are published — this models restoring
        a database snapshot before an experiment, as the paper does.
        """
        table = self.table(table_name)
        count = 0
        for values in rows:
            table.add_version(dict(values), xmin=0)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Timestamps and wall-clock mapping
    # ------------------------------------------------------------------
    @property
    def latest_timestamp(self) -> int:
        """Commit timestamp of the most recently committed transaction.

        Read under the commit lock: a writer holds it from timestamp
        allocation until its versions are stamped, so a reader can never be
        handed a snapshot id whose commit is only half-applied.
        """
        with self.commit_lock:
            return self._last_committed

    def allocate_commit_timestamp(self) -> int:
        """Allocate the next commit timestamp (called by committing writers).

        Callers must hold :attr:`commit_lock` until the commit is registered
        (``ReadWriteTransaction.commit`` does), so timestamps are published
        on the invalidation stream in allocation order.
        """
        with self.commit_lock:
            self._last_committed += 1
            return self._last_committed

    def register_commit(self, timestamp: int, tags: frozenset) -> None:
        """Record a commit and enqueue its invalidation message.

        The message is only *enqueued* here (cheap, order-validated); the
        committer delivers it via :meth:`flush_invalidations` after
        releasing the commit lock.  Delivery can block on networked cache
        nodes, and holding the commit lock across that would let one hung
        node stall every reader and writer queued on the lock.
        """
        with self.commit_lock:
            self._commit_wallclock[timestamp] = self.clock.now()
            self.stats.commits += 1
            if tags:
                self.invalidation_bus.enqueue(
                    InvalidationMessage(timestamp=timestamp, tags=tuple(tags))
                )
                self.stats.invalidations_published += 1

    def flush_invalidations(self) -> None:
        """Deliver enqueued invalidations (committers call this unlocked).

        A no-op when the bus is in deferred mode (tests drive delivery
        explicitly there).  Safe even when a node is slow or dead: this is
        the paper's asynchronous multicast — a node that has not yet seen
        commit T simply cannot serve still-valid claims at T (its watermark
        caps ``effective_interval``), so consistency never depends on
        delivery happening inside the commit critical section.
        """
        if self.invalidation_bus.synchronous:
            self.invalidation_bus.deliver_pending()

    def wallclock_of(self, timestamp: int) -> float:
        """Wall-clock time at which ``timestamp`` committed."""
        try:
            return self._commit_wallclock[timestamp]
        except KeyError:
            raise SnapshotTooOldError(f"no commit record for timestamp {timestamp}") from None

    def newest_timestamp_at_or_before(self, wallclock: float) -> int:
        """Newest commit timestamp whose commit time is <= ``wallclock``.

        Used to translate a wall-clock staleness horizon (e.g. "30 seconds
        ago") into a logical timestamp, for example when eagerly evicting
        cache entries too stale to satisfy any transaction.
        """
        with self.commit_lock:  # a committer mutates the mapping mid-commit
            best = 0
            for timestamp, committed_at in self._commit_wallclock.items():
                if committed_at <= wallclock and timestamp > best:
                    best = timestamp
            return best

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin_rw(self) -> ReadWriteTransaction:
        """Start a read/write transaction on the latest snapshot."""
        with self.commit_lock:  # counters are read-modify-writes too
            self.stats.rw_transactions += 1
        return ReadWriteTransaction(self, self.latest_timestamp, next_uncommitted_mark_id())

    def begin_ro(self, snapshot_id: Optional[int] = None) -> ReadOnlyTransaction:
        """Start a read-only transaction.

        With ``snapshot_id`` the transaction runs at that (pinned) snapshot,
        mirroring ``BEGIN SNAPSHOTID``; otherwise it runs at the latest
        committed state.
        """
        if snapshot_id is None:
            snapshot_id = self.latest_timestamp
        else:
            if snapshot_id > self.latest_timestamp:
                raise SnapshotTooOldError(
                    f"snapshot {snapshot_id} is in the future (latest is {self._last_committed})"
                )
            if snapshot_id < self._oldest_available:
                raise SnapshotTooOldError(
                    f"snapshot {snapshot_id} has been vacuumed "
                    f"(oldest available is {self._oldest_available})"
                )
        return ReadOnlyTransaction(self, snapshot_id)

    # ------------------------------------------------------------------
    # Snapshot pinning (PIN / UNPIN)
    # ------------------------------------------------------------------
    def pin_latest(self) -> int:
        """Pin the latest snapshot and return its id (the latest commit ts)."""
        with self.commit_lock:
            snapshot_id = self._last_committed
            self._pins[snapshot_id] = self._pins.get(snapshot_id, 0) + 1
            self.stats.pins += 1
            return snapshot_id

    def unpin(self, snapshot_id: int) -> None:
        """Release one pin on ``snapshot_id``."""
        with self.commit_lock:
            count = self._pins.get(snapshot_id, 0)
            if count <= 1:
                self._pins.pop(snapshot_id, None)
            else:
                self._pins[snapshot_id] = count - 1
            self.stats.unpins += 1

    @property
    def pinned_snapshots(self) -> Dict[int, int]:
        """Mapping of pinned snapshot id to pin count."""
        return dict(self._pins)

    def is_pinned(self, snapshot_id: int) -> bool:
        """True if ``snapshot_id`` currently has at least one pin."""
        return snapshot_id in self._pins

    @property
    def oldest_available_snapshot(self) -> int:
        """Oldest snapshot timestamp guaranteed to still be readable."""
        return self._oldest_available

    # ------------------------------------------------------------------
    # Vacuum
    # ------------------------------------------------------------------
    def vacuum(self) -> int:
        """Reclaim tuple versions invisible to every retained snapshot.

        The horizon is the oldest pinned snapshot (or the latest timestamp if
        nothing is pinned); any version superseded at or before the horizon
        can no longer be seen and is physically removed.  Returns the number
        of versions removed.
        """
        from repro.db.vacuum import vacuum_database

        with self.commit_lock:
            removed, horizon = vacuum_database(self)
            self._oldest_available = horizon
            self.stats.vacuum_runs += 1
            self.stats.versions_vacuumed += removed
            return removed
