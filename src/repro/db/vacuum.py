"""Version reclamation (the "vacuum cleaner").

The paper relies on PostgreSQL's no-overwrite storage manager: old tuple
versions stay around until an asynchronous vacuum process removes them, which
is exactly what lets pinned snapshots keep reading the past cheaply.  This
module reproduces the reclamation step: a tuple version may be removed once
no retained snapshot — neither a pinned snapshot nor the latest state — can
see it any more.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.db.tuples import TupleVersion, UncommittedMark

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["vacuum_database", "vacuum_horizon"]


def vacuum_horizon(database: "Database") -> int:
    """Oldest timestamp any retained snapshot might still read.

    This is the minimum of the pinned snapshot timestamps and the latest
    committed timestamp; versions dead at or before this point are safe to
    remove.
    """
    pinned = database.pinned_snapshots
    horizon = database.latest_timestamp
    if pinned:
        horizon = min(horizon, min(pinned))
    return horizon


def vacuum_database(database: "Database") -> Tuple[int, int]:
    """Remove versions invisible to every retained snapshot.

    Returns ``(removed_count, horizon)``.
    """
    horizon = vacuum_horizon(database)
    removed = 0
    for table in database.tables.values():
        dead: List[TupleVersion] = []
        for version in table.scan_versions():
            xmax = version.xmax
            if xmax is None or isinstance(xmax, UncommittedMark):
                continue
            if isinstance(version.xmin, UncommittedMark):
                continue
            # Visible at ts only if xmax > ts, so a version with
            # xmax <= horizon is invisible to the horizon and to everything
            # newer; nothing older than the horizon is retained.
            if xmax <= horizon:
                dead.append(version)
        for version in dead:
            table.remove_version(version)
        removed += len(dead)
    return removed, horizon
