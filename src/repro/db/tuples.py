"""Tuple versions and snapshot visibility.

The storage engine is *no-overwrite* (like the POSTGRES storage manager the
paper builds on): every update creates a new :class:`TupleVersion` and marks
the old one deleted.  Each version carries the commit timestamp of its
creating transaction (``xmin``) and, once superseded or deleted, the commit
timestamp of the deleting transaction (``xmax``).  A version is visible to a
snapshot taken at logical timestamp ``ts`` if it was created at or before
``ts`` and not deleted at or before ``ts``.

Versions created or deleted by an in-flight read/write transaction carry an
:class:`UncommittedMark` instead of a timestamp; such versions are visible
only to the owning transaction, mirroring how PostgreSQL treats uncommitted
tuples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.interval import Interval

__all__ = ["UncommittedMark", "TupleVersion", "visible_at", "validity_of"]

_mark_counter = itertools.count(1)


@dataclass(frozen=True)
class UncommittedMark:
    """Placeholder for an xmin/xmax set by a not-yet-committed transaction."""

    tx_id: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<uncommitted tx {self.tx_id}>"


Stamp = Union[int, UncommittedMark]


@dataclass
class TupleVersion:
    """One version of a logical row.

    Attributes:
        row_id: identity of the logical row; all versions of the same row
            share it.
        values: column name to value mapping for this version.
        xmin: commit timestamp of the creating transaction (or an
            :class:`UncommittedMark` while that transaction is in flight).
        xmax: commit timestamp of the deleting/superseding transaction,
            ``None`` while the version is current.
    """

    row_id: int
    values: Dict[str, Any]
    xmin: Stamp
    xmax: Optional[Stamp] = None
    _size: int = field(default=0, repr=False)

    def is_current(self) -> bool:
        """True if no committed or pending transaction has deleted it."""
        return self.xmax is None

    def created_by(self, tx_id: int) -> bool:
        """True if this version was created by the given in-flight transaction."""
        return isinstance(self.xmin, UncommittedMark) and self.xmin.tx_id == tx_id

    def deleted_by(self, tx_id: int) -> bool:
        """True if this version was deleted by the given in-flight transaction."""
        return isinstance(self.xmax, UncommittedMark) and self.xmax.tx_id == tx_id


def visible_at(version: TupleVersion, timestamp: int, tx_id: Optional[int] = None) -> bool:
    """Snapshot visibility check.

    A version is visible at ``timestamp`` if its creating transaction
    committed at or before ``timestamp`` and it has not been deleted by a
    transaction that committed at or before ``timestamp``.  When ``tx_id`` is
    given (a read/write transaction reading its own writes), versions created
    by that transaction are visible and versions it deleted are not.
    """
    xmin = version.xmin
    if isinstance(xmin, UncommittedMark):
        if tx_id is None or xmin.tx_id != tx_id:
            return False
    elif xmin > timestamp:
        return False

    xmax = version.xmax
    if xmax is None:
        return True
    if isinstance(xmax, UncommittedMark):
        # Deleted by an in-flight transaction: invisible only to that
        # transaction itself; other snapshots still see the old version.
        return not (tx_id is not None and xmax.tx_id == tx_id)
    return xmax > timestamp


def validity_of(version: TupleVersion) -> Optional[Interval]:
    """Return the committed validity interval of a version.

    Returns ``None`` if the version's creation has not committed yet (its
    validity is unknown and it must not contribute to validity tracking).
    An uncommitted deletion leaves the interval unbounded, since the deletion
    is not yet visible to anyone else.
    """
    if isinstance(version.xmin, UncommittedMark):
        return None
    hi = version.xmax if not isinstance(version.xmax, UncommittedMark) else None
    return Interval(version.xmin, hi)


def next_uncommitted_mark_id() -> int:
    """Allocate a unique id for an in-flight read/write transaction."""
    return next(_mark_counter)
