"""Secondary indexes over tuple versions.

Indexes map column values to tuple *versions* (not logical rows).  The query
executor uses them as access methods: an index equality lookup yields every
version whose indexed column equals the search key, and the executor then
applies the snapshot visibility check.  Versions that match the key but fail
the visibility check feed the invalidity mask (phantom tracking, paper
section 5.2), which is why indexes deliberately return invisible versions as
well.

Two kinds are provided, matching the paper's access-method taxonomy:

* :class:`HashIndex` — equality lookups only; produces precise
  ``TABLE:KEY`` invalidation tags.
* :class:`OrderedIndex` — also supports range scans; range scans produce
  wildcard ``TABLE:?`` tags because the set of keys they depend on is open.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.db.errors import ConstraintError
from repro.db.schema import IndexSpec
from repro.db.tuples import TupleVersion

__all__ = ["HashIndex", "OrderedIndex", "build_index"]


class HashIndex:
    """Equality-only index from column value to tuple versions."""

    def __init__(self, spec: IndexSpec) -> None:
        self.spec = spec
        self.column = spec.column
        self.unique = spec.unique
        self._buckets: Dict[Any, List[TupleVersion]] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, version: TupleVersion) -> None:
        """Index a newly created tuple version."""
        key = version.values.get(self.column)
        bucket = self._buckets.setdefault(key, [])
        if self.unique:
            for existing in bucket:
                if existing.is_current() and existing.row_id != version.row_id:
                    raise ConstraintError(
                        f"unique index {self.spec.name} violated for key {key!r}"
                    )
        bucket.append(version)

    def remove(self, version: TupleVersion) -> None:
        """Drop a version (called by vacuum once it is dead to all snapshots)."""
        key = version.values.get(self.column)
        bucket = self._buckets.get(key)
        if not bucket:
            return
        try:
            bucket.remove(version)
        except ValueError:
            pass
        if not bucket:
            del self._buckets[key]

    # ------------------------------------------------------------------
    # Access methods
    # ------------------------------------------------------------------
    def lookup(self, key: Any) -> List[TupleVersion]:
        """All versions (visible or not) whose indexed column equals ``key``."""
        return list(self._buckets.get(key, ()))

    def keys(self) -> Iterator[Any]:
        """Iterate over distinct indexed keys."""
        return iter(self._buckets.keys())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class OrderedIndex(HashIndex):
    """Index supporting both equality lookups and range scans.

    Implemented as a hash index plus a sorted key list maintained with
    ``bisect``; version lists are shared with the hash buckets so insertion
    and removal stay cheap.
    """

    def __init__(self, spec: IndexSpec) -> None:
        super().__init__(spec)
        self._sorted_keys: List[Any] = []

    def insert(self, version: TupleVersion) -> None:
        key = version.values.get(self.column)
        existed = key in self._buckets
        super().insert(version)
        if not existed:
            bisect.insort(self._sorted_keys, _orderable(key))

    def remove(self, version: TupleVersion) -> None:
        key = version.values.get(self.column)
        super().remove(version)
        if key not in self._buckets:
            pos = bisect.bisect_left(self._sorted_keys, _orderable(key))
            if pos < len(self._sorted_keys) and self._sorted_keys[pos] == _orderable(key):
                self._sorted_keys.pop(pos)

    def range_scan(
        self,
        lo: Optional[Any] = None,
        hi: Optional[Any] = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterable[TupleVersion]:
        """Yield versions whose indexed key falls in ``[lo, hi]``.

        ``None`` bounds are open.  Versions are yielded in key order.
        """
        keys = self._sorted_keys
        start = 0
        if lo is not None:
            olo = _orderable(lo)
            start = bisect.bisect_left(keys, olo) if lo_inclusive else bisect.bisect_right(keys, olo)
        end = len(keys)
        if hi is not None:
            ohi = _orderable(hi)
            end = bisect.bisect_right(keys, ohi) if hi_inclusive else bisect.bisect_left(keys, ohi)
        for orderable_key in keys[start:end]:
            key = orderable_key.value if isinstance(orderable_key, _NoneLow) else orderable_key
            for version in self._buckets.get(key, ()):
                yield version


class _NoneLow:
    """Wrapper ordering ``None`` keys below everything else."""

    __slots__ = ("value",)

    def __init__(self, value: Any = None) -> None:
        self.value = value

    def __lt__(self, other: object) -> bool:
        return not isinstance(other, _NoneLow)

    def __gt__(self, other: object) -> bool:
        return False

    def __le__(self, other: object) -> bool:
        return True

    def __ge__(self, other: object) -> bool:
        return isinstance(other, _NoneLow)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NoneLow)

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(None)


def _orderable(key: Any) -> Any:
    """Map ``None`` keys onto a totally ordered sentinel."""
    return _NoneLow() if key is None else key


def build_index(spec: IndexSpec) -> HashIndex:
    """Construct the right index implementation for ``spec``."""
    return OrderedIndex(spec) if spec.ordered else HashIndex(spec)
