"""Tables: no-overwrite version storage plus their indexes."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional

from repro.db.errors import UnknownIndexError
from repro.db.index import HashIndex, OrderedIndex, build_index
from repro.db.schema import TableSchema
from repro.db.tuples import Stamp, TupleVersion

__all__ = ["Table"]


class Table:
    """Storage for one table: all versions of all rows, plus indexes.

    The table itself is oblivious to transactions; creating and stamping
    versions is driven by :class:`repro.db.transactions.ReadWriteTransaction`
    and the loader.  The executor reads versions through the scan and index
    accessors and applies visibility itself.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.name = schema.name
        self._row_counter = itertools.count(1)
        #: row_id -> list of versions, oldest first.
        self._rows: Dict[int, List[TupleVersion]] = {}
        self._indexes: Dict[str, HashIndex] = {}
        for spec in schema.all_index_specs():
            self._indexes[spec.column] = build_index(spec)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def primary_key(self) -> str:
        """Name of the primary key column."""
        return self.schema.primary_key

    @property
    def indexes(self) -> Dict[str, HashIndex]:
        """Mapping of indexed column name to index object."""
        return dict(self._indexes)

    def index_on(self, column: str) -> HashIndex:
        """Return the index on ``column`` or raise :class:`UnknownIndexError`."""
        try:
            return self._indexes[column]
        except KeyError:
            raise UnknownIndexError(
                f"table {self.name!r} has no index on column {column!r}"
            ) from None

    def has_index_on(self, column: str) -> bool:
        """True if ``column`` is indexed."""
        return column in self._indexes

    def ordered_index_on(self, column: str) -> Optional[OrderedIndex]:
        """Return an ordered index on ``column`` if one exists."""
        index = self._indexes.get(column)
        return index if isinstance(index, OrderedIndex) else None

    def row_count(self) -> int:
        """Number of logical rows (including rows with only dead versions)."""
        return len(self._rows)

    def version_count(self) -> int:
        """Total number of stored tuple versions."""
        return sum(len(versions) for versions in self._rows.values())

    def current_row_count(self) -> int:
        """Number of rows that still have a current (undeleted) version."""
        return sum(
            1
            for versions in self._rows.values()
            if versions and versions[-1].is_current()
        )

    # ------------------------------------------------------------------
    # Version creation / stamping
    # ------------------------------------------------------------------
    def new_row_id(self) -> int:
        """Allocate a fresh logical row id."""
        return next(self._row_counter)

    def add_version(self, values: Dict[str, Any], xmin: Stamp, row_id: Optional[int] = None) -> TupleVersion:
        """Create and index a new tuple version.

        ``row_id`` defaults to a fresh logical row (an INSERT); supplying an
        existing row id creates a successor version (an UPDATE).
        """
        for column in self.schema.columns:
            column.validate(values.get(column.name))
        unknown = set(values) - set(self.schema.column_names)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)} for table {self.name!r}")
        if row_id is None:
            row_id = self.new_row_id()
        version = TupleVersion(row_id=row_id, values=dict(values), xmin=xmin)
        self._rows.setdefault(row_id, []).append(version)
        for index in self._indexes.values():
            index.insert(version)
        return version

    def remove_version(self, version: TupleVersion) -> None:
        """Physically remove a version (used by abort cleanup and vacuum)."""
        versions = self._rows.get(version.row_id)
        if not versions:
            return
        try:
            versions.remove(version)
        except ValueError:
            return
        if not versions:
            del self._rows[version.row_id]
        for index in self._indexes.values():
            index.remove(version)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan_versions(self) -> Iterator[TupleVersion]:
        """Sequential scan over every stored version."""
        for versions in self._rows.values():
            yield from versions

    def versions_of(self, row_id: int) -> List[TupleVersion]:
        """All versions of one logical row, oldest first."""
        return list(self._rows.get(row_id, ()))

    def current_version_of(self, row_id: int) -> Optional[TupleVersion]:
        """The current (undeleted) version of a row, if any."""
        versions = self._rows.get(row_id)
        if not versions:
            return None
        last = versions[-1]
        return last if last.is_current() else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name} rows={self.row_count()} versions={self.version_count()}>"
