"""Table schemas, columns, and index specifications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["Column", "IndexSpec", "TableSchema"]


@dataclass(frozen=True)
class Column:
    """A column definition.

    Attributes:
        name: column name.
        type: a Python type used for light validation (``object`` disables
            type checking).
        nullable: whether ``None`` is an acceptable value.
    """

    name: str
    type: type = object
    nullable: bool = True

    def validate(self, value: object) -> None:
        """Raise ``TypeError`` if ``value`` does not fit this column."""
        if value is None:
            if not self.nullable:
                raise TypeError(f"column {self.name!r} is not nullable")
            return
        if self.type is not object and not isinstance(value, self.type):
            raise TypeError(
                f"column {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__}"
            )


@dataclass(frozen=True)
class IndexSpec:
    """Specification of a secondary index.

    Attributes:
        column: the indexed column.
        ordered: if True the index supports range scans (a B-tree in the
            paper's PostgreSQL); otherwise it is a hash index supporting only
            equality lookups.
        unique: enforce at most one *current* row per key.
    """

    column: str
    ordered: bool = False
    unique: bool = False

    @property
    def name(self) -> str:
        """Canonical index name, used in diagnostics."""
        kind = "btree" if self.ordered else "hash"
        return f"{kind}:{self.column}"


@dataclass(frozen=True)
class TableSchema:
    """Schema of one table: columns, primary key, and indexes.

    The primary key column always receives a unique hash index; additional
    indexes are declared through ``indexes``.
    """

    name: str
    columns: Tuple[Column, ...]
    primary_key: str
    indexes: Tuple[IndexSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {self.name!r}")
        if self.primary_key not in names:
            raise ValueError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for spec in self.indexes:
            if spec.column not in names:
                raise ValueError(
                    f"index on unknown column {spec.column!r} in table {self.name!r}"
                )

    @staticmethod
    def build(
        name: str,
        columns: Sequence[str | Column],
        primary_key: str,
        indexes: Sequence[str | IndexSpec] = (),
    ) -> "TableSchema":
        """Convenience constructor accepting plain strings.

        ``columns`` may mix :class:`Column` objects and bare column names;
        ``indexes`` may mix :class:`IndexSpec` objects and bare column names
        (which become hash indexes).
        """
        cols = tuple(c if isinstance(c, Column) else Column(c) for c in columns)
        specs = tuple(
            s if isinstance(s, IndexSpec) else IndexSpec(column=s) for s in indexes
        )
        return TableSchema(name=name, columns=cols, primary_key=primary_key, indexes=specs)

    @property
    def column_names(self) -> List[str]:
        """Names of all columns, in declaration order."""
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        """Return the column definition for ``name``."""
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    def all_index_specs(self) -> List[IndexSpec]:
        """All index specs, including the implicit primary-key index."""
        specs = [IndexSpec(column=self.primary_key, ordered=False, unique=True)]
        for spec in self.indexes:
            if spec.column != self.primary_key:
                specs.append(spec)
        return specs
