"""Query and predicate model.

The RUBiS and MediaWiki applications in the paper issue SQL through PHP; this
reproduction uses a small structured query model instead of a SQL parser.
The model is expressive enough for everything the evaluation needs —
predicate selects, nested-loop joins, ordering/limits, and aggregates — while
keeping the planner's access-method choice (and therefore invalidation-tag
assignment) explicit and testable.

Predicates are structured so the planner can recognise index-friendly shapes:

* :class:`Eq` / :class:`In` on an indexed column plan as index equality
  lookups and yield precise ``TABLE:COL=VALUE`` invalidation tags;
* :class:`Range` on an ordered index plans as an index range scan and yields
  a wildcard tag;
* anything else (including :class:`Func`, an arbitrary Python predicate)
  plans as a sequential scan with a wildcard tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

__all__ = [
    "Predicate",
    "TruePredicate",
    "Eq",
    "In",
    "Range",
    "And",
    "Or",
    "Not",
    "Func",
    "Query",
    "Select",
    "Join",
    "Aggregate",
]


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
class Predicate:
    """Base class for row predicates."""

    def matches(self, row: Dict[str, Any]) -> bool:
        """Return True if ``row`` satisfies the predicate."""
        raise NotImplementedError


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row (a full-table select)."""

    def matches(self, row: Dict[str, Any]) -> bool:
        return True


@dataclass(frozen=True)
class Eq(Predicate):
    """``column = value``."""

    column: str
    value: Any

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) == self.value


@dataclass(frozen=True)
class In(Predicate):
    """``column IN (values)``."""

    column: str
    values: Tuple[Any, ...]

    def __init__(self, column: str, values: Sequence[Any]) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) in self.values


@dataclass(frozen=True)
class Range(Predicate):
    """``lo <= column <= hi`` with optional open bounds."""

    column: str
    lo: Optional[Any] = None
    hi: Optional[Any] = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    def matches(self, row: Dict[str, Any]) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        if self.lo is not None:
            if self.lo_inclusive:
                if value < self.lo:
                    return False
            elif value <= self.lo:
                return False
        if self.hi is not None:
            if self.hi_inclusive:
                if value > self.hi:
                    return False
            elif value >= self.hi:
                return False
        return True


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    parts: Tuple[Predicate, ...]

    def __init__(self, *parts: Predicate) -> None:
        flattened = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        object.__setattr__(self, "parts", tuple(flattened))

    def matches(self, row: Dict[str, Any]) -> bool:
        return all(part.matches(row) for part in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates (always planned as a sequential scan)."""

    parts: Tuple[Predicate, ...]

    def __init__(self, *parts: Predicate) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def matches(self, row: Dict[str, Any]) -> bool:
        return any(part.matches(row) for part in self.parts)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate (always planned as a sequential scan)."""

    part: Predicate

    def matches(self, row: Dict[str, Any]) -> bool:
        return not self.part.matches(row)


@dataclass(frozen=True)
class Func(Predicate):
    """Arbitrary Python predicate.  Forces a sequential scan.

    ``description`` is used in diagnostics and plan explanations; the
    function itself must be deterministic and side-effect free.
    """

    fn: Callable[[Dict[str, Any]], bool]
    description: str = "<func>"

    def matches(self, row: Dict[str, Any]) -> bool:
        return bool(self.fn(row))


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
class Query:
    """Base class for executable queries."""


@dataclass(frozen=True)
class Select(Query):
    """Select rows from one table.

    Attributes:
        table: table name.
        predicate: row filter (default: match all rows).
        columns: optional projection (column names to keep).
        order_by: optional column to sort the result by.
        descending: sort direction for ``order_by``.
        limit: optional maximum number of rows returned.  The validity
            interval is still computed over all matching rows, which is
            conservative but always correct.
    """

    table: str
    predicate: Predicate = field(default_factory=TruePredicate)
    columns: Optional[Tuple[str, ...]] = None
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None

    def __init__(
        self,
        table: str,
        predicate: Optional[Predicate] = None,
        columns: Optional[Sequence[str]] = None,
        order_by: Optional[str] = None,
        descending: bool = False,
        limit: Optional[int] = None,
    ) -> None:
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "predicate", predicate or TruePredicate())
        object.__setattr__(self, "columns", tuple(columns) if columns is not None else None)
        object.__setattr__(self, "order_by", order_by)
        object.__setattr__(self, "descending", descending)
        object.__setattr__(self, "limit", limit)


@dataclass(frozen=True)
class Join(Query):
    """Nested-loop join of an outer select against an inner table.

    For every row produced by ``outer``, the executor looks up rows of
    ``inner_table`` whose ``inner_column`` equals the outer row's
    ``outer_column`` (using an index when available), applies
    ``inner_predicate``, and emits the merged row.  Columns of the inner row
    are prefixed with ``inner_prefix`` when it is given, which keeps same-name
    columns from colliding.
    """

    outer: Select
    inner_table: str
    outer_column: str
    inner_column: str
    inner_predicate: Predicate = field(default_factory=TruePredicate)
    inner_prefix: str = ""
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None

    def __init__(
        self,
        outer: Select,
        inner_table: str,
        on: Tuple[str, str],
        inner_predicate: Optional[Predicate] = None,
        inner_prefix: str = "",
        order_by: Optional[str] = None,
        descending: bool = False,
        limit: Optional[int] = None,
    ) -> None:
        object.__setattr__(self, "outer", outer)
        object.__setattr__(self, "inner_table", inner_table)
        object.__setattr__(self, "outer_column", on[0])
        object.__setattr__(self, "inner_column", on[1])
        object.__setattr__(self, "inner_predicate", inner_predicate or TruePredicate())
        object.__setattr__(self, "inner_prefix", inner_prefix)
        object.__setattr__(self, "order_by", order_by)
        object.__setattr__(self, "descending", descending)
        object.__setattr__(self, "limit", limit)


@dataclass(frozen=True)
class Aggregate(Query):
    """Aggregate over the rows of a select.

    Supported functions: ``count``, ``sum``, ``max``, ``min``, ``avg``.
    The result is a single row ``{"value": ...}``; for ``max``/``min`` over
    an empty input the value is ``None``, for ``count``/``sum`` it is ``0``.
    """

    source: Select
    function: str
    column: Optional[str] = None

    _SUPPORTED = ("count", "sum", "max", "min", "avg")

    def __post_init__(self) -> None:
        if self.function not in self._SUPPORTED:
            raise ValueError(f"unsupported aggregate {self.function!r}")
        if self.function != "count" and self.column is None:
            raise ValueError(f"aggregate {self.function!r} requires a column")
