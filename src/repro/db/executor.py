"""Query execution with validity-interval tracking.

This module implements the core of the paper's database modification
(section 5.2): every query result is returned together with its *validity
interval* — the range of logical timestamps over which the result would be
identical — and the set of invalidation tags describing its dependencies.

The validity interval is computed from two pieces:

* the **result tuple validity**: the intersection of the validity intervals
  of every tuple returned (each version knows the commit timestamps that
  created and superseded it);
* the **invalidity mask**: the union of the validity intervals of tuples
  that matched the query predicate but failed the snapshot visibility check
  (phantoms — tuples that *would* have appeared had the query run at a
  different time).

The final interval is the contiguous piece of ``result tuple validity minus
invalidity mask`` containing the query's snapshot timestamp.

Like the paper's modified PostgreSQL, the executor evaluates the query
predicate *before* the visibility check during scans, so the invalidity mask
only accumulates tuples that actually affect this query, keeping validity
intervals as wide as possible.  Setting ``track_validity=False`` reproduces
the stock-database behaviour for the overhead experiment (section 8.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set

from repro.db.errors import UnknownTableError
from repro.db.invalidation import InvalidationTag
from repro.db.planner import plan_select
from repro.db.query import Aggregate, And, Eq, Join, Query, Select
from repro.db.table import Table
from repro.db.tuples import validity_of, visible_at
from repro.interval import Interval, IntervalSet

__all__ = ["QueryResult", "Executor", "ExecutorStats"]


@dataclass(frozen=True)
class QueryResult:
    """The rows of a query plus its consistency metadata.

    Attributes:
        rows: result rows (dicts).
        validity: validity interval of the result (always contains the
            query's snapshot timestamp).
        tags: invalidation tags describing the query's dependencies.
        timestamp: snapshot timestamp the query ran at.
        examined: number of tuple versions inspected (used by the benchmark
            cost model to approximate I/O and CPU work).
        access_methods: access-method kinds used, for diagnostics.
    """

    rows: List[Dict[str, Any]]
    validity: Interval
    tags: FrozenSet[InvalidationTag]
    timestamp: int
    examined: int = 0
    access_methods: tuple = ()

    @property
    def still_valid(self) -> bool:
        """True if the result was current as of the query (unbounded interval)."""
        return self.validity.unbounded

    def scalar(self) -> Any:
        """Return the single value of a one-row, one-column result."""
        if len(self.rows) != 1:
            raise ValueError(f"scalar() on a result with {len(self.rows)} rows")
        row = self.rows[0]
        if len(row) != 1:
            raise ValueError(f"scalar() on a row with {len(row)} columns")
        return next(iter(row.values()))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


@dataclass
class ExecutorStats:
    """Counters describing executor work (reset-able)."""

    queries: int = 0
    tuples_examined: int = 0
    rows_returned: int = 0
    seq_scans: int = 0
    index_lookups: int = 0
    range_scans: int = 0

    def reset(self) -> None:
        self.queries = 0
        self.tuples_examined = 0
        self.rows_returned = 0
        self.seq_scans = 0
        self.index_lookups = 0
        self.range_scans = 0


@dataclass
class _Accumulator:
    """Mutable validity/tag accumulator shared across sub-plans of a query."""

    result_validity: Interval = field(default_factory=lambda: Interval(0, None))
    invalidity_mask: IntervalSet = field(default_factory=IntervalSet)
    tags: Set[InvalidationTag] = field(default_factory=set)
    examined: int = 0
    access_methods: List[str] = field(default_factory=list)


class Executor:
    """Executes queries against a table catalog at a snapshot timestamp."""

    def __init__(self, catalog: Dict[str, Table], track_validity: bool = True) -> None:
        self._catalog = catalog
        self.track_validity = track_validity
        self.stats = ExecutorStats()
        #: callables invoked as ``observer(query, result)`` after every query;
        #: the benchmark cost model uses this to attribute database work.
        self._observers: List = []

    def add_observer(self, observer) -> None:
        """Register a callback invoked with ``(query, result)`` per query."""
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Unregister a previously added observer."""
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def execute(self, query: Query, timestamp: int, tx_id: Optional[int] = None) -> QueryResult:
        """Execute ``query`` at snapshot ``timestamp``.

        ``tx_id`` identifies an in-flight read/write transaction whose own
        uncommitted writes should be visible to it.
        """
        acc = _Accumulator()
        if isinstance(query, Select):
            rows = self._execute_select(query, timestamp, tx_id, acc)
        elif isinstance(query, Join):
            rows = self._execute_join(query, timestamp, tx_id, acc)
        elif isinstance(query, Aggregate):
            rows = self._execute_aggregate(query, timestamp, tx_id, acc)
        else:
            raise TypeError(f"unsupported query type {type(query).__name__}")

        self.stats.queries += 1
        self.stats.tuples_examined += acc.examined
        self.stats.rows_returned += len(rows)

        if self.track_validity:
            validity = acc.invalidity_mask.piece_containing(acc.result_validity, timestamp)
            tags = frozenset(acc.tags)
        else:
            validity = Interval(timestamp, None)
            tags = frozenset()
        result = QueryResult(
            rows=rows,
            validity=validity,
            tags=tags,
            timestamp=timestamp,
            examined=acc.examined,
            access_methods=tuple(acc.access_methods),
        )
        for observer in self._observers:
            observer(query, result)
        return result

    # ------------------------------------------------------------------
    # Select
    # ------------------------------------------------------------------
    def _table(self, name: str) -> Table:
        try:
            return self._catalog[name]
        except KeyError:
            raise UnknownTableError(f"unknown table {name!r}") from None

    def _execute_select(
        self,
        select: Select,
        timestamp: int,
        tx_id: Optional[int],
        acc: _Accumulator,
    ) -> List[Dict[str, Any]]:
        table = self._table(select.table)
        path = plan_select(select, table)
        acc.access_methods.append(path.kind)
        self._note_access(path.kind)
        if self.track_validity:
            acc.tags.update(path.tags())

        rows: List[Dict[str, Any]] = []
        predicate = select.predicate
        for version in path.candidates(table):
            acc.examined += 1
            # Evaluate the predicate before the visibility check so that the
            # invalidity mask only reflects tuples relevant to this query
            # (the paper's delayed-visibility-check refinement).
            if not predicate.matches(version.values):
                continue
            if visible_at(version, timestamp, tx_id):
                rows.append(dict(version.values))
                if self.track_validity:
                    interval = validity_of(version)
                    if interval is not None:
                        acc.result_validity = acc.result_validity.intersect(interval)
            elif self.track_validity:
                # Phantom tracking considers only *committed* facts: a version
                # may be invisible purely because the current read/write
                # transaction created or deleted it provisionally, and such a
                # version must not constrain the result's validity interval.
                interval = validity_of(version)
                if interval is not None and not interval.contains(timestamp):
                    acc.invalidity_mask.add(interval)

        rows = self._order_limit_project(
            rows, select.order_by, select.descending, select.limit, select.columns
        )
        return rows

    def _execute_join(
        self,
        join: Join,
        timestamp: int,
        tx_id: Optional[int],
        acc: _Accumulator,
    ) -> List[Dict[str, Any]]:
        outer_rows = self._execute_select(join.outer, timestamp, tx_id, acc)
        merged: List[Dict[str, Any]] = []
        for outer_row in outer_rows:
            key = outer_row.get(join.outer_column)
            inner_select = Select(
                join.inner_table,
                predicate=And(Eq(join.inner_column, key), join.inner_predicate),
            )
            inner_rows = self._execute_select(inner_select, timestamp, tx_id, acc)
            for inner_row in inner_rows:
                row = dict(outer_row)
                if join.inner_prefix:
                    row.update({f"{join.inner_prefix}{k}": v for k, v in inner_row.items()})
                else:
                    for column, value in inner_row.items():
                        row.setdefault(column, value)
                merged.append(row)
        merged = self._order_limit_project(
            merged, join.order_by, join.descending, join.limit, None
        )
        return merged

    def _execute_aggregate(
        self,
        aggregate: Aggregate,
        timestamp: int,
        tx_id: Optional[int],
        acc: _Accumulator,
    ) -> List[Dict[str, Any]]:
        rows = self._execute_select(aggregate.source, timestamp, tx_id, acc)
        function = aggregate.function
        if function == "count":
            value: Any = len(rows)
        else:
            values = [
                row[aggregate.column]
                for row in rows
                if row.get(aggregate.column) is not None
            ]
            if function == "sum":
                value = sum(values) if values else 0
            elif function == "max":
                value = max(values) if values else None
            elif function == "min":
                value = min(values) if values else None
            elif function == "avg":
                value = (sum(values) / len(values)) if values else None
            else:  # pragma: no cover - guarded by Aggregate.__post_init__
                raise ValueError(f"unsupported aggregate {function!r}")
        return [{"value": value}]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _order_limit_project(
        rows: List[Dict[str, Any]],
        order_by: Optional[str],
        descending: bool,
        limit: Optional[int],
        columns,
    ) -> List[Dict[str, Any]]:
        if order_by is not None:
            rows = sorted(
                rows,
                key=lambda row: (row.get(order_by) is None, row.get(order_by)),
                reverse=descending,
            )
        if limit is not None:
            rows = rows[:limit]
        if columns is not None:
            rows = [{column: row.get(column) for column in columns} for row in rows]
        return rows

    def _note_access(self, kind: str) -> None:
        if kind == "seq_scan":
            self.stats.seq_scans += 1
        elif kind == "index_eq":
            self.stats.index_lookups += 1
        elif kind == "index_range":
            self.stats.range_scans += 1
