"""Multiversion relational database substrate.

This package reproduces the database-side support TxCache requires
(paper section 5):

* multiversion storage with snapshot isolation, so read-only transactions can
  run against slightly stale *pinned* snapshots (``PIN`` / ``UNPIN`` /
  ``BEGIN SNAPSHOTID`` in the paper's modified PostgreSQL);
* per-query *validity intervals*, computed as the intersection of the
  validity times of the returned tuples minus an *invalidity mask* built from
  tuples that matched the query predicate but failed the visibility check;
* *invalidation tags* derived from the access methods in the query plan
  (``TABLE:KEY`` for index equality lookups, ``TABLE:?`` wildcards for scans)
  and, at update time, from the indexes each modified tuple appears in;
* an ordered *invalidation stream* published at commit time.

The public entry point is :class:`repro.db.database.Database`.
"""

from repro.db.database import Database, DatabaseStats
from repro.db.errors import (
    ConstraintError,
    DatabaseError,
    SerializationError,
    SnapshotTooOldError,
    UnknownIndexError,
    UnknownTableError,
)
from repro.db.executor import QueryResult
from repro.db.invalidation import InvalidationTag
from repro.db.query import (
    Aggregate,
    And,
    Eq,
    Func,
    In,
    Join,
    Or,
    Range,
    Select,
    TruePredicate,
)
from repro.db.schema import Column, IndexSpec, TableSchema
from repro.db.transactions import ReadOnlyTransaction, ReadWriteTransaction

__all__ = [
    "Database",
    "DatabaseStats",
    "DatabaseError",
    "SerializationError",
    "SnapshotTooOldError",
    "ConstraintError",
    "UnknownTableError",
    "UnknownIndexError",
    "QueryResult",
    "InvalidationTag",
    "Select",
    "Join",
    "Aggregate",
    "Eq",
    "In",
    "Range",
    "And",
    "Or",
    "Func",
    "TruePredicate",
    "Column",
    "TableSchema",
    "IndexSpec",
    "ReadOnlyTransaction",
    "ReadWriteTransaction",
]
