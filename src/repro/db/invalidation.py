"""Invalidation tags (paper section 4.2 and 5.3).

Every still-valid cache object carries a set of invalidation tags describing
which parts of the database it depends on.  A tag has two parts: a table name
and an optional index-key description.  Index equality lookups produce the
precise two-part form (``USERS:NAME=ALICE``); sequential scans and range
scans produce the wildcard form (``USERS:?``), which exists for completeness
and is expected to be rare.

At query time the database derives tags from the access methods in the query
plan.  At update time each added/deleted/modified tuple yields one tag per
index it is listed in; when a transaction modifies a large fraction of a
table the tags are collapsed into a single wildcard tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, Optional, Set

__all__ = ["InvalidationTag", "collapse_tags", "tags_for_modified_tuple"]

#: A transaction touching more than this many distinct keys of one table has
#: its per-key tags collapsed into a single wildcard tag for that table.
WILDCARD_COLLAPSE_THRESHOLD = 64


@dataclass(frozen=True)
class InvalidationTag:
    """One dependency tag.

    ``column is None`` (and ``value is None``) denotes the wildcard tag
    ``table:?`` that matches every key of the table.
    """

    table: str
    column: Optional[str] = None
    value: Optional[Any] = None

    @property
    def is_wildcard(self) -> bool:
        """True for the ``table:?`` form."""
        return self.column is None

    @staticmethod
    def wildcard(table: str) -> "InvalidationTag":
        """Construct the wildcard tag for ``table``."""
        return InvalidationTag(table=table)

    @staticmethod
    def key(table: str, column: str, value: Any) -> "InvalidationTag":
        """Construct a precise ``table:column=value`` tag."""
        return InvalidationTag(table=table, column=column, value=value)

    def overlaps(self, other: "InvalidationTag") -> bool:
        """True if an update bearing ``other`` may affect data tagged ``self``.

        A wildcard tag on either side matches any tag for the same table;
        precise tags match only when column and value agree.
        """
        if self.table != other.table:
            return False
        if self.is_wildcard or other.is_wildcard:
            return True
        return self.column == other.column and self.value == other.value

    def __str__(self) -> str:
        if self.is_wildcard:
            return f"{self.table}:?"
        return f"{self.table}:{self.column}={self.value!r}"


def tags_for_modified_tuple(
    table_name: str, indexed_columns: Iterable[str], values: dict
) -> Set[InvalidationTag]:
    """Tags produced when one tuple of ``table_name`` is added/deleted/changed.

    One tag per index the tuple is listed in, keyed by the tuple's value for
    that index's column (paper section 5.3).
    """
    tags: Set[InvalidationTag] = set()
    for column in indexed_columns:
        tags.add(InvalidationTag.key(table_name, column, values.get(column)))
    return tags


def collapse_tags(
    tags: Iterable[InvalidationTag],
    threshold: int = WILDCARD_COLLAPSE_THRESHOLD,
) -> FrozenSet[InvalidationTag]:
    """Collapse excessive per-key tags into wildcard tags.

    If a transaction produced more than ``threshold`` distinct tags for one
    table, all of that table's tags are replaced with a single wildcard tag,
    mirroring the paper's aggregation rule for bulk updates.
    """
    by_table: dict = {}
    for tag in tags:
        by_table.setdefault(tag.table, set()).add(tag)
    result: Set[InvalidationTag] = set()
    for table, table_tags in by_table.items():
        has_wildcard = any(t.is_wildcard for t in table_tags)
        if has_wildcard or len(table_tags) > threshold:
            # A wildcard subsumes every precise tag for the table.
            result.add(InvalidationTag.wildcard(table))
        else:
            result.update(table_tags)
    return frozenset(result)
