"""Exception hierarchy for the database substrate."""

from __future__ import annotations

__all__ = [
    "DatabaseError",
    "UnknownTableError",
    "UnknownIndexError",
    "ConstraintError",
    "SerializationError",
    "SnapshotTooOldError",
    "TransactionStateError",
]


class DatabaseError(Exception):
    """Base class for all database errors."""


class UnknownTableError(DatabaseError):
    """A query or DML statement referenced a table that does not exist."""


class UnknownIndexError(DatabaseError):
    """An operation referenced an index that does not exist."""


class ConstraintError(DatabaseError):
    """A uniqueness or schema constraint was violated."""


class SerializationError(DatabaseError):
    """A read/write transaction lost a first-committer-wins conflict.

    Raised at commit time when another transaction modified one of this
    transaction's target rows after this transaction's snapshot was taken
    (the standard snapshot-isolation write-write conflict rule).
    """


class SnapshotTooOldError(DatabaseError):
    """A transaction asked for a snapshot that has been vacuumed or unpinned."""


class TransactionStateError(DatabaseError):
    """An operation was attempted on a finished or mismatched transaction."""
