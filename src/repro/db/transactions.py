"""Read/write and read-only transactions.

Read/write transactions implement snapshot isolation over the no-overwrite
storage: reads see the snapshot taken at ``BEGIN`` (plus the transaction's
own uncommitted writes), writes create provisional tuple versions that are
stamped with the commit timestamp at ``COMMIT``, and write-write conflicts
follow the first-committer-wins rule.  At commit the transaction's
invalidation tags are collected — one per index each modified tuple appears
in — and handed to the database for publication on the invalidation stream.

Read-only transactions simply run the executor against a (possibly pinned,
possibly stale) snapshot timestamp; they are what TxCache's library uses via
``BEGIN SNAPSHOTID`` when a cache miss forces it to query the database at the
same point in time as previously observed cached values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Set, Tuple

from repro.db.errors import SerializationError, TransactionStateError
from repro.db.invalidation import InvalidationTag, collapse_tags, tags_for_modified_tuple
from repro.db.query import Predicate, Query
from repro.db.executor import QueryResult
from repro.db.tuples import TupleVersion, UncommittedMark, visible_at

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["ReadWriteTransaction", "ReadOnlyTransaction"]


class _BaseTransaction:
    """State shared by both transaction kinds."""

    def __init__(self, database: "Database", snapshot_ts: int) -> None:
        self._db = database
        self.snapshot_timestamp = snapshot_ts
        self._finished = False

    @property
    def active(self) -> bool:
        """True until the transaction commits or aborts."""
        return not self._finished

    def _check_active(self) -> None:
        if self._finished:
            raise TransactionStateError("transaction already finished")


class ReadOnlyTransaction(_BaseTransaction):
    """A read-only transaction running at a fixed snapshot timestamp."""

    def __init__(self, database: "Database", snapshot_ts: int) -> None:
        super().__init__(database, snapshot_ts)
        with database.commit_lock:  # counters are read-modify-writes too
            database.stats.ro_transactions += 1

    def query(self, query: Query) -> QueryResult:
        """Execute a query at this transaction's snapshot."""
        self._check_active()
        return self._db.executor.execute(query, self.snapshot_timestamp, tx_id=None)

    def commit(self) -> int:
        """Finish the transaction; returns its snapshot timestamp."""
        self._check_active()
        self._finished = True
        return self.snapshot_timestamp

    def abort(self) -> None:
        """Abort (identical to commit for a read-only transaction)."""
        self._check_active()
        self._finished = True


class ReadWriteTransaction(_BaseTransaction):
    """A read/write transaction with buffered (provisional) writes."""

    def __init__(self, database: "Database", snapshot_ts: int, tx_id: int) -> None:
        super().__init__(database, snapshot_ts)
        self.tx_id = tx_id
        self._mark = UncommittedMark(tx_id)
        #: versions created by this transaction: (table name, version)
        self._created: List[Tuple[str, TupleVersion]] = []
        #: versions whose xmax this transaction set: (table name, version)
        self._deleted: List[Tuple[str, TupleVersion]] = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def query(self, query: Query) -> QueryResult:
        """Execute a query; sees this transaction's own uncommitted writes."""
        self._check_active()
        return self._db.executor.execute(query, self.snapshot_timestamp, tx_id=self.tx_id)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, table_name: str, values: Dict[str, Any]) -> TupleVersion:
        """Insert a new row; returns its provisional version."""
        self._check_active()
        table = self._db.table(table_name)
        version = table.add_version(values, xmin=self._mark)
        self._created.append((table_name, version))
        return version

    def update(
        self,
        table_name: str,
        predicate: Predicate,
        changes: Dict[str, Any],
    ) -> int:
        """Update every visible row matching ``predicate``.

        Each update supersedes the old version (its ``xmax`` becomes this
        transaction's mark) and creates a new version with the merged values.
        Returns the number of rows updated.
        """
        self._check_active()
        table = self._db.table(table_name)
        targets = self._visible_matching(table_name, predicate)
        for old in targets:
            self._claim_for_write(old)
            new_values = dict(old.values)
            new_values.update(changes)
            new_version = table.add_version(new_values, xmin=self._mark, row_id=old.row_id)
            self._created.append((table_name, new_version))
            self._deleted.append((table_name, old))
        return len(targets)

    def delete(self, table_name: str, predicate: Predicate) -> int:
        """Delete every visible row matching ``predicate``; returns the count."""
        self._check_active()
        targets = self._visible_matching(table_name, predicate)
        for old in targets:
            self._claim_for_write(old)
            self._deleted.append((table_name, old))
        return len(targets)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Commit: stamp provisional versions and publish invalidations.

        Returns the commit timestamp.  Raises :class:`SerializationError` if
        a first-committer-wins conflict is detected (the error is raised at
        write time in this implementation; the commit-time re-check is a
        safety net for the concurrent-use case).
        """
        self._check_active()
        if not self._created and not self._deleted:
            # A read-only "read/write" transaction: nothing to stamp, no
            # commit timestamp consumed, no invalidation published.
            self._finished = True
            with self._db.commit_lock:
                self._db.stats.commits += 1
            return self._db.latest_timestamp

        # The critical section — timestamp allocation, version stamping,
        # invalidation *enqueue* — runs under the database's commit lock, so
        # concurrent committers cannot interleave: the stream sees whole
        # commits in timestamp order, and no reader at timestamp T can
        # observe some of commit T's versions stamped and others not.
        with self._db.commit_lock:
            timestamp = self._db.allocate_commit_timestamp()
            for _table_name, version in self._created:
                version.xmin = timestamp
            for _table_name, version in self._deleted:
                version.xmax = timestamp

            tags = self._collect_tags()
            self._finished = True
            self._db.register_commit(timestamp, tags)
        # Delivery happens outside the lock: it can block on networked cache
        # nodes (up to the transport timeout for a hung one), and readers
        # queued on the commit lock must not pay for that.
        self._db.flush_invalidations()
        return timestamp

    def abort(self) -> None:
        """Abort: physically discard provisional versions."""
        self._check_active()
        for table_name, version in self._created:
            self._db.table(table_name).remove_version(version)
        for _table_name, version in self._deleted:
            if isinstance(version.xmax, UncommittedMark) and version.xmax.tx_id == self.tx_id:
                version.xmax = None
        self._finished = True
        with self._db.commit_lock:
            self._db.stats.aborts += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _visible_matching(self, table_name: str, predicate: Predicate) -> List[TupleVersion]:
        table = self._db.table(table_name)
        matches: List[TupleVersion] = []
        for version in table.scan_versions():
            if not predicate.matches(version.values):
                continue
            if visible_at(version, self.snapshot_timestamp, self.tx_id):
                matches.append(version)
        return matches

    def _claim_for_write(self, version: TupleVersion) -> None:
        """Mark ``version`` superseded by this transaction, detecting conflicts."""
        xmax = version.xmax
        if isinstance(xmax, UncommittedMark):
            if xmax.tx_id != self.tx_id:
                raise SerializationError(
                    f"row {version.row_id} is being modified by transaction {xmax.tx_id}"
                )
            return
        if xmax is not None:
            # Deleted by a transaction that committed after our snapshot.
            raise SerializationError(
                f"row {version.row_id} was modified by a concurrent transaction"
            )
        if isinstance(version.xmin, int) and version.xmin > self.snapshot_timestamp:
            raise SerializationError(
                f"row {version.row_id} was created after this transaction's snapshot"
            )
        version.xmax = self._mark

    def _collect_tags(self) -> frozenset:
        tags: Set[InvalidationTag] = set()
        for table_name, version in self._created + self._deleted:
            table = self._db.table(table_name)
            indexed_columns = list(table.indexes.keys())
            tags.update(
                tags_for_modified_tuple(table_name, indexed_columns, version.values)
            )
        return collapse_tags(tags)
