"""Communication substrate: the ordered invalidation multicast bus."""

from repro.comm.multicast import InvalidationBus, InvalidationMessage, Subscriber

__all__ = ["InvalidationBus", "InvalidationMessage", "Subscriber"]
