"""Communication substrate: invalidation multicast and cache transports."""

from repro.comm.multicast import InvalidationBus, InvalidationMessage, Subscriber
from repro.comm.transport import CacheTransport, InProcessTransport

__all__ = [
    "InvalidationBus",
    "InvalidationMessage",
    "Subscriber",
    "CacheTransport",
    "InProcessTransport",
]
