"""Ordered multicast of invalidation messages to cache nodes.

The paper distributes invalidations from the database to every cache node as
an *invalidation stream*: an ordered sequence of messages, one per update
transaction, each carrying the transaction's commit timestamp and the set of
invalidation tags it affected (section 4.2).  Delivery uses a reliable
application-level multicast service.

This module reproduces that transport as an in-process bus.  By default,
messages are delivered synchronously and in order, which matches the paper's
assumption of reliable ordered delivery.  For testing race conditions the bus
can be switched to *deferred* mode, where published messages queue up until
:meth:`InvalidationBus.deliver_pending` is called; this lets tests exercise
the window between a database commit and the cache learning about it, the
exact scenario the paper's timestamp-ordering protocol is designed to make
harmless.

Thread safety
-------------
:class:`InvalidationBus` is thread-safe: a single reentrant lock guards the
subscriber list, the pending queue, and delivery.  Publication order *is*
delivery order even with concurrent publishers because the lock is held
across the publish-and-deliver pair; a subscriber (un)subscribing while
another thread is mid-delivery blocks until that delivery completes, and the
delivery loop works from a snapshot of the subscriber list taken under the
lock, so a subscriber removed *during* delivery (e.g. a dead cache node being
evicted from inside its own failure handler — the lock is reentrant exactly
for this) can never corrupt the iteration.  Subscribers added mid-delivery
see only later messages, which is the membership contract: a node joining
the stream is warmed by migration, not by replaying the past.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Protocol, Tuple

__all__ = ["InvalidationMessage", "Subscriber", "InvalidationBus"]


@dataclass(frozen=True)
class InvalidationMessage:
    """One entry of the invalidation stream.

    Attributes:
        timestamp: commit timestamp of the update transaction.
        tags: invalidation tags affected by the transaction (a tuple of
            :class:`repro.db.invalidation.InvalidationTag`).
    """

    timestamp: int
    tags: Tuple = field(default_factory=tuple)


class Subscriber(Protocol):
    """Anything that consumes the invalidation stream (cache servers)."""

    def process_invalidation(self, message: InvalidationMessage) -> None:
        """Apply one invalidation message."""


class InvalidationBus:
    """Reliable, ordered fan-out of invalidation messages.

    Messages are delivered to subscribers in publication order.  In
    synchronous mode (the default) delivery happens inside :meth:`publish`;
    in deferred mode messages accumulate until :meth:`deliver_pending`.
    """

    def __init__(self, synchronous: bool = True) -> None:
        #: Guards subscribers, the pending queue, and delivery; reentrant so
        #: a subscriber may unsubscribe (itself or another node) from inside
        #: its own process_invalidation callback.
        self._lock = threading.RLock()
        self._subscribers: List[Subscriber] = []
        self._pending: Deque[InvalidationMessage] = deque()
        self._synchronous = synchronous
        self._last_published: int = -1
        self._delivered_count = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a cache node to receive the invalidation stream."""
        with self._lock:
            if subscriber not in self._subscribers:
                self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a cache node from the stream."""
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    @property
    def subscribers(self) -> List[Subscriber]:
        """Currently registered subscribers."""
        with self._lock:
            return list(self._subscribers)

    # ------------------------------------------------------------------
    # Publication and delivery
    # ------------------------------------------------------------------
    def publish(self, message: InvalidationMessage) -> None:
        """Publish one message; messages must arrive in timestamp order.

        The lock is held across validation, queueing, and (in synchronous
        mode) delivery, so concurrent publishers cannot interleave their
        messages out of timestamp order on the wire.
        """
        with self._lock:
            self.enqueue(message)
            if self._synchronous:
                self.deliver_pending()

    def enqueue(self, message: InvalidationMessage) -> None:
        """Validate ordering and queue one message *without* delivering it.

        The cheap half of :meth:`publish`: a committer holding the
        database's commit lock enqueues here (preserving timestamp order)
        and runs :meth:`deliver_pending` only after releasing that lock, so
        a blocking transport (a hung networked cache node) can never stall
        every reader queued on the commit lock.  Delivery stays ordered
        regardless of which committer ends up draining the queue.
        """
        with self._lock:
            if message.timestamp <= self._last_published:
                raise ValueError(
                    "invalidation stream out of order: "
                    f"{message.timestamp} after {self._last_published}"
                )
            self._last_published = message.timestamp
            self._pending.append(message)

    def deliver_pending(self) -> int:
        """Deliver every queued message, in order.  Returns the count."""
        with self._lock:
            delivered = 0
            while self._pending:
                message = self._pending.popleft()
                # Snapshot the subscriber list under the lock: a concurrent
                # subscribe/unsubscribe (or a dead cache node evicting itself
                # mid-delivery) must never mutate the list being iterated.
                for subscriber in list(self._subscribers):
                    subscriber.process_invalidation(message)
                delivered += 1
                self._delivered_count += 1
            return delivered

    def set_synchronous(self, synchronous: bool) -> None:
        """Switch between immediate and deferred delivery."""
        with self._lock:
            self._synchronous = synchronous
            if synchronous:
                self.deliver_pending()

    @property
    def synchronous(self) -> bool:
        """True when published messages are delivered immediately."""
        return self._synchronous

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of published-but-undelivered messages."""
        with self._lock:
            return len(self._pending)

    @property
    def delivered_count(self) -> int:
        """Total messages delivered since creation."""
        return self._delivered_count

    @property
    def last_published_timestamp(self) -> int:
        """Timestamp of the most recently published message (-1 if none)."""
        return self._last_published
