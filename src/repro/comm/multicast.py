"""Ordered multicast of invalidation messages to cache nodes.

The paper distributes invalidations from the database to every cache node as
an *invalidation stream*: an ordered sequence of messages, one per update
transaction, each carrying the transaction's commit timestamp and the set of
invalidation tags it affected (section 4.2).  Delivery uses a reliable
application-level multicast service.

This module reproduces that transport as an in-process bus.  By default,
messages are delivered synchronously and in order, which matches the paper's
assumption of reliable ordered delivery.  For testing race conditions the bus
can be switched to *deferred* mode, where published messages queue up until
:meth:`InvalidationBus.deliver_pending` is called; this lets tests exercise
the window between a database commit and the cache learning about it, the
exact scenario the paper's timestamp-ordering protocol is designed to make
harmless.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Protocol, Tuple

__all__ = ["InvalidationMessage", "Subscriber", "InvalidationBus"]


@dataclass(frozen=True)
class InvalidationMessage:
    """One entry of the invalidation stream.

    Attributes:
        timestamp: commit timestamp of the update transaction.
        tags: invalidation tags affected by the transaction (a tuple of
            :class:`repro.db.invalidation.InvalidationTag`).
    """

    timestamp: int
    tags: Tuple = field(default_factory=tuple)


class Subscriber(Protocol):
    """Anything that consumes the invalidation stream (cache servers)."""

    def process_invalidation(self, message: InvalidationMessage) -> None:
        """Apply one invalidation message."""


class InvalidationBus:
    """Reliable, ordered fan-out of invalidation messages.

    Messages are delivered to subscribers in publication order.  In
    synchronous mode (the default) delivery happens inside :meth:`publish`;
    in deferred mode messages accumulate until :meth:`deliver_pending`.
    """

    def __init__(self, synchronous: bool = True) -> None:
        self._subscribers: List[Subscriber] = []
        self._pending: Deque[InvalidationMessage] = deque()
        self._synchronous = synchronous
        self._last_published: int = -1
        self._delivered_count = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a cache node to receive the invalidation stream."""
        if subscriber not in self._subscribers:
            self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a cache node from the stream."""
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    @property
    def subscribers(self) -> List[Subscriber]:
        """Currently registered subscribers."""
        return list(self._subscribers)

    # ------------------------------------------------------------------
    # Publication and delivery
    # ------------------------------------------------------------------
    def publish(self, message: InvalidationMessage) -> None:
        """Publish one message; messages must arrive in timestamp order."""
        if message.timestamp <= self._last_published:
            raise ValueError(
                "invalidation stream out of order: "
                f"{message.timestamp} after {self._last_published}"
            )
        self._last_published = message.timestamp
        self._pending.append(message)
        if self._synchronous:
            self.deliver_pending()

    def deliver_pending(self) -> int:
        """Deliver every queued message, in order.  Returns the count."""
        delivered = 0
        while self._pending:
            message = self._pending.popleft()
            # Snapshot the subscriber list: delivering to a dead cache node
            # can trigger its eviction, which unsubscribes it mid-delivery.
            for subscriber in list(self._subscribers):
                subscriber.process_invalidation(message)
            delivered += 1
            self._delivered_count += 1
        return delivered

    def set_synchronous(self, synchronous: bool) -> None:
        """Switch between immediate and deferred delivery."""
        self._synchronous = synchronous
        if synchronous:
            self.deliver_pending()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of published-but-undelivered messages."""
        return len(self._pending)

    @property
    def delivered_count(self) -> int:
        """Total messages delivered since creation."""
        return self._delivered_count

    @property
    def last_published_timestamp(self) -> int:
        """Timestamp of the most recently published message (-1 if none)."""
        return self._last_published
